"""Bench: design-choice ablations called out in DESIGN.md §5.

Three ablations beyond the paper's Table VI:

* annealing schedule — the paper's literal "T halves each step" (~14
  iterations/chain) vs the default slower cooling (~127 iterations/chain),
* result-pool size — top-k measured shortlist width,
* chain count — construction diversity.
"""

import pytest

from repro.core import Gensor, GensorConfig
from repro.hardware import rtx4090
from repro.ir import operators as ops


@pytest.fixture(scope="module")
def hw():
    return rtx4090()


@pytest.fixture(scope="module")
def gemm():
    return ops.matmul(4096, 2048, 4096, "ablate")


def test_ablation_annealing_schedule(once, hw, gemm):
    """Slower cooling explores more states and should not lose."""

    def run_both():
        fast_cool = Gensor(
            hw, GensorConfig(cooling=0.5, num_chains=4, top_k=8)
        ).compile(gemm)
        slow_cool = Gensor(
            hw, GensorConfig(cooling=0.93, num_chains=4, top_k=8)
        ).compile(gemm)
        return fast_cool, slow_cool

    fast_cool, slow_cool = once(run_both)
    print(
        f"\ncooling=0.5 (paper's T/2): {fast_cool.iterations} iters, "
        f"{fast_cool.best_metrics.achieved_flops / 1e12:.2f} TFLOPS\n"
        f"cooling=0.93 (default):     {slow_cool.iterations} iters, "
        f"{slow_cool.best_metrics.achieved_flops / 1e12:.2f} TFLOPS"
    )
    assert slow_cool.iterations > 3 * fast_cool.iterations
    assert (
        slow_cool.best_metrics.latency_s
        <= fast_cool.best_metrics.latency_s * 1.05
    )


def test_ablation_topk_pool(once, hw, gemm):
    """A wider measured shortlist can only improve the final pick."""

    def run_both():
        narrow = Gensor(hw, GensorConfig(top_k=2, num_chains=4)).compile(gemm)
        wide = Gensor(hw, GensorConfig(top_k=16, num_chains=4)).compile(gemm)
        return narrow, wide

    narrow, wide = once(run_both)
    print(
        f"\ntop-k=2:  {narrow.best_metrics.achieved_flops / 1e12:.2f} TFLOPS"
        f"\ntop-k=16: {wide.best_metrics.achieved_flops / 1e12:.2f} TFLOPS"
    )
    assert wide.best_metrics.latency_s <= narrow.best_metrics.latency_s * 1.02


def test_ablation_chain_count(once, hw, gemm):
    """More independent chains buy candidate diversity."""

    def run_both():
        one = Gensor(hw, GensorConfig(num_chains=1, top_k=8)).compile(gemm)
        many = Gensor(hw, GensorConfig(num_chains=8, top_k=8)).compile(gemm)
        return one, many

    one, many = once(run_both)
    print(
        f"\nchains=1: {one.states_visited} states, "
        f"{one.best_metrics.achieved_flops / 1e12:.2f} TFLOPS"
        f"\nchains=8: {many.states_visited} states, "
        f"{many.best_metrics.achieved_flops / 1e12:.2f} TFLOPS"
    )
    assert many.states_visited > one.states_visited
    assert many.best_metrics.latency_s <= one.best_metrics.latency_s * 1.05
