"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables/figures.  The
experiment itself runs exactly once (``benchmark.pedantic`` with one round)
— what pytest-benchmark reports is the wall-clock of regenerating that
result, and the rendered table is printed for inspection.

Budgets default to quick mode (see ``repro.experiments.common``); set
``REPRO_FULL=1`` for paper-scale search budgets.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def once(benchmark):
    def _runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _runner
