"""Bench: the paper's future-work extension — DynamicGensor.

Serves a stream of dynamic BERT-style GEMM shapes through the cache-backed
warm-starting optimizer and compares amortized compile cost and schedule
quality against cold per-shape construction.
"""

from repro.core import DynamicGensor, Gensor, GensorConfig
from repro.hardware import rtx4090
from repro.ir import operators as ops

CFG = GensorConfig(num_chains=3, top_k=6, polish_steps=60)

#: a serving trace: sequence lengths arriving over time, with repeats.
SEQ_TRACE = (64, 128, 64, 96, 128, 192, 96, 256, 192, 64, 384, 256)


def _op(seq: int, tag: str) -> object:
    return ops.matmul(seq * 32, 512, 512, f"qkv_{tag}_s{seq}")


def test_dynamic_gensor_serving(once):
    hw = rtx4090()

    def serve():
        dyn = DynamicGensor(hw, CFG)
        cold = Gensor(hw, CFG)
        dyn_compile = dyn_latency = 0.0
        cold_compile = cold_latency = 0.0
        for i, seq in enumerate(SEQ_TRACE):
            d = dyn.compile(_op(seq, f"dyn{i}"))
            c = cold.compile(_op(seq, f"cold{i}"))
            dyn_compile += d.compile_seconds
            cold_compile += c.compile_seconds
            dyn_latency += d.latency_s
            cold_latency += c.latency_s
        return dyn, dyn_compile, dyn_latency, cold_compile, cold_latency

    dyn, dyn_compile, dyn_latency, cold_compile, cold_latency = once(serve)
    print(
        f"\nserved {dyn.stats.total} shapes: {dyn.stats.cold} cold, "
        f"{dyn.stats.warm} warm, {dyn.stats.hits} hits"
        f"\ncompile cost: dynamic {dyn_compile:.1f}s vs cold {cold_compile:.1f}s"
        f"\nschedule quality: dynamic {dyn_latency * 1e3:.3f}ms vs "
        f"cold {cold_latency * 1e3:.3f}ms summed latency"
    )
    # Re-optimization is amortized away...
    assert dyn.stats.hits + dyn.stats.warm >= len(SEQ_TRACE) // 2
    assert dyn_compile < cold_compile / 2
    # ...without giving up schedule quality.
    assert dyn_latency < cold_latency * 1.1
