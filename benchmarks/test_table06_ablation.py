"""Bench: Table VI — graph-construction and vThread ablation."""

from repro.experiments import table06_ablation


def test_table06_ablation(once):
    result = once(table06_ablation.run)
    print("\n" + result.render())
    for op, variants in result.rows.items():
        roller = variants["Roller"]["flops"]
        no_vt = variants["Gensor w/o vThread"]["flops"]
        full = variants["Gensor"]["flops"]
        assert no_vt >= roller, f"{op}: graph variant lost to Roller"
        assert full >= no_vt * 0.999, f"{op}: vThread variant regressed"
