"""Bench: Fig. 8 — compilation time per method across GEMM shapes."""

from repro.experiments import fig08_compile_time


def test_fig08_compile_time(once):
    result = once(fig08_compile_time.run)
    print("\n" + result.render())
    for shape, times in result.rows.items():
        # Construction methods sit orders of magnitude below search;
        # Roller stays within one order of magnitude of Gensor.
        assert times["ansor"] > 5 * times["gensor"], shape
        assert times["roller"] <= times["gensor"], shape
