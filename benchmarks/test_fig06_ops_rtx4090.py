"""Bench: Fig. 6 — operator FLOPS relative to Ansor on the RTX 4090.

Quick mode covers the paper's published Table IV subset (12 operators);
``REPRO_FULL=1`` runs all 32 with paper-scale Ansor budgets.
"""

import os

from repro.experiments.fig06_ops_rtx4090 import run
from repro.workloads import TABLE4_CONFIGS


def test_fig06_ops_rtx4090(once):
    full = os.environ.get("REPRO_FULL", "0") == "1"
    labels = None if full else [c.label for c in TABLE4_CONFIGS if c.published]
    result = once(run, labels=labels)
    print("\n" + result.render())
    assert result.rows["gensor_over_roller_avg"] > 1.0
    assert result.rows["gensor_over_roller_max"] >= result.rows["gensor_over_roller_avg"]
