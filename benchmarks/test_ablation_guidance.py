"""Bench: walk-guidance ablation — multi-objective vs bare-formula benefits.

DESIGN.md §5 calls out the benefit composition as a design choice: the
transition probability combines the paper's closed-form ratios
(Formulas 1–3) with the predicted whole-program acceleration under the
internal roofline ("the normalized performance improvement of the tensor
program resulting from the scheduling action", §III).

Finding (documented by this bench): on low-dimensional operators the two
guidances tie — the analytical ranking and refinement stages rescue a
diffuse walk.  On high-dimensional convolutions the space is too large to
rescue, and roofline-informed guidance wins end to end.
"""

from repro.core import Gensor, GensorConfig
from repro.hardware import rtx4090
from repro.workloads.table4 import build

_CFG = dict(num_chains=3, top_k=6, polish_steps=60)


def test_ablation_walk_guidance(once):
    hw = rtx4090()

    def run_all():
        out = {}
        for label in ("C1", "M1"):
            compute = build(label)
            multi = Gensor(hw, GensorConfig(**_CFG)).compile(compute)
            bare = Gensor(
                hw, GensorConfig(multi_objective=False, **_CFG)
            ).compile(compute)
            out[label] = (multi, bare)
        return out

    results = once(run_all)
    for label, (multi, bare) in results.items():
        print(
            f"\n{label}: multi-objective "
            f"{multi.best_metrics.achieved_flops / 1e12:.2f} TFLOPS vs "
            f"bare-formula {bare.best_metrics.achieved_flops / 1e12:.2f} TFLOPS"
        )
    # GEMM (3 axes): guidance choice is rescued downstream — near-tie.
    m_multi, m_bare = results["M1"]
    assert m_multi.best_metrics.latency_s <= m_bare.best_metrics.latency_s * 1.05
    # Conv (7 axes): roofline-informed guidance wins outright.
    c_multi, c_bare = results["C1"]
    assert c_multi.best_metrics.latency_s < c_bare.best_metrics.latency_s
