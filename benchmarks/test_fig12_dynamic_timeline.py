"""Bench: Fig. 12 — dynamic-structure optimize/infer timeline."""

from repro.experiments import fig12_dynamic_timeline


def test_fig12_dynamic_timeline(once):
    result = once(fig12_dynamic_timeline.run)
    print("\n" + result.render())
    summary = result.rows["summary"]
    # PyTorch never optimizes; Ansor's optimization dominates everything.
    assert summary["pytorch"]["optimize_s"] == 0.0
    assert summary["ansor"]["optimize_s"] > 10 * summary["gensor"]["optimize_s"]
    # Gensor's total (optimize + infer) is the shortest, as in the paper.
    best = min(summary, key=lambda m: summary[m]["total_s"])
    assert best == "gensor"
