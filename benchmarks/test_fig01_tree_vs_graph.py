"""Bench: Fig. 1 — tree-selected path vs graph-found path on one GEMM."""

from repro.experiments import fig01_tree_vs_graph


def test_fig01_tree_vs_graph(once):
    result = once(fig01_tree_vs_graph.run)
    print("\n" + result.render())
    assert result.rows["graph_flops"] > result.rows["tree_flops"]
    # The paper's Fig. 1 shows a 9% gap; any clear positive gap reproduces
    # the phenomenon.
    assert result.rows["gain_pct"] > 2.0
