"""Bench: Fig. 7 — operator FLOPS relative to Ansor on the Orin Nano.

Quick mode samples two published configs per operator family.
"""

import os

from repro.experiments.fig07_ops_orin import run


def test_fig07_ops_orin(once):
    full = os.environ.get("REPRO_FULL", "0") == "1"
    labels = None if full else ["C1", "C2", "M1", "M2", "V1", "V3", "P1", "P3"]
    result = once(run, labels=labels)
    print("\n" + result.render())
    assert result.rows["gensor_over_roller_avg"] > 1.0
