"""Bench: §V-A memory note — optimizer memory, Roller vs Gensor."""

from repro.experiments import memory_overhead


def test_memory_overhead(once):
    result = once(memory_overhead.run)
    print("\n" + result.render())
    # The graph costs more than the tree, but only modestly (paper: tens
    # of MB on top of ~550 MB process RSS).
    assert result.rows["gensor_mb"] >= result.rows["roller_mb"]
    assert result.rows["overhead_mb"] < 200
