"""Bench: Table V — HW-counter breakdown on unbalanced GEMMs."""

from repro.experiments import table05_breakdown


def test_table05_breakdown(once):
    result = once(table05_breakdown.run)
    print("\n" + result.render())
    # Gensor should lead on at least 2 of the 3 unbalanced shapes
    # (the paper shows 3/3).
    wins = sum(
        1
        for shape in result.rows
        if result.rows[shape]["gensor"]["exec_ms"]
        <= result.rows[shape]["ansor"]["exec_ms"]
    )
    assert wins >= 2
