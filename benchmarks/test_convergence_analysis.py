"""Bench: §IV-D — Markov convergence analysis of the construction chain."""

from repro.experiments import convergence_analysis


def test_convergence_analysis(once):
    result = once(convergence_analysis.run)
    print("\n" + result.render())
    report = result.rows["report"]
    assert all(report.irreducible_per_level.values())
    assert report.aperiodic
    assert report.value_iterations < 1000
