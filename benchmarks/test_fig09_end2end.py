"""Bench: Fig. 9 — end-to-end model performance on both devices.

Quick mode runs one CNN and one transformer per device; ``REPRO_FULL=1``
runs the paper's full model set.
"""

import os

from repro.experiments import fig09_end2end

FULL = os.environ.get("REPRO_FULL", "0") == "1"


def test_fig09_rtx4090(once):
    models = None if FULL else ["bert_small", "mobilenetv2"]
    result = once(fig09_end2end.run, "rtx4090", models=models)
    print("\n" + result.render())
    for model, rel in result.rows.items():
        assert rel["gensor"] > rel["roller"], model
        assert rel["gensor"] > rel["pytorch"], model


def test_fig09_orin(once):
    models = None if FULL else ["resnet50", "mobilenetv2"]
    result = once(fig09_end2end.run, "orin_nano", models=models)
    print("\n" + result.render())
    for model, rel in result.rows.items():
        assert rel["gensor"] > 1.0, model  # beats the Roller baseline
        assert rel["gensor"] > rel["pytorch"], model
