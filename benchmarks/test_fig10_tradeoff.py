"""Bench: Fig. 10 — performance vs optimization time on ResNet-34."""

from repro.experiments import fig10_tradeoff


def test_fig10_tradeoff(once):
    result = once(fig10_tradeoff.run)
    print("\n" + result.render())
    rows = result.rows
    # PyTorch: zero-ish optimization, lowest performance.
    assert rows["pytorch"]["opt_seconds"] < rows["roller"]["opt_seconds"]
    assert rows["pytorch"]["throughput"] < rows["gensor"]["throughput"]
    # Gensor: near the best performance at construction-scale time.
    assert rows["gensor"]["opt_seconds"] < rows["ansor"]["opt_seconds"] / 5
    assert rows["gensor"]["relative"] > 0.9
    # Roller: cheapest construction, below Gensor's performance.
    assert rows["roller"]["throughput"] < rows["gensor"]["throughput"]
