"""Bench: Fig. 11 — dynamic-shape BERT vs Roller / DietCode / PyTorch."""

import os

from repro.experiments import fig11_dynamic_bert


def test_fig11_dynamic_bert(once):
    result = once(fig11_dynamic_bert.run)
    print("\n" + result.render())
    per_seq = result.rows["per_seq"]
    gensor_avg = sum(r["gensor"] for r in per_seq.values()) / len(per_seq)
    pytorch_avg = sum(r["pytorch"] for r in per_seq.values()) / len(per_seq)
    diet_share = sum(
        r["dietcode"] / r["gensor"] for r in per_seq.values()
    ) / len(per_seq)
    assert gensor_avg > 1.0  # beats Roller on dynamic shapes
    assert gensor_avg > pytorch_avg  # far ahead of eager
    assert 0.4 < diet_share < 1.05  # DietCode close but below Gensor
    # DietCode's one-off family pass undercuts per-shape Gensor at
    # paper-scale budgets (paper: 50 min vs 75 min); the quick-mode Gensor
    # budget is deliberately tiny, so there only same-order is asserted.
    diet_opt = result.rows["opt_time"]["dietcode"]
    gensor_opt = result.rows["opt_time"]["gensor"]
    if os.environ.get("REPRO_FULL", "0") == "1":
        assert diet_opt < gensor_opt
    else:
        assert diet_opt < 5 * gensor_opt
