"""Tracer backends: structured events from the construction walk.

A tracer receives :class:`TraceEvent` records from the instrumented hot
paths (``Gensor.compile`` / ``polish``, ``Measurer.measure``, the serving
layer).  Three backends cover the use cases:

* :class:`NullTracer` — the zero-overhead default.  Instrumented code
  guards every emission with ``if tracer.enabled:``, so the disabled path
  never allocates an event payload, and the Markov walk consumes the
  *identical* RNG stream whether tracing is on or off (the golden-trace
  tests depend on that).
* :class:`RecordingTracer` — in-memory event list for tests and the
  ``walk_diagnostics`` experiment.
* :class:`JsonlTracer` — one JSON object per line, the on-disk format of
  ``repro compile --trace`` consumed by ``repro trace-report``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, IO, Iterable

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "JsonlTracer",
    "load_events",
]


@dataclass
class TraceEvent:
    """One structured observation.

    ``ts`` is a ``time.perf_counter`` stamp (seconds); ``dur`` is nonzero
    for span events (a whole compile, a polish pass, one measurement) and
    zero for instants (one walk step).  ``tid`` is the logical lane the
    event belongs to — the Markov chain index inside one compile, or a
    worker id in the serving layer — which becomes the timeline row in the
    Chrome trace export.
    """

    name: str
    ts: float
    args: dict[str, Any] = field(default_factory=dict)
    dur: float = 0.0
    tid: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "ts": self.ts,
            "dur": self.dur,
            "tid": self.tid,
            "args": self.args,
        }

    @classmethod
    def from_json(cls, obj: dict[str, Any]) -> "TraceEvent":
        return cls(
            name=obj["name"],
            ts=float(obj.get("ts", 0.0)),
            args=dict(obj.get("args", {})),
            dur=float(obj.get("dur", 0.0)),
            tid=int(obj.get("tid", 0)),
        )


class Tracer:
    """Base tracer: emission plus context-manager lifecycle.

    ``enabled`` is the hot-path guard: instrumented code checks it before
    building an event payload, so a disabled tracer costs one attribute
    read per potential event and nothing else.
    """

    enabled: bool = True

    def emit(
        self,
        name: str,
        args: dict[str, Any] | None = None,
        dur: float = 0.0,
        tid: int = 0,
    ) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any backing resources (idempotent)."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


class NullTracer(Tracer):
    """The default no-op tracer; ``enabled`` is False so instrumented code
    skips payload construction entirely."""

    enabled = False

    def emit(
        self,
        name: str,
        args: dict[str, Any] | None = None,
        dur: float = 0.0,
        tid: int = 0,
    ) -> None:  # pragma: no cover - guarded out by ``enabled``
        pass


#: process-wide shared instance — NullTracer carries no state.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Keeps every event in memory (thread-safe append)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._lock = threading.Lock()

    def emit(
        self,
        name: str,
        args: dict[str, Any] | None = None,
        dur: float = 0.0,
        tid: int = 0,
    ) -> None:
        event = TraceEvent(name, time.perf_counter(), args or {}, dur, tid)
        with self._lock:
            self.events.append(event)

    def by_name(self, name: str) -> list[TraceEvent]:
        with self._lock:
            return [e for e in self.events if e.name == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)


class JsonlTracer(Tracer):
    """Streams events as JSON lines to ``path`` (thread-safe writes)."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file: IO[str] | None = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self.num_events = 0

    def emit(
        self,
        name: str,
        args: dict[str, Any] | None = None,
        dur: float = 0.0,
        tid: int = 0,
    ) -> None:
        event = TraceEvent(name, time.perf_counter(), args or {}, dur, tid)
        line = json.dumps(event.to_json(), separators=(",", ":"))
        with self._lock:
            if self._file is None:
                raise ValueError(f"tracer for {self.path!r} is closed")
            self._file.write(line + "\n")
            self.num_events += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


def load_events(path: str) -> list[TraceEvent]:
    """Parse a JSONL trace file back into :class:`TraceEvent` records."""
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_json(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace line ({exc})"
                ) from exc
    return events
