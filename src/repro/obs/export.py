"""Trace exporters: Chrome ``trace_event`` JSON for timeline viewing.

``chrome://tracing`` / Perfetto consume a JSON object with a
``traceEvents`` array whose timestamps are microseconds.  Span events
(``dur > 0``) map to complete events (``ph: "X"``); instants (one walk
step) map to thread-scoped instant events (``ph: "i"``), and each Markov
chain gets its own timeline row via ``tid``.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.tracer import TraceEvent, load_events

__all__ = ["to_chrome_trace", "write_chrome_trace"]


def to_chrome_trace(
    events: Iterable[TraceEvent], process_name: str = "repro"
) -> dict:
    """Convert events to the Chrome ``trace_event`` JSON object format."""
    trace: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for event in events:
        record = {
            "name": event.name,
            "pid": 0,
            "tid": event.tid,
            "ts": event.ts * 1e6,
            "args": event.args,
        }
        if event.dur > 0:
            record["ph"] = "X"
            record["dur"] = event.dur * 1e6
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace.append(record)
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events_or_path: Iterable[TraceEvent] | str, out_path: str
) -> int:
    """Write a Chrome trace for ``events_or_path`` (a JSONL file path or an
    event iterable); returns the number of exported events."""
    if isinstance(events_or_path, str):
        events = load_events(events_or_path)
    else:
        events = list(events_or_path)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(events), fh)
    return len(events)
