"""Process-wide metrics: counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` hands out named instruments; the same
``(name, labels)`` pair always resolves to the same instrument, so
concurrent call sites aggregate into one series (the Prometheus model,
without the wire format).  The serving layer records every request through
the registry, and the stress tests cross-check its totals against
:class:`~repro.serve.stats.ServiceStats`.

A module-level default registry (:func:`get_registry`) serves as the
process-wide sink; components accept an explicit registry so tests can
isolate their totals.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.utils.tables import Table

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]


def _nearest_rank(ordered: list[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(1, -(-len(ordered) * pct // 100))
    return ordered[int(rank) - 1]


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Sampled distribution with count/sum/min/max and percentiles.

    Keeps a bounded reservoir (the most recent ``max_samples``
    observations) for percentile queries; count and sum stay exact.
    """

    __slots__ = ("_lock", "count", "total", "_min", "_max", "_samples", "_cap", "_next")

    def __init__(self, max_samples: int = 4096) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._samples: list[float] = []
        self._cap = max_samples
        self._next = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._samples) < self._cap:
                self._samples.append(value)
            else:  # ring-buffer overwrite of the oldest sample
                self._samples[self._next] = value
                self._next = (self._next + 1) % self._cap

    def export_state(self) -> dict:
        """Plain-data state (no locks) for cross-process transport."""
        with self._lock:
            return {
                "count": self.count,
                "total": self.total,
                "min": self._min if self.count else None,
                "max": self._max if self.count else None,
                "samples": list(self._samples),
            }

    def merge_state(self, state: dict) -> None:
        """Fold an exported state in: counts/sums add, extrema combine,
        samples concatenate into the bounded reservoir."""
        with self._lock:
            self.count += int(state["count"])
            self.total += float(state["total"])
            if state.get("min") is not None:
                self._min = min(self._min, float(state["min"]))
            if state.get("max") is not None:
                self._max = max(self._max, float(state["max"]))
            for value in state.get("samples", ()):
                # reservoir-only: count/total already folded above
                if len(self._samples) < self._cap:
                    self._samples.append(float(value))
                else:
                    self._samples[self._next] = float(value)
                    self._next = (self._next + 1) % self._cap

    def percentile(self, pct: float) -> float:
        with self._lock:
            return _nearest_rank(sorted(self._samples), pct)

    def summary(self) -> dict:
        with self._lock:
            ordered = sorted(self._samples)
            count = self.count
            return {
                "count": count,
                "sum": self.total,
                "mean": self.total / count if count else 0.0,
                "min": self._min if count else 0.0,
                "max": self._max if count else 0.0,
                "p50": _nearest_rank(ordered, 50),
                "p95": _nearest_rank(ordered, 95),
                "p99": _nearest_rank(ordered, 99),
            }


def _series_key(name: str, labels: dict[str, str]) -> tuple:
    return (name, tuple(sorted(labels.items())))


def _render_series(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create registry of labeled instruments (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict[str, str]):
        key = _series_key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls()
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {_render_series(name, labels)!r} already "
                    f"registered as {type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(Histogram, name, labels)

    def series(self, name: str) -> dict[tuple, Counter | Gauge | Histogram]:
        """Every labeled child of one metric name, keyed by label items."""
        with self._lock:
            return {
                key[1]: metric
                for key, metric in self._metrics.items()
                if key[0] == name
            }

    def total(self, name: str) -> float:
        """Sum of a counter's value across all its labeled children."""
        out = 0.0
        for metric in self.series(name).values():
            if not isinstance(metric, Counter):
                raise TypeError(f"metric {name!r} is not a counter family")
            out += metric.value
        return out

    def snapshot(self) -> dict[str, float | dict]:
        """Flat ``name{labels} -> value`` view (histograms as summaries)."""
        with self._lock:
            items = list(self._metrics.items())
        out: dict[str, float | dict] = {}
        for (name, labels), metric in sorted(items, key=lambda kv: kv[0]):
            series = _render_series(name, dict(labels))
            if isinstance(metric, Histogram):
                out[series] = metric.summary()
            else:
                out[series] = metric.value
        return out

    def render(self, title: str = "metrics") -> str:
        """The snapshot as an aligned two-column table."""
        table = Table("metric", "value", title=title)
        for series, value in self.snapshot().items():
            if isinstance(value, dict):
                table.add_row(
                    series,
                    f"n={value['count']} mean={value['mean']:.4g} "
                    f"p95={value['p95']:.4g} max={value['max']:.4g}",
                )
            else:
                text = f"{value:g}"
                table.add_row(series, text)
        return table.render()

    def export_state(self) -> dict:
        """Serializable registry state: a list of plain-data series records.

        Unlike :meth:`snapshot` (a human-oriented flat view), the export is
        lossless and mergeable: each record carries the metric name, its
        label dict, the instrument type, and the raw state — no lock
        objects, so the dict pickles across process boundaries.  Shards
        ship these to the fleet dispatcher, which folds them together with
        :meth:`merge_state`.
        """
        with self._lock:
            items = list(self._metrics.items())
        series = []
        for (name, labels), metric in items:
            if isinstance(metric, Histogram):
                kind, state = "histogram", metric.export_state()
            elif isinstance(metric, Gauge):
                kind, state = "gauge", metric.value
            else:
                kind, state = "counter", metric.value
            series.append(
                {"name": name, "labels": dict(labels), "kind": kind,
                 "state": state}
            )
        return {"series": series}

    def merge_state(self, exported: dict) -> None:
        """Fold an :meth:`export_state` payload into this registry.

        Counters add, gauges take the incoming value (last writer wins —
        gauges describe the reporting process, not a sum), histograms merge
        counts/sums/extrema and concatenate reservoirs.
        """
        for record in exported.get("series", ()):
            labels = {str(k): str(v) for k, v in record["labels"].items()}
            kind = record["kind"]
            if kind == "counter":
                self.counter(record["name"], **labels).inc(
                    float(record["state"])
                )
            elif kind == "gauge":
                self.gauge(record["name"], **labels).set(
                    float(record["state"])
                )
            elif kind == "histogram":
                self.histogram(record["name"], **labels).merge_state(
                    record["state"]
                )
            else:
                raise ValueError(f"unknown metric kind {kind!r}")

    def reset(self) -> None:
        """Drop every registered instrument (test isolation helper)."""
        with self._lock:
            self._metrics.clear()


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY
