"""Trace summarization: the ``repro trace-report`` backend.

Digests a recorded construction trace into the quantities the paper's
convergence story is about: which actions the walk actually took (the mix
of tiling / inverse tiling / caching / vThread moves), how often states
were appended to the diverse ``top_results`` pool (acceptance rate), and
where the annealing converged (the step of the final memory-level change
per chain).
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Iterable

from repro.obs.tracer import TraceEvent, load_events
from repro.utils.tables import Table

__all__ = ["summarize_walk", "render_report", "trace_report"]


def summarize_walk(events: Iterable[TraceEvent]) -> dict:
    """Aggregate a trace's walk/measure/polish events into one dict."""
    steps = 0
    appended = 0
    action_mix: TallyCounter[str] = TallyCounter()
    prob_sum_err = 0.0
    last_cache_step: dict[int, int] = {}
    chain_steps: dict[int, int] = {}
    measures = 0
    measure_latency_sum = 0.0
    polish_count = 0
    polish_steps = 0
    compiles: list[TraceEvent] = []
    serves: TallyCounter[str] = TallyCounter()
    faults: TallyCounter[str] = TallyCounter()
    retries = 0
    breaker_transitions: TallyCounter[str] = TallyCounter()
    respawns: TallyCounter[str] = TallyCounter()
    crashes = 0
    quarantines = 0
    wasted_states = 0
    checkpoints = 0
    for event in events:
        if event.name == "walk_step":
            steps += 1
            args = event.args
            chain = int(args.get("chain", event.tid))
            chain_steps[chain] = chain_steps.get(chain, 0) + 1
            actions = args.get("actions", [])
            chosen = args.get("chosen")
            if actions and chosen is not None:
                kind = actions[int(chosen)]["kind"]
                action_mix[kind] += 1
                if kind == "cache":
                    last_cache_step[chain] = int(args.get("iteration", 0))
            prob_sum_err = max(
                prob_sum_err,
                abs(sum(a.get("prob", 0.0) for a in actions) - 1.0),
            )
            if args.get("appended"):
                appended += 1
        elif event.name == "measure":
            measures += 1
            measure_latency_sum += float(event.args.get("latency_s", 0.0))
        elif event.name == "polish":
            polish_count += 1
            polish_steps += int(event.args.get("steps", 0))
        elif event.name == "compile":
            compiles.append(event)
        elif event.name in ("serve", "dynamic_serve"):
            serves[event.args.get("tier") or event.args.get("source")] += 1
        elif event.name == "fault_injected":
            faults[event.args.get("kind", "?")] += 1
        elif event.name == "retry":
            retries += 1
        elif event.name == "breaker":
            breaker_transitions[
                f"{event.args.get('from', '?')}->{event.args.get('to', '?')}"
            ] += 1
        elif event.name == "worker_respawn":
            respawns[event.args.get("reason", "?")] += 1
        elif event.name == "worker_crash":
            crashes += 1
        elif event.name == "quarantine":
            quarantines += 1
        elif event.name == "wasted_recompute":
            wasted_states += int(event.args.get("states", 0))
            checkpoints += 1
    convergence = sorted(last_cache_step.values())
    return {
        "steps": steps,
        "chains": len(chain_steps),
        "action_mix": dict(sorted(action_mix.items())),
        "acceptance_rate": appended / steps if steps else 0.0,
        "prob_sum_err_max": prob_sum_err,
        "convergence_step_mean": (
            sum(convergence) / len(convergence) if convergence else None
        ),
        "convergence_step_max": convergence[-1] if convergence else None,
        "measurements": measures,
        "measure_latency_mean_s": (
            measure_latency_sum / measures if measures else 0.0
        ),
        "polish_passes": polish_count,
        "polish_steps_mean": polish_steps / polish_count if polish_count else 0.0,
        "compiles": len(compiles),
        "compile_wall_s": sum(e.dur for e in compiles),
        "serve_mix": dict(sorted(serves.items())),
        "resilience": {
            "faults_injected": dict(sorted(faults.items())),
            "retries": retries,
            "breaker_transitions": dict(sorted(breaker_transitions.items())),
            "worker_respawns": dict(sorted(respawns.items())),
            "worker_crashes": crashes,
            "quarantines": quarantines,
            "wasted_states": wasted_states,
            "wasted_attempts": checkpoints,
        },
    }


def render_report(summary: dict, title: str = "trace report") -> str:
    """Render a :func:`summarize_walk` summary as an aligned table."""
    table = Table("metric", "value", title=title)
    table.add_row("walk steps", summary["steps"])
    table.add_row("chains", summary["chains"])
    mix = summary["action_mix"]
    total_moves = sum(mix.values()) or 1
    for kind, count in mix.items():
        table.add_row(f"action:{kind}", f"{count} ({100 * count / total_moves:.1f}%)")
    table.add_row("acceptance rate", f"{summary['acceptance_rate']:.3f}")
    table.add_row("max |sum(p) - 1|", f"{summary['prob_sum_err_max']:.2e}")
    if summary["convergence_step_mean"] is not None:
        table.add_row(
            "convergence step (mean)", f"{summary['convergence_step_mean']:.1f}"
        )
        table.add_row("convergence step (max)", summary["convergence_step_max"])
    table.add_row("measurements", summary["measurements"])
    if summary["measurements"]:
        table.add_row(
            "measured latency (mean)",
            f"{summary['measure_latency_mean_s'] * 1e6:.1f} us",
        )
    table.add_row("polish passes", summary["polish_passes"])
    if summary["polish_passes"]:
        table.add_row(
            "polish steps (mean)", f"{summary['polish_steps_mean']:.1f}"
        )
    if summary["compiles"]:
        table.add_row("compiles", summary["compiles"])
        table.add_row("compile wall", f"{summary['compile_wall_s']:.3f} s")
    for tier, count in summary["serve_mix"].items():
        table.add_row(f"served:{tier}", count)
    res = summary.get("resilience", {})
    if any(
        v for v in res.values() if v
    ):  # only when the trace saw failure events
        for kind, count in res.get("faults_injected", {}).items():
            table.add_row(f"fault:{kind}", count)
        if res.get("retries"):
            table.add_row("retries", res["retries"])
        for move, count in res.get("breaker_transitions", {}).items():
            table.add_row(f"breaker:{move}", count)
        for reason, count in res.get("worker_respawns", {}).items():
            table.add_row(f"respawn:{reason}", count)
        if res.get("worker_crashes"):
            table.add_row("worker crashes", res["worker_crashes"])
        if res.get("quarantines"):
            table.add_row("cache quarantines", res["quarantines"])
        if res.get("wasted_states"):
            table.add_row("wasted walk states", res["wasted_states"])
    return table.render()


def trace_report(path: str, title: str | None = None) -> str:
    """Summarize one JSONL trace file (the CLI entry point)."""
    events = load_events(path)
    return render_report(summarize_walk(events), title=title or f"trace report: {path}")
