"""Observability: tracing and metrics for the construction walk.

The paper's convergence claims are about the *trajectory* of the Markov
walk — which actions fire, with what normalized probabilities, and where
the annealing converges — yet results alone only show the endpoint.  This
package records the trajectory:

* :mod:`repro.obs.tracer` — the :class:`Tracer` backends threaded through
  ``Gensor.compile`` / ``polish``, ``Measurer.measure``, and the serving
  layer (``NullTracer`` keeps the default path allocation-free);
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  labeled counters/gauges/histograms;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON export;
* :mod:`repro.obs.report` — the ``repro trace-report`` summarizer
  (action mix, acceptance rate, convergence step).
"""

from repro.obs.export import to_chrome_trace, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.report import render_report, summarize_walk, trace_report
from repro.obs.tracer import (
    JsonlTracer,
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
    load_events,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "TraceEvent",
    "Tracer",
    "get_registry",
    "load_events",
    "render_report",
    "summarize_walk",
    "to_chrome_trace",
    "trace_report",
    "write_chrome_trace",
]
