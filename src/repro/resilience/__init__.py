"""Resilience: fault injection, retries, breakers, supervised workers.

The ROADMAP's production north star means the compile service must
survive the failures a real fleet sees — hung compiles, crashed worker
threads, corrupt tuning-database entries, poisoned operator families —
and the paper's construction method is unusually well suited to a
retry/degrade-first design: the Markov walk is deterministic in its
seed and cheap to re-run, and the serving layer already has graceful
degraded tiers to shed into.

* :mod:`repro.resilience.faults` — deterministic, seeded fault injection
  (:class:`FaultPlan` / :class:`FaultInjector`), the chaos half of the
  story, driven by ``serve-bench --faults plan.json``;
* :mod:`repro.resilience.deadline` — cooperative :class:`CancelToken`
  polled inside the construction walk, so hung attempts are reclaimed;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` with capped
  exponential backoff and deterministic jitter;
* :mod:`repro.resilience.breaker` — per-family circuit breakers
  (closed → open → half-open) shedding poisoned families to the
  degraded tiers;
* :mod:`repro.resilience.supervisor` — :class:`SupervisedWorkerPool`
  with heartbeats, crash detection, and respawn;
* :mod:`repro.resilience.checkpoint` — crash-consistent
  :class:`WalkCheckpoint` snapshots of mid-walk state with byte-identical
  resume, persisted by :class:`CheckpointStore` with the schedule cache's
  journal+CRC discipline, so every recovery path above continues from
  the last checkpoint instead of step zero.
"""

from repro.resilience.breaker import BreakerBoard, BreakerConfig, CircuitBreaker
from repro.resilience.checkpoint import (
    CheckpointPolicy,
    CheckpointStore,
    Checkpointer,
    WalkCheckpoint,
)
from repro.resilience.deadline import CancelToken, CompileCancelled
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyMeasurer,
    InjectedFault,
    InjectedWorkerCrash,
    apply_fault,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import SupervisedWorkerPool

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "CancelToken",
    "CheckpointPolicy",
    "CheckpointStore",
    "Checkpointer",
    "CircuitBreaker",
    "CompileCancelled",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyMeasurer",
    "InjectedFault",
    "InjectedWorkerCrash",
    "RetryPolicy",
    "SupervisedWorkerPool",
    "WalkCheckpoint",
    "apply_fault",
]
