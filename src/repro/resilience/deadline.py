"""Cooperative cancellation: deadline tokens for the construction walk.

Python threads cannot be killed, so a hung or over-budget compilation is
cancelled *cooperatively*: the serving layer hands each attempt a
:class:`CancelToken`, and the hot loops (the Markov walk in
``Gensor.compile``, the greedy ``polish`` refinement, fault-injected
hangs) poll it at iteration boundaries.  An expired token raises
:class:`CompileCancelled`, which the retry layer treats as a per-attempt
timeout — the worker thread survives and moves on to the next attempt or
the degraded tiers.

Polling is branch-cheap by design: ``expired()`` is one event check plus
one clock read, and instrumented loops only call it when a token was
actually passed, so the single-request CLI path pays nothing.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CancelToken", "CompileCancelled"]


class CompileCancelled(Exception):
    """Raised cooperatively when a compilation overruns its token."""


class CancelToken:
    """A deadline plus an external kill switch, polled by compile loops.

    Args:
        deadline_s: absolute ``time.monotonic`` stamp after which the
            token expires; ``None`` means no time limit (cancellable only
            via :meth:`cancel`).
    """

    __slots__ = ("deadline_s", "_cancelled")

    def __init__(self, deadline_s: float | None = None) -> None:
        self.deadline_s = deadline_s
        self._cancelled = threading.Event()

    @classmethod
    def after(cls, seconds: float | None) -> "CancelToken":
        """A token expiring ``seconds`` from now (``None`` = never)."""
        if seconds is None:
            return cls(None)
        return cls(time.monotonic() + seconds)

    @classmethod
    def after_bounded(
        cls, seconds: float | None, cap_s: float | None
    ) -> "CancelToken":
        """A token expiring at the *sooner* of ``seconds`` and ``cap_s``.

        The serving layer caps the fixed per-attempt timeout by the
        request's remaining deadline: a request with 2s of budget left
        must not buy a 30s attempt.  Either bound may be ``None``
        (unlimited on that side); both ``None`` yields an unlimited
        token.
        """
        if seconds is None:
            return cls.after(cap_s)
        if cap_s is None:
            return cls.after(seconds)
        return cls.after(min(seconds, cap_s))

    def cancel(self) -> None:
        """Trip the token immediately (idempotent, thread-safe)."""
        self._cancelled.set()

    def expired(self) -> bool:
        if self._cancelled.is_set():
            return True
        return self.deadline_s is not None and time.monotonic() >= self.deadline_s

    def remaining_s(self) -> float | None:
        """Seconds until expiry, 0 when expired, ``None`` when unlimited."""
        if self._cancelled.is_set():
            return 0.0
        if self.deadline_s is None:
            return None
        return max(0.0, self.deadline_s - time.monotonic())

    def check(self) -> None:
        """Raise :class:`CompileCancelled` when expired (the poll point)."""
        if self.expired():
            raise CompileCancelled("compile attempt exceeded its deadline token")

    def sleep(self, seconds: float, slice_s: float = 0.01) -> None:
        """Sleep up to ``seconds``, waking early (and raising) on expiry.

        Fault-injected hangs block *here* instead of in a raw
        ``time.sleep`` so a per-attempt timeout can reclaim the worker.
        """
        end = time.monotonic() + seconds
        while True:
            self.check()
            left = end - time.monotonic()
            if left <= 0:
                return
            # wait() returns early when cancel() fires; the deadline half
            # of expiry is covered by slicing the sleep.
            self._cancelled.wait(min(slice_s, left))
