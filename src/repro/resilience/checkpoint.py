"""Crash-consistent checkpoint/resume for construction walks.

The annealed Markov walk is the longest-running unit of work in the
system, and before this module every recovery path (retry after a failed
attempt, worker-crash requeue, fleet shard respawn) restarted it from
step zero.  A :class:`WalkCheckpoint` freezes a mid-walk moment — the
current chain state, the candidate pool, the construction graph's node
bookkeeping and the *exact* bit-generator state of the chain RNG — such
that a walk resumed from it is byte-identical (schedule, trace suffix,
RNG consumption, node counts) to the uninterrupted walk.

Three pieces cooperate:

- :class:`CheckpointPolicy` decides *when* to snapshot: a coarse step
  cadence that tightens as the per-attempt deadline approaches, so the
  states at risk shrink exactly when a timeout kill becomes likely.
  The policy only ever fires at an iteration boundary — never inside
  the scored hot loop — and the snapshot itself is built lazily (the
  builder closure runs only on the steps that actually checkpoint).
- :class:`Checkpointer` carries the cadence state and a sink callback
  through one compile attempt, and accounts wasted recompute: the steps
  a crash loses are exactly those past the last checkpoint, so
  ``wasted_states()`` is bounded by one cadence interval.
- :class:`CheckpointStore` persists checkpoints across process death
  with the same discipline as the crash-safe schedule cache: CRC-32 of
  the canonical JSON body, journal sibling + fsync + :func:`os.replace`,
  an advisory ``.lock`` sibling for cross-process writers, and a
  ``.quarantine/`` directory for corrupt records (a bad checkpoint
  degrades to a fresh walk, never a crash).

What is deliberately *not* checkpointed (see DESIGN §14): multi-walker
walks (the merge order couples substreams; ``resume_from`` requires
``walkers=1``), the graph's *edge* memos (expansion is deterministic, so
resumed recomputation rebuilds value-identical memos; only node-key
membership affects observable counts), and the post-walk polish phase of
``compile`` (it is memoryless and cheap relative to the walk — though a
standalone :meth:`Gensor.polish` accepts polish-phase checkpoints).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from repro.core.cache import _file_lock, entry_checksum, shape_fingerprint
from repro.ir.etir import ETIR
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.utils import rng as rng_util

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.constructor import GensorConfig
    from repro.ir.compute import ComputeDef
    from repro.resilience.deadline import CancelToken

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointPolicy",
    "CheckpointStore",
    "Checkpointer",
    "WalkCheckpoint",
    "build_walk_checkpoint",
    "config_to_state",
    "state_config",
    "walk_config_digest",
]

CHECKPOINT_VERSION = 1

#: portable ETIR identity: (tiles as nested int tuples, vthreads, cur_level).
#: Exactly the information both walk paths key states by, in a form that is
#: hashable, picklable and JSON-able, and convertible to either path's
#: native representation (object ETIR or SoA int64 arrays) without loss.
StateConfig = "tuple[tuple[tuple[int, ...], ...], tuple[int, ...], int]"


def walk_config_digest(config: "GensorConfig") -> str:
    """Digest of the config fields that shape the walk's RNG stream.

    A checkpoint is only valid for resume under a config whose *walk*
    behaves identically: same seed, annealing schedule, chain structure
    and action space.  Fields that only affect the post-walk pipeline
    (``top_k``, ``polish_steps``, ``multi_objective`` scoring weights do
    affect transition probabilities, so they are included) or that both
    walk paths already prove bit-equivalent (``batch_scoring`` — the SoA
    gate) are deliberately excluded, so a checkpoint taken on the SoA
    path resumes on the object path and vice versa.
    """
    fields = (
        int(config.seed),
        float(config.initial_temperature),
        float(config.cooling),
        float(config.threshold),
        int(config.num_chains),
        int(config.max_iterations_per_chain),
        bool(config.enable_vthread),
        bool(config.multi_objective),
    )
    return hashlib.sha256(repr(fields).encode()).hexdigest()[:16]


def state_config(state: ETIR) -> tuple:
    """The portable ``(tiles, vthreads, cur_level)`` identity of a state."""
    return (state.config.tiles, state.config.vthreads, state.cur_level)


def config_to_state(
    compute: "ComputeDef", config: Sequence, num_levels: int
) -> ETIR:
    """Rebuild a validated :class:`ETIR` from a portable state config."""
    tiles, vthreads, level = config
    return ETIR.from_arrays(
        compute,
        np.array(tiles, dtype=np.int64),
        np.array(vthreads, dtype=np.int64),
        int(level),
        int(num_levels),
    )


def _config_to_json(config: Sequence) -> list:
    tiles, vthreads, level = config
    return [[list(row) for row in tiles], list(vthreads), int(level)]


def _config_from_json(data: Sequence) -> tuple:
    tiles, vthreads, level = data
    return (
        tuple(tuple(int(x) for x in row) for row in tiles),
        tuple(int(x) for x in vthreads),
        int(level),
    )


@dataclass(frozen=True)
class WalkCheckpoint:
    """A frozen mid-walk moment, sufficient for byte-identical resume.

    Plain data only (ints, floats, strings, nested tuples, a dict of
    ints for the RNG state): the checkpoint crosses process boundaries
    as a fleet wire payload and survives JSON round trips through the
    on-disk store.  ``candidates`` and ``node_keys`` preserve insertion
    order — candidate order decides ranking tie-breaks and node-key
    membership drives future ``states_visited`` increments, so both are
    part of the parity contract, not just their contents.
    """

    #: shape fingerprint of the operator the walk is compiling.
    compute_key: str
    #: :func:`walk_config_digest` of the config that produced the walk.
    config_digest: str
    #: cache-hierarchy depth the walk runs over (``hw.num_cache_levels``).
    num_levels: int
    #: chain index the walk was in when snapshotted.
    chain: int
    #: completed iterations within that chain.
    iteration: int
    #: completed iterations across all chains (monotone; resume offset).
    total_steps: int
    #: annealing temperature *after* the snapshot iteration's cooling.
    temperature: float
    #: portable config of the chain's current state.
    state: tuple
    #: exact bit-generator state after the snapshot iteration's draws
    #: (``None`` for polish-phase checkpoints — polish consumes no RNG).
    rng_state: dict | None
    #: portable configs of the candidate pool, insertion-ordered.
    candidates: tuple = ()
    #: portable configs of the graph/engine node keys, insertion-ordered.
    node_keys: tuple = ()
    #: the graph/engine's monotone states-visited counter.
    nodes_seen: int = 0
    #: ``"walk"`` or ``"polish"``.
    phase: str = "walk"
    version: int = CHECKPOINT_VERSION

    # -- validation --------------------------------------------------------

    def matches(self, compute: "ComputeDef", config: "GensorConfig") -> bool:
        """Whether this walk checkpoint may resume ``compute`` under ``config``."""
        return (
            self.phase == "walk"
            and self.version == CHECKPOINT_VERSION
            and self.rng_state is not None
            and self.compute_key == shape_fingerprint(compute)
            and self.config_digest == walk_config_digest(config)
        )

    def require(self, compute: "ComputeDef", config: "GensorConfig") -> None:
        """Raise :class:`ValueError` unless :meth:`matches` holds."""
        if self.matches(compute, config):
            return
        raise ValueError(
            f"checkpoint (phase={self.phase!r}, version={self.version}, "
            f"compute={self.compute_key!r}) cannot resume "
            f"{shape_fingerprint(compute)!r} under the current walk config"
        )

    def matches_polish(self, compute: "ComputeDef") -> bool:
        """Whether this is a polish checkpoint for ``compute``."""
        return (
            self.phase == "polish"
            and self.version == CHECKPOINT_VERSION
            and self.compute_key == shape_fingerprint(compute)
        )

    def require_polish(self, compute: "ComputeDef") -> None:
        if self.matches_polish(compute):
            return
        raise ValueError(
            f"checkpoint (phase={self.phase!r}, compute={self.compute_key!r}) "
            f"is not a polish checkpoint for {shape_fingerprint(compute)!r}"
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def for_polish(
        cls, compute: "ComputeDef", state: ETIR, steps_done: int
    ) -> "WalkCheckpoint":
        """Checkpoint a greedy polish after ``steps_done`` completed steps.

        Polish is memoryless (each step depends only on the current
        state), so the snapshot needs no RNG, candidates or node keys:
        resuming from ``state`` with the remaining budget reproduces the
        uninterrupted result exactly.
        """
        return cls(
            compute_key=shape_fingerprint(compute),
            config_digest="",
            num_levels=state.num_levels,
            chain=-1,
            iteration=int(steps_done),
            total_steps=int(steps_done),
            temperature=0.0,
            state=state_config(state),
            rng_state=None,
            phase="polish",
        )

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "phase": self.phase,
            "compute_key": self.compute_key,
            "config_digest": self.config_digest,
            "num_levels": self.num_levels,
            "chain": self.chain,
            "iteration": self.iteration,
            "total_steps": self.total_steps,
            "temperature": self.temperature,
            "state": _config_to_json(self.state),
            "rng_state": self.rng_state,
            "candidates": [_config_to_json(c) for c in self.candidates],
            "node_keys": [_config_to_json(c) for c in self.node_keys],
            "nodes_seen": self.nodes_seen,
        }

    @classmethod
    def from_json(cls, data: dict) -> "WalkCheckpoint":
        rng_state = data.get("rng_state")
        if rng_state is not None and not isinstance(rng_state, dict):
            raise ValueError("rng_state must be a mapping or null")
        return cls(
            compute_key=str(data["compute_key"]),
            config_digest=str(data["config_digest"]),
            num_levels=int(data["num_levels"]),
            chain=int(data["chain"]),
            iteration=int(data["iteration"]),
            total_steps=int(data["total_steps"]),
            temperature=float(data["temperature"]),
            state=_config_from_json(data["state"]),
            rng_state=rng_state,
            candidates=tuple(
                _config_from_json(c) for c in data.get("candidates", [])
            ),
            node_keys=tuple(
                _config_from_json(c) for c in data.get("node_keys", [])
            ),
            nodes_seen=int(data.get("nodes_seen", 0)),
            phase=str(data.get("phase", "walk")),
            version=int(data.get("version", CHECKPOINT_VERSION)),
        )


def build_walk_checkpoint(
    compute: "ComputeDef",
    config: "GensorConfig",
    *,
    num_levels: int,
    chain: int,
    iteration: int,
    total_steps: int,
    temperature: float,
    state_config: tuple,
    rng: np.random.Generator,
    candidate_configs: Iterable[tuple],
    node_keys: Iterable[tuple],
    nodes_seen: int,
) -> WalkCheckpoint:
    """Assemble a walk-phase checkpoint (shared by both walk paths)."""
    return WalkCheckpoint(
        compute_key=shape_fingerprint(compute),
        config_digest=walk_config_digest(config),
        num_levels=int(num_levels),
        chain=int(chain),
        iteration=int(iteration),
        total_steps=int(total_steps),
        temperature=float(temperature),
        state=state_config,
        rng_state=rng_util.rng_state(rng),
        candidates=tuple(candidate_configs),
        node_keys=tuple(node_keys),
        nodes_seen=int(nodes_seen),
    )


@dataclass(frozen=True)
class CheckpointPolicy:
    """Deadline- and cost-aware step cadence for checkpointing.

    Far from the attempt deadline a snapshot every ``every_steps``
    iterations keeps overhead negligible; once the cancel token's
    remaining budget drops under ``near_deadline_s`` the cadence
    tightens to ``near_every_steps``, because a timeout kill is now the
    likely outcome and the snapshot gap is exactly the recompute a
    resume will pay.  The policy reads only the token's monotonic
    remaining time — never the wall clock — so it is legal in the
    deterministic walk zone.
    """

    every_steps: int = 64
    near_deadline_s: float = 1.0
    near_every_steps: int = 8

    def __post_init__(self) -> None:
        if self.every_steps < 1:
            raise ValueError("every_steps must be >= 1")
        if self.near_every_steps < 1:
            raise ValueError("near_every_steps must be >= 1")
        if self.near_deadline_s < 0:
            raise ValueError("near_deadline_s must be >= 0")

    def interval_for(self, cancel: "CancelToken | None") -> int:
        """Current snapshot interval in steps, given the attempt deadline."""
        if cancel is not None and self.near_every_steps < self.every_steps:
            remaining = cancel.remaining_s()
            if remaining is not None and remaining <= self.near_deadline_s:
                return self.near_every_steps
        return self.every_steps


class Checkpointer:
    """Cadence state + sink for one compile attempt's checkpoints.

    The walk calls :meth:`on_step` once per completed iteration, at the
    iteration boundary; the ``builder`` closure that actually assembles
    a :class:`WalkCheckpoint` runs only when the cadence fires, so the
    scored hot loop never pays for serialization.  ``steps_seen`` and
    ``last_total`` are absolute (they include the resume offset of a
    prior checkpoint via :meth:`start_from`), which makes
    :meth:`wasted_states` — the recompute a crash right now would cost —
    a simple difference bounded by one cadence interval.
    """

    def __init__(
        self,
        policy: CheckpointPolicy | None = None,
        sink: Callable[[WalkCheckpoint], None] | None = None,
    ) -> None:
        self.policy = policy if policy is not None else CheckpointPolicy()
        self.sink = sink
        #: the most recent checkpoint, if any.
        self.last: WalkCheckpoint | None = None
        #: absolute walk steps observed (including any resume offset).
        self.steps_seen = 0
        #: ``total_steps`` of the most recent checkpoint.
        self.last_total = 0
        #: how many checkpoints this attempt produced.
        self.saved = 0
        self._since = 0

    def start_from(self, checkpoint: WalkCheckpoint) -> None:
        """Seed the cadence state when an attempt resumes from a checkpoint."""
        self.last = checkpoint
        self.steps_seen = checkpoint.total_steps
        self.last_total = checkpoint.total_steps
        self._since = 0

    def on_step(
        self,
        cancel: "CancelToken | None",
        builder: Callable[[], WalkCheckpoint],
    ) -> None:
        """Record one completed iteration; snapshot if the cadence is due."""
        self.steps_seen += 1
        self._since += 1
        if self._since < self.policy.interval_for(cancel):
            return
        checkpoint = builder()
        self.last = checkpoint
        self.last_total = checkpoint.total_steps
        self.saved += 1
        self._since = 0
        if self.sink is not None:
            self.sink(checkpoint)

    def wasted_states(self) -> int:
        """Walk steps a crash right now would have to recompute on resume."""
        return max(0, self.steps_seen - self.last_total)


class CheckpointStore:
    """On-disk checkpoint records, one per (device, shape) key.

    Same crash-safety discipline as the schedule cache: the JSON body
    carries a CRC-32 of its canonical serialization, writes go through a
    journal sibling + fsync + atomic :func:`os.replace` under an
    advisory ``.lock`` sibling, and a record that fails any load check
    is moved into ``.quarantine/`` (with a uniqued filename, so repeated
    corruption never overwrites earlier evidence) and reported as
    ``resilience_checkpoint_corrupt_total`` — the caller sees ``None``
    and falls back to a fresh walk, never an exception.
    """

    def __init__(
        self,
        root: str | Path,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.registry = registry if registry is not None else get_registry()

    def path_for(self, device: str, compute_key: str) -> Path:
        digest = hashlib.sha256(
            f"{device}/{compute_key}".encode()
        ).hexdigest()[:16]
        return self.root / f"ckpt-{digest}.json"

    def save(self, device: str, checkpoint: WalkCheckpoint) -> Path:
        """Persist crash-safely; a reader sees the old or new record, never torn."""
        path = self.path_for(device, checkpoint.compute_key)
        body = checkpoint.to_json()
        payload = {
            "device": device,
            "compute_key": checkpoint.compute_key,
            "checkpoint": body,
            "crc": entry_checksum(body),
        }
        with _file_lock(path):
            journal = path.parent / f".{path.name}.journal.{os.getpid()}"
            try:
                with open(journal, "w", encoding="utf-8") as fh:
                    fh.write(json.dumps(payload, sort_keys=True))
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(journal, path)
            finally:
                journal.unlink(missing_ok=True)
        self.registry.counter("resilience_checkpoint_saves_total").inc()
        return path

    def load(self, device: str, compute_key: str) -> WalkCheckpoint | None:
        """The stored checkpoint, or ``None`` (missing or quarantined-corrupt)."""
        path = self.path_for(device, compute_key)
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("expected a checkpoint payload object")
            if payload.get("device") != device:
                raise ValueError(
                    f"checkpoint for device {payload.get('device')!r}, "
                    f"not {device!r}"
                )
            body = payload["checkpoint"]
            if entry_checksum(body) != payload.get("crc"):
                raise ValueError("checksum mismatch")
            checkpoint = WalkCheckpoint.from_json(body)
        except (
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
        ) as exc:
            self._quarantine(path, str(exc))
            return None
        self.registry.counter("resilience_checkpoint_loads_total").inc()
        return checkpoint

    def discard(self, device: str, compute_key: str) -> None:
        """Drop the record (the walk landed; the checkpoint is dead weight)."""
        path = self.path_for(device, compute_key)
        with _file_lock(path):
            path.unlink(missing_ok=True)

    def _quarantine(self, path: Path, reason: str) -> None:
        qdir = self.root / ".quarantine"
        qdir.mkdir(exist_ok=True)
        target = qdir / path.name
        suffix = 1
        while target.exists():
            target = qdir / f"{path.name}.{suffix}"
            suffix += 1
        try:
            os.replace(path, target)
            (qdir / f"{target.name}.reason").write_text(reason)
        except OSError:  # permission/cross-device trouble: leave in place
            pass
        self.registry.counter("resilience_checkpoint_corrupt_total").inc()
