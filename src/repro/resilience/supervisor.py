"""Supervised worker pool: heartbeats, crash detection, respawn.

Same surface and queue discipline as :class:`repro.serve.pool.WorkerPool`
(bounded priority queue, strictly non-blocking admission, drain-then-stop
shutdown) plus a supervisor thread that keeps the worker roster at full
strength:

* **dead workers** — a worker thread killed by an escaped exception (a
  real bug, or an injected :class:`~repro.resilience.faults.InjectedWorkerCrash`)
  is detected via ``Thread.is_alive`` and replaced.  Queued work items
  are untouched: they live in the queue, not in the thread.
* **stuck workers** — a worker whose heartbeat goes stale mid-item (a
  non-cooperative hang) is *abandoned*: removed from the roster so a
  fresh replacement thread picks up the queue, while the stuck daemon
  thread is left to either finish and exit (it notices it left the
  roster) or linger harmlessly until process exit.

Respawns are reported through ``on_respawn(reason)`` so the serving
layer can emit ``resilience_worker_respawns_total{reason=dead|stuck}``.
Ordinary exceptions raised by a work item do **not** kill the worker —
they are swallowed, counted, and reported via ``on_item_error``.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["SupervisedWorkerPool"]


@dataclass(order=True)
class _WorkItem:
    #: (-priority, admission sequence): higher priority first, FIFO within.
    sort_key: tuple[int, int]
    fn: Callable[[], None] = field(compare=False)


class SupervisedWorkerPool:
    """Bounded priority pool whose workers are supervised and respawned."""

    def __init__(
        self,
        workers: int = 4,
        capacity: int = 64,
        name: str = "serve",
        stall_timeout_s: float = 30.0,
        supervise_interval_s: float = 0.05,
        on_respawn: Callable[[str], None] | None = None,
        on_item_error: Callable[[BaseException], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if stall_timeout_s <= 0:
            raise ValueError(f"stall_timeout_s must be > 0, got {stall_timeout_s}")
        self.capacity = capacity
        self.name = name
        self.stall_timeout_s = stall_timeout_s
        self.supervise_interval_s = supervise_interval_s
        self._on_respawn = on_respawn
        self._on_item_error = on_item_error
        self._queue: queue.PriorityQueue[_WorkItem] = queue.PriorityQueue(
            maxsize=capacity
        )
        self._seq = itertools.count()
        self._spawn_seq = itertools.count()
        self._stop = threading.Event()
        #: serializes admission against shutdown: no item can be enqueued
        #: after the stop decision (closes the check-then-put race).
        self._admit_lock = threading.Lock()
        self._roster_lock = threading.Lock()
        self._roster: set[threading.Thread] = set()
        self._beats: dict[threading.Thread, float] = {}
        self._busy: dict[threading.Thread, float] = {}
        self._abandoned: set[threading.Thread] = set()
        self.respawns: dict[str, int] = {"dead": 0, "stuck": 0}
        self.item_errors = 0
        for _ in range(workers):
            self._spawn()
        self._target_workers = workers
        self._supervisor = threading.Thread(
            target=self._supervise, name=f"{name}-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- admission (same contract as WorkerPool) --------------------------------

    @property
    def num_workers(self) -> int:
        with self._roster_lock:
            return len(self._roster)

    def depth(self) -> int:
        """Current queue backlog (approximate, racy by nature)."""
        return self._queue.qsize()

    @property
    def target_workers(self) -> int:
        """Roster size the supervisor maintains (autoscaling moves this)."""
        with self._roster_lock:
            return self._target_workers

    def resize(self, target: int) -> int:
        """Grow or shrink the worker roster toward ``target`` threads.

        Growing spawns immediately.  Shrinking retires *idle* workers
        (they drop off the roster and exit on their next loop); busy
        workers finish their current item and are trimmed by later resize
        ticks, so shrink never abandons in-flight work.  Returns the
        roster size after the call.  The autoscaler drives this from
        queue-depth/queue-wait signals.
        """
        if target < 1:
            raise ValueError(f"target must be >= 1, got {target}")
        spawn = 0
        with self._roster_lock:
            self._target_workers = target
            current = len(self._roster)
            if current < target:
                spawn = target - current
            elif current > target:
                idle = [t for t in self._roster if t not in self._busy]
                for t in idle[: current - target]:
                    self._roster.discard(t)
                    self._beats.pop(t, None)
        for _ in range(spawn):
            self._spawn()
        return self.num_workers

    def submit_nowait(self, fn: Callable[[], None], priority: int = 0) -> None:
        """Admit one work item or fail fast.

        Raises :class:`queue.Full` when saturated and :class:`RuntimeError`
        after :meth:`shutdown` — the caller owns turning either into a
        rejection response.
        """
        with self._admit_lock:
            if self._stop.is_set():
                raise RuntimeError("worker pool is shut down")
            self._queue.put_nowait(_WorkItem((-priority, next(self._seq)), fn))

    def shutdown(self, wait: bool = True, join_timeout_s: float = 10.0) -> int:
        """Stop admission, drain admitted items, stop workers and supervisor.

        Returns the number of threads that failed to join within
        ``join_timeout_s`` each (0 in a healthy pool); leaked threads are
        daemons abandoned mid-hang and die with the process.
        """
        with self._admit_lock:
            self._stop.set()
        leaked = 0
        if wait:
            self._supervisor.join(timeout=join_timeout_s)
            with self._roster_lock:
                workers = list(self._roster)
            for t in workers:
                t.join(timeout=join_timeout_s)
                if t.is_alive():
                    leaked += 1
                    with self._roster_lock:
                        self._roster.discard(t)
                        self._abandoned.add(t)
        return leaked

    # -- supervision -------------------------------------------------------------

    def abandoned_count(self) -> int:
        with self._roster_lock:
            return len(self._abandoned)

    def _spawn(self) -> threading.Thread:
        t = threading.Thread(
            target=self._run,
            name=f"{self.name}-worker-{next(self._spawn_seq)}",
            daemon=True,
        )
        with self._roster_lock:
            self._roster.add(t)
            self._beats[t] = time.monotonic()
        t.start()
        return t

    def _respawn(self, dead: threading.Thread, reason: str) -> None:
        with self._roster_lock:
            if dead not in self._roster:
                return
            self._roster.discard(dead)
            self._beats.pop(dead, None)
            if reason == "stuck":
                self._abandoned.add(dead)
            self.respawns[reason] = self.respawns.get(reason, 0) + 1
            # After a shrink, deaths among the surplus are not replaced.
            if len(self._roster) >= self._target_workers:
                if self._on_respawn is not None:
                    self._on_respawn(reason)
                return
        self._spawn()
        if self._on_respawn is not None:
            self._on_respawn(reason)

    def _supervise(self) -> None:
        while not self._stop.wait(self.supervise_interval_s):
            now = time.monotonic()
            with self._roster_lock:
                snapshot = [
                    (t, self._beats.get(t, now), t in self._busy)
                    for t in self._roster
                ]
            for t, beat, busy in snapshot:
                if not t.is_alive():
                    self._respawn(t, "dead")
                elif busy and now - beat > self.stall_timeout_s:
                    self._respawn(t, "stuck")

    def _run(self) -> None:
        me = threading.current_thread()
        while True:
            with self._roster_lock:
                if me not in self._roster:
                    return  # abandoned by the supervisor: retire quietly
                self._beats[me] = time.monotonic()
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    self._retire(me)
                    return
                continue
            with self._roster_lock:
                self._beats[me] = time.monotonic()
                self._busy[me] = self._beats[me]
            try:
                item.fn()
            except Exception as exc:  # repro: ignore[broad-except] - pool contract: item failures stay with the item
                # Item failures are the item's problem, not the worker's;
                # counted on item_errors and surfaced via _on_item_error.
                self.item_errors += 1
                if self._on_item_error is not None:
                    self._on_item_error(exc)
            except BaseException:
                # Worker-fatal (injected crash, interpreter teardown): die
                # like a real crashed thread; the supervisor respawns.
                self._queue.task_done()
                with self._roster_lock:
                    self._busy.pop(me, None)
                raise
            self._queue.task_done()
            with self._roster_lock:
                self._busy.pop(me, None)
                self._beats[me] = time.monotonic()

    def _retire(self, me: threading.Thread) -> None:
        with self._roster_lock:
            self._roster.discard(me)
            self._beats.pop(me, None)
            self._busy.pop(me, None)
