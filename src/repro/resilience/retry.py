"""Retry policy: exponential backoff with deterministic jitter.

The paper's construction method is cheap and fully deterministic given
its seed, which makes retry the natural first response to a transient
compile failure: re-running an attempt costs milliseconds of CPU and
reproduces the identical walk.  The policy here bounds attempts, spaces
them with capped exponential backoff, and jitters the spacing from a
seeded stream (``spawn_rng(seed, "retry", family, attempt)``) so chaos
runs are reproducible while concurrent retries of one poisoned family
still decorrelate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import spawn_rng

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered exponential backoff plus a per-attempt timeout.

    Args:
        max_attempts: total tries (1 = no retry).
        base_backoff_s: sleep before the second attempt.
        multiplier: backoff growth per attempt.
        max_backoff_s: backoff cap.
        jitter: fraction of the backoff drawn uniformly at random
            (0 = fully deterministic spacing, 1 = full-jitter).
        attempt_timeout_s: per-attempt cooperative deadline; an attempt
            running past it is cancelled via its
            :class:`~repro.resilience.deadline.CancelToken` and counts as
            a failure.  ``None`` disables attempt timeouts.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.02
    multiplier: float = 2.0
    max_backoff_s: float = 0.5
    jitter: float = 0.5
    attempt_timeout_s: float | None = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive or None")

    def backoff_s(
        self,
        attempt: int,
        seed: int = 0,
        family: str = "",
        remaining_s: float | None = None,
    ) -> float:
        """Sleep before retrying after failed attempt number ``attempt``.

        Deterministic in ``(seed, family, attempt)``: the jittered
        fraction comes from its own spawned stream, never the walk's.
        ``remaining_s`` caps the result by the request's remaining
        deadline — sleeping past the deadline would turn a still-servable
        request into a guaranteed miss.  The jitter stream is consumed
        identically with or without the cap, so chaos runs stay
        reproducible.
        """
        raw = min(
            self.base_backoff_s * self.multiplier**attempt, self.max_backoff_s
        )
        if self.jitter != 0.0 and raw != 0.0:
            rng = spawn_rng(seed, "retry", family, attempt)
            raw = raw * (1.0 - self.jitter + self.jitter * float(rng.random()))
        if remaining_s is not None:
            raw = min(raw, max(0.0, remaining_s))
        return raw

    def attempt_timeout_for(self, remaining_s: float | None) -> float | None:
        """The per-attempt timeout capped by the request's remaining deadline.

        ``None`` on both sides means unlimited; otherwise the sooner
        bound wins, so an attempt never outlives the request it serves.
        """
        if self.attempt_timeout_s is None:
            return remaining_s
        if remaining_s is None:
            return self.attempt_timeout_s
        return min(self.attempt_timeout_s, remaining_s)
