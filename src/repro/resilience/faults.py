"""Deterministic fault injection for the compile path.

Chaos testing a compile service needs *reproducible* chaos: a
:class:`FaultPlan` (loadable from JSON, ``serve-bench --faults plan.json``)
describes which operator families fail, how, on which attempts, and at
what rate; a seeded :class:`FaultInjector` turns the plan into concrete
per-attempt decisions using its own :func:`~repro.utils.rng.spawn_rng`
streams — completely disjoint from the Markov-walk streams, so injecting
faults never perturbs the schedules of requests that don't hit one
(RNG-stream parity, asserted by ``tests/test_serve_resilience.py``).

Fault kinds:

* ``raise`` — the compile attempt raises :class:`InjectedFault`.
* ``hang`` — the attempt blocks (cooperatively, up to ``seconds``) and
  then raises; with a per-attempt deadline token the hang is cancelled
  the moment the token expires, without one it exercises the stuck-worker
  supervisor.
* ``slow`` — the attempt sleeps ``seconds`` and then proceeds normally.
* ``corrupt-cache`` — the request's :class:`~repro.core.cache.ScheduleCache`
  entry is mangled in place before the attempt (the service must recover
  by recompiling, never by crashing).
* ``crash`` — the attempt raises :class:`InjectedWorkerCrash`, a
  ``BaseException`` that sails through the service's exception handling
  and kills the worker thread mid-request, exercising supervision and
  ticket requeueing.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience.deadline import CancelToken
from repro.utils.rng import spawn_rng

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedWorkerCrash",
]

FAULT_KINDS = ("raise", "hang", "slow", "corrupt-cache", "crash")


class InjectedFault(Exception):
    """A deliberately injected, retryable compile failure."""


class InjectedWorkerCrash(BaseException):
    """A deliberately injected worker-thread death.

    Derives from ``BaseException`` so the service's ``except Exception``
    safety nets do *not* absorb it — exactly like a real worker crash,
    the thread dies and the supervisor must respawn it.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: what fires, on whom, how often.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        family: operator-family fingerprint this rule targets
            (:func:`~repro.core.cache.family_fingerprint`), or ``"*"`` for
            every family.
        rate: firing probability per eligible attempt.
        attempts: attempt numbers (0-based) the rule applies to; ``None``
            means every attempt.
        seconds: sleep duration for ``slow`` and hang cap for ``hang``.
    """

    kind: str
    family: str = "*"
    rate: float = 1.0
    attempts: tuple[int, ...] | None = None
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choices: {FAULT_KINDS}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def matches(self, family: str, attempt: int) -> bool:
        if self.family != "*" and self.family != family:
            return False
        return self.attempts is None or attempt in self.attempts

    def to_json(self) -> dict:
        out: dict = {"kind": self.kind, "family": self.family, "rate": self.rate}
        if self.attempts is not None:
            out["attempts"] = list(self.attempts)
        if self.kind in ("hang", "slow"):
            out["seconds"] = self.seconds
        return out

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict) or "kind" not in data:
            raise ValueError(f"fault spec must be an object with 'kind', got {data!r}")
        attempts = data.get("attempts")
        return cls(
            kind=str(data["kind"]),
            family=str(data.get("family", "*")),
            rate=float(data.get("rate", 1.0)),
            attempts=None if attempts is None else tuple(int(a) for a in attempts),
            seconds=float(data.get("seconds", 0.05)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules (the ``--faults plan.json`` payload)."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def to_json(self) -> dict:
        return {"seed": self.seed, "faults": [f.to_json() for f in self.faults]}

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict) or not isinstance(data.get("faults"), list):
            raise ValueError(
                "fault plan must be an object with a 'faults' list, "
                f"got {type(data).__name__}"
            )
        return cls(
            faults=tuple(FaultSpec.from_json(f) for f in data["faults"]),
            seed=int(data.get("seed", 0)),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt fault plan {path}: {exc}") from exc
        return cls.from_json(payload)


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault (the injector's audit log for parity checks)."""

    kind: str
    family: str
    attempt: int
    key: str | None = None


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-attempt decisions.

    The decision stream for the *n*-th eligible attempt of
    ``(family, attempt)`` is ``spawn_rng(plan.seed, "fault", family,
    attempt, n)`` — disjoint from every construction-walk stream, stable
    under re-runs with the same arrival order, and steerable per CI seed.
    Every fired fault is counted in ``resilience_faults_injected_total``
    and appended to :attr:`log`.
    """

    def __init__(
        self,
        plan: FaultPlan,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.plan = plan
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.log: list[FaultEvent] = []
        self._lock = threading.Lock()
        self._draws: dict[tuple[str, int], int] = {}

    def draw(self, family: str, attempt: int, key: str | None = None) -> FaultSpec | None:
        """Decide whether this attempt faults; first matching rule wins."""
        for spec in self.plan.faults:
            if not spec.matches(family, attempt):
                continue
            with self._lock:
                n = self._draws.get((family, attempt), 0)
                self._draws[(family, attempt)] = n + 1
            rng = spawn_rng(self.plan.seed, "fault", family, attempt, n)
            if spec.rate >= 1.0 or rng.random() < spec.rate:
                with self._lock:
                    self.log.append(FaultEvent(spec.kind, family, attempt, key))
                self.registry.counter(
                    "resilience_faults_injected_total", kind=spec.kind
                ).inc()
                if self.tracer.enabled:
                    self.tracer.emit(
                        "fault_injected",
                        {"kind": spec.kind, "family": family,
                         "attempt": attempt, "key": key},
                    )
                return spec
        return None

    def faulted_keys(self) -> set[str]:
        """Shape fingerprints that ever hit a fault (for parity checks)."""
        with self._lock:
            return {e.key for e in self.log if e.key is not None}


def apply_fault(spec: FaultSpec, token: CancelToken | None = None) -> None:
    """Execute a drawn fault inside the compile attempt.

    ``slow`` returns after sleeping; ``raise``/``hang`` raise
    :class:`InjectedFault`; ``crash`` raises :class:`InjectedWorkerCrash`.
    ``corrupt-cache`` is a service-level fault and is a no-op here.
    """
    if spec.kind == "slow":
        (token or CancelToken()).sleep(spec.seconds)
        return
    if spec.kind == "hang":
        # Block cooperatively: a per-attempt token cancels the hang (and
        # CompileCancelled propagates); without one, the hang runs its
        # full course and still fails the attempt.
        (token or CancelToken()).sleep(spec.seconds)
        raise InjectedFault(f"injected hang elapsed after {spec.seconds}s")
    if spec.kind == "raise":
        raise InjectedFault("injected compile failure")
    if spec.kind == "crash":
        raise InjectedWorkerCrash("injected worker crash")


class FaultyMeasurer:
    """Measurer proxy that fires one drawn fault on first use.

    Wrapping the measurer places the fault *inside* the construction
    (measurements happen mid-compile), so cancellation, retries, and
    crash handling are exercised where real failures occur.  All other
    attributes delegate to the wrapped measurer, and the measurement
    noise streams are untouched — parity again.
    """

    def __init__(
        self,
        inner,
        spec: FaultSpec,
        token: CancelToken | None = None,
    ) -> None:
        self._inner = inner
        self._spec = spec
        self._token = token
        self._fired = False

    def measure(self, state):
        if not self._fired:
            self._fired = True
            apply_fault(self._spec, self._token)
        return self._inner.measure(state)

    def latency(self, state) -> float:
        return self.measure(state).latency_s

    def __getattr__(self, name: str):
        return getattr(self._inner, name)
