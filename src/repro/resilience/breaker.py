"""Per-family circuit breakers: shed a poisoned operator family fast.

One operator family whose compilations always fail (a codegen bug, a
poisoned cache neighborhood, an injected chaos rule) must not burn the
worker pool on doomed retries.  Each family gets the classic three-state
breaker:

* **closed** — requests flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the family
  sheds immediately to the degraded tiers, no compile attempted, until
  ``cooldown_s`` elapses.
* **half-open** — after the cooldown, up to ``probe_budget`` trial
  requests may attempt a real compile; one success closes the breaker,
  one failure re-opens it (and restarts the cooldown).

Transitions are reported through a callback so the serving layer can
emit ``resilience_breaker_transitions_total`` and tracer events without
this module depending on the metrics stack.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["BreakerConfig", "CircuitBreaker", "BreakerBoard"]

#: transition callback: (family, old_state, new_state)
TransitionHook = Callable[[str, str, str], None]


@dataclass(frozen=True)
class BreakerConfig:
    failure_threshold: int = 5
    cooldown_s: float = 5.0
    probe_budget: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.probe_budget < 1:
            raise ValueError(f"probe_budget must be >= 1, got {self.probe_budget}")


class CircuitBreaker:
    """One family's breaker (thread-safe; time injectable for tests)."""

    def __init__(
        self,
        family: str,
        config: BreakerConfig | None = None,
        on_transition: TransitionHook | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.family = family
        self.config = config or BreakerConfig()
        self._on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._probe_state()

    def _probe_state(self) -> str:
        # Lazily promote open -> half_open once the cooldown elapses.
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.config.cooldown_s
        ):
            self._transition("half_open")
            self._probes_in_flight = 0
        return self._state

    def allow(self) -> bool:
        """May this request attempt a real compile right now?"""
        with self._lock:
            state = self._probe_state()
            if state == "closed":
                return True
            if state == "half_open":
                if self._probes_in_flight < self.config.probe_budget:
                    self._probes_in_flight += 1
                    return True
                return False
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state != "closed":
                self._transition("closed")

    def record_failure(self) -> None:
        with self._lock:
            state = self._probe_state()
            if state == "half_open":
                # The probe failed: straight back to open, fresh cooldown.
                self._open()
                return
            self._consecutive_failures += 1
            if (
                state == "closed"
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._open()

    def _open(self) -> None:
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        if self._state != "open":
            self._transition("open")

    def _transition(self, new: str) -> None:
        old, self._state = self._state, new
        if self._on_transition is not None:
            self._on_transition(self.family, old, new)


class BreakerBoard:
    """Get-or-create registry of per-family breakers."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        on_transition: TransitionHook | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or BreakerConfig()
        self._on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def for_family(self, family: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(family)
            if breaker is None:
                breaker = self._breakers[family] = CircuitBreaker(
                    family, self.config, self._on_transition, self._clock
                )
            return breaker

    def states(self) -> dict[str, str]:
        """Current state of every family seen so far."""
        with self._lock:
            breakers = list(self._breakers.values())
        return {b.family: b.state for b in breakers}

    def open_families(self) -> list[str]:
        return [f for f, s in self.states().items() if s != "closed"]
