"""CompileService: the multi-tenant front-end over DynamicGensor.

Request lifecycle (documented in README/DESIGN "Serving"):

1. **admit** — :meth:`CompileService.submit` either attaches the request to
   an identical in-flight compilation (single-flight), enqueues it on the
   bounded worker pool, or rejects it with a reason when saturated.
2. **coalesce** — followers of an in-flight key never occupy a queue slot
   or a worker; they resolve when the leader lands, tagged ``coalesced``.
3. **serve-tier selection** — a worker serves the request from the best
   tier its deadline affords: exact cache hit, then the normal
   :class:`~repro.core.dynamic.DynamicGensor` hit/warm/cold path; when the
   remaining deadline cannot fit the (EMA-estimated) cost of a cold
   construction, it degrades to a cache-nearest warm start with a reduced
   polish budget, then to the best canonical seed state.
4. **resilience** (DESIGN "Resilience") — each compile attempt runs under
   a cooperative per-attempt deadline token and a per-family circuit
   breaker; failed attempts are retried with jittered exponential backoff,
   exhausted or breaker-shed requests fall back to the degraded tiers,
   worker threads killed mid-request are respawned by the supervised pool
   and the in-flight ticket is requeued, and every failure event (retry,
   breaker transition, crash, respawn) is emitted through the metrics
   registry and tracer.
5. **stats** — every outcome is recorded in :class:`ServiceStats`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import replace

from repro.core.cache import (
    ScheduleCache,
    family_fingerprint,
    shape_fingerprint,
)
from repro.core.constructor import GensorConfig, GensorResult
from repro.core.dynamic import DynamicGensor
from repro.core.score import pending_penalty_s
from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience.breaker import BreakerBoard, BreakerConfig
from repro.resilience.checkpoint import (
    Checkpointer,
    CheckpointPolicy,
    WalkCheckpoint,
)
from repro.resilience.deadline import CancelToken, CompileCancelled
from repro.resilience.faults import (
    FaultInjector,
    FaultyMeasurer,
    InjectedWorkerCrash,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import SupervisedWorkerPool
from repro.serve.request import CompileRequest, CompileResponse, ServeTicket
from repro.serve.singleflight import SingleFlight
from repro.serve.stats import ServiceStats
from repro.sim.measure import MICROBENCH_SECONDS, Measurer

__all__ = ["CompileService"]

#: a crashing request is requeued at most this many times before failing.
MAX_CRASH_REQUEUES = 3


class CompileService:
    """Concurrent compile serving over one device's DynamicGensor stack.

    Args:
        hardware: the device requests are optimized for.
        config: construction budget for cold compilations.
        workers: worker-thread count.
        queue_capacity: bounded backlog; admission rejects beyond it.
        cache: shared/persisted tuning database (fresh one by default).
        warm_polish_steps: polish budget of the normal warm tier.
        degraded_polish_steps: reduced budget of the degraded warm tier.
        measurer_factory: builds the per-request measurer (benchmarks pass
            one with ``time_scale > 0`` so profiling cost elapses in real
            time); defaults to a noise-free micro-benchmark measurer.
        cold_cost_estimate_s: initial guess of a cold construction's wall
            cost, refined by an EMA of observed colds; deadline degradation
            triggers when the remaining budget falls below the estimate.
        registry: metrics sink (queue-wait histogram, tier counters, cold
            cost gauge, resilience counters); the process-wide registry by
            default.
        tracer: optional event sink for per-request serve events (tier
            decision, queue wait, coalesced follower count, retries,
            breaker transitions, respawns).
        retry: per-attempt retry policy (backoff, jitter, attempt
            timeout); the defaults retry twice with a 30 s cooperative
            per-attempt deadline.
        breaker: per-operator-family circuit-breaker thresholds.
        fault_injector: optional chaos hook — a seeded
            :class:`~repro.resilience.faults.FaultInjector` consulted once
            per compile attempt (``serve-bench --faults``).
        stall_timeout_s: supervised-pool heartbeat staleness after which a
            busy worker is declared stuck, abandoned, and replaced.
        checkpointing: when True (default), cold construction walks run
            under a :class:`~repro.resilience.checkpoint.Checkpointer` so
            a crashed or timed-out attempt resumes from its last
            checkpoint instead of restarting the walk.
        checkpoint_policy: cadence of mid-walk checkpoints (defaults to
            :class:`~repro.resilience.checkpoint.CheckpointPolicy`).
        checkpoint_sink: optional callable ``(request, checkpoint)``
            invoked on every checkpoint — fleet shards persist them to a
            shared :class:`~repro.resilience.checkpoint.CheckpointStore`
            here so a checkpoint survives losing the whole process.
    """

    def __init__(
        self,
        hardware: HardwareSpec,
        config: GensorConfig | None = None,
        *,
        workers: int = 4,
        queue_capacity: int = 64,
        cache: ScheduleCache | None = None,
        warm_polish_steps: int = 40,
        warm_pool: int = 3,
        degraded_polish_steps: int = 8,
        measurer_factory=None,
        cold_cost_estimate_s: float = 1.0,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        retry: RetryPolicy | None = None,
        breaker: BreakerConfig | None = None,
        fault_injector: FaultInjector | None = None,
        stall_timeout_s: float = 30.0,
        checkpointing: bool = True,
        checkpoint_policy: CheckpointPolicy | None = None,
        checkpoint_sink=None,
    ) -> None:
        self.hw = hardware
        self.dynamic = DynamicGensor(
            hardware,
            config,
            cache=cache,
            warm_polish_steps=warm_polish_steps,
            warm_pool=warm_pool,
        )
        self.degraded_polish_steps = degraded_polish_steps
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = ServiceStats(registry=self.registry)
        self._measurer_factory = measurer_factory or (
            lambda: Measurer(
                hardware,
                seed=self.dynamic.config.seed,
                noise_sigma=0.0,
                seconds_per_measurement=MICROBENCH_SECONDS,
            )
        )
        #: shared metrics memo (the DynamicGensor's constructor owns it), so
        #: degraded-tier pricing reuses everything the walks already priced.
        self._memo = self.dynamic.memo
        self._flight = SingleFlight()
        self._retry = retry if retry is not None else RetryPolicy()
        self._breakers = BreakerBoard(
            breaker, on_transition=self._on_breaker_transition
        )
        self._injector = fault_injector
        self._checkpointing = checkpointing
        self._ckpt_policy = (
            checkpoint_policy if checkpoint_policy is not None
            else CheckpointPolicy()
        )
        self._ckpt_sink = checkpoint_sink
        self._pool = SupervisedWorkerPool(
            workers=workers,
            capacity=queue_capacity,
            stall_timeout_s=stall_timeout_s,
            on_respawn=self._on_worker_respawn,
        )
        self._cold_lock = threading.Lock()
        self._cold_estimate_s = cold_cost_estimate_s
        #: cold-stampede protection: one cold construction per operator
        #: family at a time, so concurrent near shapes warm-start off the
        #: first winner instead of all paying the cold cost.
        self._family_locks: dict[str, threading.Lock] = {}
        self._family_guard = threading.Lock()
        #: shapes with a background compile-ahead pending (dedup set).
        self._backfills: set[str] = set()
        self._backfill_guard = threading.Lock()
        self._closed = False

    # -- public surface ----------------------------------------------------------

    @property
    def cache(self) -> ScheduleCache:
        return self.dynamic.cache

    @property
    def breakers(self) -> BreakerBoard:
        """Per-family circuit breakers (read-mostly; tests and reports)."""
        return self._breakers

    @property
    def pool(self) -> SupervisedWorkerPool:
        """The supervised worker pool (respawn counters live here)."""
        return self._pool

    @property
    def cold_cost_estimate_s(self) -> float:
        """Current EMA estimate of one cold construction's wall cost."""
        with self._cold_lock:
            return self._cold_estimate_s

    def submit(
        self,
        compute: ComputeDef,
        deadline_s: float | None = None,
        priority: int = 0,
        checkpoint: WalkCheckpoint | None = None,
        epilogues: tuple = (),
    ) -> ServeTicket:
        """Admit one request; always returns a ticket (rejections resolve
        immediately with ``tier="rejected"`` and a reason).

        ``checkpoint`` seeds the request with a walk checkpoint from an
        earlier incarnation (fleet shard respawn) — the first cold attempt
        resumes from it instead of restarting, after validating it against
        this service's compute/config.

        ``epilogues`` carries a program fusion group's pool: the walk then
        explores fusing those ops into this kernel.  Fused requests must
        not coalesce with the bare kernel (their winners differ), so the
        single-flight key grows the pool's shape fingerprints.
        """
        epilogues = tuple(epilogues)
        request = CompileRequest(
            compute=compute,
            deadline_s=deadline_s,
            priority=priority,
            checkpoint=checkpoint,
            epilogues=epilogues,
        )
        ticket = ServeTicket(request)
        self.stats.record_submitted()
        key = f"{self.hw.name}/{shape_fingerprint(compute)}"
        if epilogues:
            key += "".join(f"+{shape_fingerprint(ep)}" for ep in epilogues)
        if self._flight.attach_or_lead(key, ticket):
            return ticket  # follower: resolved by the leader's completion
        try:
            self._pool.submit_nowait(
                lambda: self._serve(key, ticket), priority=priority
            )
        except queue.Full:
            self._refuse(key, ticket, "queue_full")
        except RuntimeError:
            self._refuse(key, ticket, "shutting_down")
        return ticket

    def serve(
        self,
        compute: ComputeDef,
        deadline_s: float | None = None,
        priority: int = 0,
        timeout: float | None = None,
    ) -> CompileResponse:
        """Synchronous convenience: submit and wait."""
        return self.submit(compute, deadline_s, priority).result(timeout)

    def compile_program(
        self,
        graph,
        fusion: bool = True,
        deadline_s: float | None = None,
        priority: int = 0,
        timeout: float | None = None,
    ):
        """Compile a whole :class:`~repro.models.graph.ModelGraph` as one
        program: plan fusion groups, submit each group (with its epilogue
        pool) to the worker pool, and assemble a
        :class:`~repro.serve.program.ProgramResponse`."""
        from repro.serve.program import ProgramRequest, serve_program

        request = ProgramRequest.from_graph(
            graph, fusion=fusion, deadline_s=deadline_s, priority=priority
        )
        return serve_program(self, request, timeout=timeout)

    def close(self) -> None:
        """Drain admitted work (including backfills), stop the workers and
        the supervisor.  Idempotent.

        Backfills scheduled just before ``close()`` either land inside the
        drain or were refused admission atomically by the pool — no thread
        outlives the shutdown except workers abandoned mid-hang, whose
        count is reported via ``serve_leaked_workers``.
        """
        if not self._closed:
            self._closed = True
            leaked = self._pool.shutdown(wait=True)
            if leaked:
                self.registry.gauge("serve_leaked_workers").set(leaked)
            with self._backfill_guard:
                self._backfills.clear()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- failure-event sinks -----------------------------------------------------

    def _on_worker_respawn(self, reason: str) -> None:
        self.stats.record_respawn()
        self.registry.counter(
            "resilience_worker_respawns_total", reason=reason
        ).inc()
        if self.tracer.enabled:
            self.tracer.emit("worker_respawn", {"reason": reason})

    def _on_breaker_transition(self, family: str, old: str, new: str) -> None:
        if new == "open":
            self.stats.record_breaker_open()
        self.registry.counter(
            "resilience_breaker_transitions_total", family=family, to=new
        ).inc()
        if self.tracer.enabled:
            self.tracer.emit(
                "breaker", {"family": family, "from": old, "to": new}
            )

    # -- worker path -------------------------------------------------------------

    def _refuse(
        self, key: str, ticket: ServeTicket, reason: str, tier: str = "rejected"
    ) -> None:
        """Reject the would-be leader and anyone who attached meanwhile."""
        followers = self._flight.complete(key)
        for t in (ticket, *followers):
            response = CompileResponse(
                request_id=t.request.request_id,
                tier=tier,
                ok=False,
                reason=reason,
                coalesced=t is not ticket,
                deadline_s=t.request.deadline_s,
            )
            t.fulfill(response)
            self.stats.record(response)

    def _serve(self, key: str, ticket: ServeTicket) -> None:
        """Worker entry: compile, then resolve the leader and followers."""
        request = ticket.request
        queue_wait = time.perf_counter() - request.submitted_at
        self.registry.histogram("serve_queue_wait_seconds").observe(queue_wait)
        try:
            response = self._compile(request)
        except InjectedWorkerCrash:
            # The worker thread is about to die (the supervisor will
            # respawn it); hand the ticket back to the queue first so the
            # request survives the crash.
            self._requeue_after_crash(key, ticket)
            raise
        except Exception as exc:  # repro: ignore[broad-except] - never kill a worker thread
            # Deliberate safety net: any compile failure becomes a failed
            # response instead of a dead worker.  Counted by kind so a
            # surge of one exception class is visible on the registry.
            self.registry.counter(
                "serve_unhandled_errors_total", kind=type(exc).__name__
            ).inc()
            response = CompileResponse(
                request_id=request.request_id,
                tier="failed",
                ok=False,
                reason=f"{type(exc).__name__}: {exc}",
                deadline_s=request.deadline_s,
            )
        response.service_latency_s = time.perf_counter() - request.submitted_at
        followers = self._flight.complete(key)
        ticket.fulfill(response)
        self.stats.record(response)
        if self.tracer.enabled:
            self.tracer.emit(
                "serve",
                {
                    "request_id": request.request_id,
                    "compute": request.compute.name,
                    "tier": response.tier,
                    "queue_wait_s": queue_wait,
                    "coalesced_followers": len(followers),
                },
                dur=response.service_latency_s,
            )
        now = time.perf_counter()
        for f in followers:
            shared = replace(
                response,
                request_id=f.request.request_id,
                coalesced=True,
                deadline_s=f.request.deadline_s,
                service_latency_s=now - f.request.submitted_at,
            )
            f.fulfill(shared)
            self.stats.record(shared)

    def _requeue_after_crash(self, key: str, ticket: ServeTicket) -> None:
        request = ticket.request
        request.crashes += 1
        self.registry.counter("resilience_worker_crashes_total").inc()
        if self.tracer.enabled:
            self.tracer.emit(
                "worker_crash",
                {"request_id": request.request_id, "crashes": request.crashes},
            )
        if request.crashes <= MAX_CRASH_REQUEUES:
            try:
                self._pool.submit_nowait(
                    lambda: self._serve(key, ticket),
                    priority=request.priority,
                )
                return
            except (queue.Full, RuntimeError):
                pass
        self._refuse(key, ticket, "worker_crash", tier="failed")

    # -- resilience orchestration ------------------------------------------------

    def _compile(self, request: CompileRequest) -> CompileResponse:
        """Retry/breaker wrapper: attempts, then degraded-tier shedding."""
        compute = request.compute
        family = family_fingerprint(compute)
        breaker = self._breakers.for_family(family)
        last_reason: str | None = None
        shed_by_breaker = False
        for attempt in range(self._retry.max_attempts):
            if not breaker.allow():
                last_reason = "circuit_open"
                shed_by_breaker = True
                self.registry.counter("resilience_breaker_shed_total").inc()
                break
            remaining = request.remaining_s()
            if remaining is not None and remaining <= 0.0:
                # The deadline died between attempts (usually eaten by a
                # backoff sleep the cap could not shrink to zero soon
                # enough, or a slow failed attempt).  Retrying would serve
                # a guaranteed miss — fail fast into the degraded tiers.
                last_reason = "deadline_exhausted"
                self.registry.counter(
                    "resilience_deadline_exhausted_total", family=family
                ).inc()
                break
            # The fixed per-attempt timeout is capped by the request's
            # remaining deadline: an attempt never outlives its request.
            token = CancelToken.after_bounded(
                self._retry.attempt_timeout_s, remaining
            )
            checkpointer = self._make_checkpointer(request)
            try:
                response = self._attempt(request, attempt, token, checkpointer)
            except InjectedWorkerCrash:
                breaker.record_failure()
                self._note_wasted(request, checkpointer)
                raise
            except Exception as exc:  # repro: ignore[broad-except] - retry boundary; CompileCancelled included
                # Any attempt failure (including CompileCancelled) feeds
                # the breaker and the retry loop; counted as
                # resilience_retries_total below, re-raised as a failed
                # response when attempts are exhausted.
                breaker.record_failure()
                self._note_wasted(request, checkpointer)
                last_reason = f"{type(exc).__name__}: {exc}"
                self.stats.record_retry()
                self.registry.counter(
                    "resilience_retries_total", family=family
                ).inc()
                backoff = 0.0
                if attempt + 1 < self._retry.max_attempts:
                    backoff = self._retry.backoff_s(
                        attempt,
                        seed=self.dynamic.config.seed,
                        family=family,
                        remaining_s=request.remaining_s(),
                    )
                if self.tracer.enabled:
                    self.tracer.emit(
                        "retry",
                        {
                            "request_id": request.request_id,
                            "family": family,
                            "attempt": attempt,
                            "reason": last_reason,
                            "backoff_s": backoff,
                        },
                    )
                if backoff > 0.0:
                    time.sleep(backoff)
                continue
            breaker.record_success()
            return response
        # Attempts exhausted or family breaker open: shed to the degraded
        # tiers — a worse schedule beats no schedule, and degraded answers
        # are analytically cheap so a poisoned family stops burning workers.
        served = self._degraded(
            compute, self._measurer_factory(), request.epilogues
        )
        if served is not None:
            result, tier = served
            if not shed_by_breaker and not request.epilogues:
                # Transient failure: schedule the full construction in the
                # background so repeats of this shape heal to a cache hit.
                # Breaker-shed families skip backfill — it would burn the
                # workers the breaker just protected.  Fused shapes skip it
                # too: their winners never enter the cache.
                self._schedule_backfill(compute)
            return CompileResponse(
                request_id=request.request_id,
                tier=tier,
                ok=True,
                result=result,
                reason=last_reason,
                deadline_s=request.deadline_s,
            )
        return CompileResponse(
            request_id=request.request_id,
            tier="failed",
            ok=False,
            reason=last_reason or "compile attempts exhausted",
            deadline_s=request.deadline_s,
        )

    # -- checkpoint plumbing -----------------------------------------------------

    def _make_checkpointer(
        self, request: CompileRequest
    ) -> Checkpointer | None:
        """A fresh per-attempt checkpointer feeding ``request.checkpoint``."""
        # Fused program walks are not resumable (their ETIR keys carry the
        # epilogue pool, which checkpoints do not serialize) — never
        # checkpoint them.
        if not self._checkpointing or request.epilogues:
            return None
        return Checkpointer(
            self._ckpt_policy,
            sink=lambda cp: self._on_checkpoint(request, cp),
        )

    def _on_checkpoint(
        self, request: CompileRequest, checkpoint: WalkCheckpoint
    ) -> None:
        """Bank a mid-walk checkpoint on the request it serves.

        The request object itself carries the checkpoint across crash
        requeues (``_requeue_after_crash`` resubmits the same object), so
        in-process recovery needs no store; the optional sink persists it
        for process-loss recovery (fleet shards).
        """
        request.checkpoint = checkpoint
        request.progress_steps = checkpoint.total_steps
        self.registry.counter("resilience_checkpoints_total").inc()
        if self._ckpt_sink is not None:
            self._ckpt_sink(request, checkpoint)

    def _note_wasted(
        self, request: CompileRequest, checkpointer: Checkpointer | None
    ) -> None:
        """Account walk steps lost to a failed/crashed attempt.

        Wasted = steps the attempt walked past its last checkpoint — the
        recompute a resume must repay.  Bounded by one checkpoint interval
        per failure when checkpointing is on; equal to the whole attempt
        when it is off.
        """
        if checkpointer is None or checkpointer.steps_seen == 0:
            return
        wasted = checkpointer.wasted_states()
        if wasted <= 0:
            return
        self.registry.counter("resilience_wasted_states_total").inc(wasted)
        if self.tracer.enabled:
            self.tracer.emit(
                "wasted_recompute",
                {"request_id": request.request_id, "states": wasted},
            )

    def _attempt(
        self,
        request: CompileRequest,
        attempt: int,
        token: CancelToken,
        checkpointer: Checkpointer | None = None,
    ) -> CompileResponse:
        """One compile attempt (the pre-resilience serve-tier logic)."""
        compute = request.compute
        measurer = self._measurer_factory()
        resume: WalkCheckpoint | None = None
        cp = request.checkpoint if not request.epilogues else None
        if cp is not None and isinstance(cp, WalkCheckpoint):
            if cp.matches(compute, self.dynamic.config):
                resume = cp
                if checkpointer is not None:
                    checkpointer.start_from(cp)
            else:
                # Stale or foreign checkpoint (config drift, wrong shape):
                # drop it and restart clean rather than resume wrongly.
                request.checkpoint = None
                self.registry.counter(
                    "resilience_checkpoint_rejected_total"
                ).inc()
        if self._injector is not None:
            spec = self._injector.draw(
                family_fingerprint(compute),
                attempt,
                key=shape_fingerprint(compute),
            )
            if spec is not None:
                if spec.kind == "corrupt-cache":
                    self.cache.corrupt(compute)
                else:
                    measurer = FaultyMeasurer(measurer, spec, token)
        remaining = request.remaining_s()
        degrade = (
            remaining is not None
            and remaining < self.cold_cost_estimate_s
            and self.cache.get(compute) is None
        )
        if degrade:
            served = self._degraded(compute, measurer, request.epilogues)
            if served is not None:
                result, tier = served
                # Compile-ahead: a degraded answer is a promise, not an end
                # state — schedule the full construction in the background
                # (lowest priority) so repeats of this shape hit the cache.
                # Fused shapes skip backfill: fused winners never enter the
                # cache, so backfilling them could not heal anything.
                if not request.epilogues:
                    self._schedule_backfill(compute)
                return CompileResponse(
                    request_id=request.request_id,
                    tier=tier,
                    ok=True,
                    result=result,
                    deadline_s=request.deadline_s,
                )
            # No neighbor and no feasible seed: a cold construction is the
            # only correct answer — serve it late rather than not at all.
        t0 = time.perf_counter()
        if self.cache.get(compute) is None and self.cache.nearest(compute) is None:
            # Looks cold: serialize per family so a stampede of near shapes
            # produces one cold construction plus warm starts, not N colds.
            # DynamicGensor re-checks the cache once the lock is held, so
            # waiters land on the warm path.
            with self._family_lock(family_fingerprint(compute)):
                dyn = self.dynamic.compile(
                    compute,
                    measurer,
                    cancel=token,
                    resume_from=resume,
                    checkpointer=checkpointer,
                    epilogues=request.epilogues,
                )
        else:
            dyn = self.dynamic.compile(
                compute,
                measurer,
                cancel=token,
                resume_from=resume,
                checkpointer=checkpointer,
                epilogues=request.epilogues,
            )
        if dyn.source == "cold":
            self._observe_cold(time.perf_counter() - t0)
        return CompileResponse(
            request_id=request.request_id,
            tier=dyn.source,
            ok=True,
            result=dyn.result,
            deadline_s=request.deadline_s,
        )

    def _degraded(
        self, compute: ComputeDef, measurer, epilogues: tuple = ()
    ) -> tuple[GensorResult, str] | None:
        """Deadline/failure fallbacks, best first: reduced-polish warm, seed.

        Fused (``epilogues``) requests skip the warm-neighbor tier — cache
        entries are bare tile configs that cannot carry an epilogue pool —
        and fall straight to the analytical seed pick, ranked by program
        objective (kernel latency plus unfused-epilogue penalty).
        """
        t0 = time.perf_counter()
        gensor = self.dynamic.gensor
        neighbor = self.cache.nearest(compute) if not epilogues else None
        if neighbor is not None:
            warm = neighbor.instantiate(compute)
            if warm is not None and warm.memory_ok(self.hw):
                measured_before = measurer.simulated_seconds
                refined = gensor.polish(
                    warm, self.degraded_polish_steps, frozenset()
                )
                metrics = measurer.measure(refined)
                self.cache.put(refined, metrics.latency_s)
                return (
                    GensorResult(
                        best=refined,
                        best_metrics=metrics,
                        top_results=[refined],
                        iterations=0,
                        states_visited=1,
                        compile_wall_s=time.perf_counter() - t0,
                        simulated_measure_s=measurer.simulated_seconds
                        - measured_before,
                    ),
                    "degraded_warm",
                )
        seeds = [
            s
            for s in gensor.seed_states(compute, epilogues)
            if s.memory_ok(self.hw)
        ]
        if not seeds:
            return None
        seed_lats = self._memo.latency_batch(self.hw, seeds)
        if epilogues:
            objectives = [
                float(lat) + pending_penalty_s(s, self.hw)
                for lat, s in zip(seed_lats, seeds)
            ]
            best = seeds[min(range(len(seeds)), key=objectives.__getitem__)]
        else:
            best = seeds[int(seed_lats.argmin())]
        # Purely analytical pick — not even one micro-benchmark round, so
        # the tightest deadlines still get a schedule in milliseconds.  Not
        # cached: seed quality would pollute future warm starts.
        metrics = self._memo.evaluate(self.hw, best)
        return (
            GensorResult(
                best=best,
                best_metrics=metrics,
                top_results=[best],
                iterations=0,
                states_visited=len(seeds),
                compile_wall_s=time.perf_counter() - t0,
                simulated_measure_s=0.0,
            ),
            "degraded_seed",
        )

    def _schedule_backfill(self, compute: ComputeDef) -> None:
        """Queue a background full compile for a degraded-served shape.

        Deduplicated per fingerprint and shed outright when the pool is
        saturated or shutting down — backfill must never displace tenant
        traffic, and admission is atomic against :meth:`close` so a
        backfill scheduled during shutdown is refused instead of leaking
        into a stopped pool.
        """
        key = shape_fingerprint(compute)
        with self._backfill_guard:
            if key in self._backfills:
                return
            self._backfills.add(key)

        def run() -> None:
            try:
                if self.cache.get(compute) is None:
                    t0 = time.perf_counter()
                    with self._family_lock(family_fingerprint(compute)):
                        dyn = self.dynamic.compile(
                            compute, self._measurer_factory()
                        )
                    if dyn.source == "cold":
                        self._observe_cold(time.perf_counter() - t0)
                self.stats.record_backfill()
            finally:
                with self._backfill_guard:
                    self._backfills.discard(key)

        try:
            self._pool.submit_nowait(run, priority=-(1 << 30))
        except (queue.Full, RuntimeError):
            with self._backfill_guard:
                self._backfills.discard(key)

    def _family_lock(self, family: str) -> threading.Lock:
        with self._family_guard:
            lock = self._family_locks.get(family)
            if lock is None:
                lock = self._family_locks[family] = threading.Lock()
            return lock

    def _observe_cold(self, wall_s: float) -> None:
        with self._cold_lock:
            self._cold_estimate_s = 0.7 * self._cold_estimate_s + 0.3 * wall_s
            estimate = self._cold_estimate_s
        self.registry.gauge("serve_cold_cost_estimate_s").set(estimate)
        self.registry.histogram("serve_cold_wall_seconds").observe(wall_s)
