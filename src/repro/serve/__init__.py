"""Concurrent compile serving (beyond the paper).

The ROADMAP's production north star needs more than a fast single-request
compiler: :class:`CompileService` turns the Gensor + ScheduleCache +
DynamicGensor stack into a multi-tenant service — a bounded worker pool
with admission control (:mod:`repro.serve.pool`), single-flight
deduplication of concurrent identical shapes
(:mod:`repro.serve.singleflight`), deadline-aware graceful degradation
(:mod:`repro.serve.service`), and operational stats
(:mod:`repro.serve.stats`).  ``python -m repro serve-bench``
(:mod:`repro.serve.bench`) replays synthetic dynamic-shape traffic
through it.
"""

from repro.serve.bench import BenchReport, bench_config, run_serve_bench
from repro.serve.pool import WorkerPool
from repro.serve.program import ProgramRequest, ProgramResponse, serve_program
from repro.serve.request import (
    CompileRequest,
    CompileResponse,
    ServeTicket,
    TIERS,
)
from repro.serve.service import CompileService
from repro.serve.singleflight import SingleFlight
from repro.serve.stats import ServiceStats, percentile

__all__ = [
    "BenchReport",
    "bench_config",
    "run_serve_bench",
    "CompileRequest",
    "CompileResponse",
    "CompileService",
    "ProgramRequest",
    "ProgramResponse",
    "serve_program",
    "ServeTicket",
    "ServiceStats",
    "SingleFlight",
    "TIERS",
    "WorkerPool",
    "percentile",
]
