"""Program-level serving: compile a whole ModelGraph through the service.

A :class:`ProgramRequest` is one tenant's ask for a *model*, not a single
operator: the graph is fusion-planned up front
(:func:`repro.models.program.plan_fusion`) and each
:class:`~repro.models.program.FusedGroup` becomes one operator-level
submission carrying the group's epilogue pool, so every group's
construction walk explores fusion on a service worker.  The answer is a
:class:`ProgramResponse` wrapping a portable
:class:`~repro.models.program.CompiledProgram`.

Both request and response are wire-safe plain data (ComputeDefs, names,
floats — never live ETIR states or service objects): the fleet dispatcher
ships the same group submissions across its shard pipes and reassembles
the program on the dispatcher side.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.models.graph import ModelGraph
from repro.models.program import (
    CompiledGroup,
    CompiledProgram,
    FusedGroup,
    plan_fusion,
)

__all__ = ["ProgramRequest", "ProgramResponse", "serve_program"]

_PROGRAM_IDS = itertools.count(1)


@dataclass(frozen=True)
class ProgramRequest:
    """One whole-model compile ask: fusion groups in model order."""

    model: str
    batch: int
    #: the planned fusion groups; each compiles as one service request.
    groups: tuple = ()
    fusion: bool = True
    deadline_s: float | None = None
    priority: int = 0
    request_id: int = field(default_factory=lambda: next(_PROGRAM_IDS))

    @classmethod
    def from_graph(
        cls,
        graph: ModelGraph,
        fusion: bool = True,
        deadline_s: float | None = None,
        priority: int = 0,
    ) -> "ProgramRequest":
        state = plan_fusion(graph, fusion=fusion)
        return cls(
            model=graph.name,
            batch=graph.batch,
            groups=tuple(state.groups),
            fusion=fusion,
            deadline_s=deadline_s,
            priority=priority,
        )


@dataclass
class ProgramResponse:
    """The service's whole-model answer."""

    request_id: int
    ok: bool
    program: CompiledProgram | None = None
    #: serve tier per group, aligned with ``program.groups``.
    tiers: tuple = ()
    #: first failure reason when ``ok`` is False.
    reason: str | None = None
    #: submission-to-completion wall clock for the whole program.
    service_latency_s: float = 0.0

    @property
    def latency_s(self) -> float:
        if self.program is None:
            raise ValueError(
                f"program request {self.request_id} has no program "
                f"({self.reason})"
            )
        return self.program.latency_s


def build_group(
    group: FusedGroup,
    fused: int,
    kernel_latency_s: float,
    pending_cost_s: float,
    compile_seconds: float,
    best_config: tuple = (),
) -> CompiledGroup:
    """Assemble one wire-safe group record from serve-level outcomes."""
    return CompiledGroup(
        anchor_name=group.anchor.name,
        epilogue_names=tuple(ep.name for ep in group.epilogues),
        fused=fused,
        count=group.count,
        kernel_latency_s=kernel_latency_s,
        pending_cost_s=pending_cost_s,
        compile_seconds=compile_seconds,
        best_config=best_config,
        anchor_label=ModelGraph.op_label(group.anchor),
    )


def serve_program(
    service, request: ProgramRequest, timeout: float | None = None
) -> ProgramResponse:
    """Drive one ProgramRequest through a :class:`CompileService`.

    Every group is submitted up front (they are independent kernels, so
    the pool parallelizes them), then collected in model order.  One
    failed group fails the program — a partial program has no meaningful
    end-to-end latency.
    """
    import time as _time

    from repro.core.score import pending_penalty_s

    t0 = _time.perf_counter()
    tickets = [
        service.submit(
            group.anchor,
            deadline_s=request.deadline_s,
            priority=request.priority,
            epilogues=group.epilogues,
        )
        for group in request.groups
    ]
    compiled: list[CompiledGroup] = []
    tiers: list[str] = []
    for group, ticket in zip(request.groups, tickets):
        response = ticket.result(timeout)
        if not response.ok or response.result is None:
            return ProgramResponse(
                request_id=request.request_id,
                ok=False,
                reason=f"group {group.anchor.name!r}: "
                       f"{response.reason or response.tier}",
                service_latency_s=_time.perf_counter() - t0,
            )
        best = response.result.best
        compiled.append(
            build_group(
                group,
                fused=getattr(best, "fused", 0),
                kernel_latency_s=response.result.best_metrics.latency_s,
                pending_cost_s=pending_penalty_s(best, service.hw),
                compile_seconds=response.result.compile_seconds,
                best_config=(
                    best.config.tiles,
                    best.config.vthreads,
                    best.cur_level,
                ),
            )
        )
        tiers.append(response.tier)
    program = CompiledProgram(
        model=request.model,
        batch=request.batch,
        groups=compiled,
        method="gensor",
    )
    return ProgramResponse(
        request_id=request.request_id,
        ok=True,
        program=program,
        tiers=tuple(tiers),
        service_latency_s=_time.perf_counter() - t0,
    )
