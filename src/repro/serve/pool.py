"""Bounded, priority-ordered worker pool.

A fixed set of daemon threads drains a bounded :class:`queue.PriorityQueue`.
Admission is strictly non-blocking: when the queue is full,
:meth:`WorkerPool.submit_nowait` raises :class:`queue.Full` and the service
turns that into a reject-with-reason response — backpressure is surfaced to
tenants instead of silently growing an unbounded backlog.  Shutdown drains
whatever was already admitted, then stops.
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["WorkerPool"]


@dataclass(order=True)
class _WorkItem:
    #: (-priority, admission sequence): higher priority first, FIFO within.
    sort_key: tuple[int, int]
    fn: Callable[[], None] = field(compare=False)


class WorkerPool:
    """Thread pool with a bounded priority queue and non-blocking admission."""

    def __init__(
        self, workers: int = 4, capacity: int = 64, name: str = "serve"
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: queue.PriorityQueue[_WorkItem] = queue.PriorityQueue(
            maxsize=capacity
        )
        self._seq = itertools.count()
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._run, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    @property
    def num_workers(self) -> int:
        return len(self._threads)

    def depth(self) -> int:
        """Current queue backlog (approximate, racy by nature)."""
        return self._queue.qsize()

    def submit_nowait(self, fn: Callable[[], None], priority: int = 0) -> None:
        """Admit one work item or fail fast.

        Raises :class:`queue.Full` when saturated and :class:`RuntimeError`
        after :meth:`shutdown` — the caller owns turning either into a
        rejection response.
        """
        if self._stop.is_set():
            raise RuntimeError("worker pool is shut down")
        self._queue.put_nowait(_WorkItem((-priority, next(self._seq)), fn))

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain admitted items, then stop workers."""
        self._stop.set()
        if wait:
            for t in self._threads:
                t.join()

    def _run(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            try:
                item.fn()
            finally:
                self._queue.task_done()
