"""serve-bench: replay a dynamic-shape trace through the compile service.

``python -m repro serve-bench`` drives a closed-loop client over a
synthetic BERT/GPT-2 shape stream (:mod:`repro.models.trace`): up to
``window`` requests are kept outstanding, and each completion admits the
next.  Simulated on-device profiling cost elapses in real time
(``time_scale=1.0``), so the cold-construction-bound workload genuinely
overlaps across workers — the worker-scaling numbers are wall-clock real.

``--faults plan.json`` replays the same trace under a seeded
:class:`~repro.resilience.faults.FaultPlan` (chaos mode): the report then
carries availability (non-error response share) and the resilience
counters (retries, breaker transitions, worker respawns, quarantines).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.core.cache import shape_fingerprint
from repro.core.constructor import GensorConfig
from repro.hardware import orin_nano, rtx4090
from repro.models.trace import shape_stream, trace_summary
from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.serve.service import CompileService
from repro.sim.measure import MICROBENCH_SECONDS, Measurer

__all__ = ["BenchReport", "bench_config", "run_serve_bench"]

_DEVICES = {"rtx4090": rtx4090, "orin_nano": orin_nano}

#: per-ticket wait cap — generous; a stuck service should fail loudly.
_RESULT_TIMEOUT_S = 600.0


def bench_config(seed: int = 0) -> GensorConfig:
    """Serving-grade construction budget.

    One short chain plus seeds and a small polish budget: schedule quality
    stays within a few percent of the full walk on the trace's operator
    family while cold CPU cost drops ~3x, which is what a latency-bound
    service would deploy.
    """
    return GensorConfig(
        seed=seed,
        num_chains=1,
        top_k=3,
        polish_steps=5,
        max_iterations_per_chain=40,
    )


@dataclass
class BenchReport:
    """Outcome of one serve-bench run."""

    model: str
    device: str
    workers: int
    requests: int
    unique_shapes: int
    wall_s: float
    stats: dict
    table: str
    failed: int
    #: share of responses that carried a usable schedule (``ok=True``;
    #: degraded tiers count as available).
    availability: float = 1.0
    #: resilience counters of the run (faults injected, retries, breaker
    #: transitions, worker respawns/crashes, cache quarantines).
    resilience: dict = field(default_factory=dict)
    #: ``(shape_fingerprint, schedule_key)`` per request in submission
    #: order, for fault-free vs chaos parity checks; ``schedule_key`` is
    #: ``None`` for responses without a result, else a canonical tile tuple.
    schedules: list = field(default_factory=list)
    #: shape fingerprints that had at least one fault injected (their
    #: schedules are exempt from parity comparisons).
    faulted_keys: frozenset = frozenset()

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> dict:
        """Serializable artifact payload (``BENCH_serve.json``).

        Schedules are summarized, not dumped: the artifact records how the
        service behaved, while parity comparisons use the in-memory report.
        """
        return {
            "bench": "serve",
            "model": self.model,
            "device": self.device,
            "workers": self.workers,
            "requests": self.requests,
            "unique_shapes": self.unique_shapes,
            "wall_s": self.wall_s,
            "requests_per_s": self.requests_per_s,
            "failed": self.failed,
            "availability": self.availability,
            "stats": self.stats,
            "resilience": self.resilience,
            "served_schedules": sum(
                1 for _, key in self.schedules if key is not None
            ),
            "faulted_shapes": len(self.faulted_keys),
        }


def _schedule_key(response) -> tuple | None:
    """Canonical, comparable summary of a response's served schedule."""
    if response.result is None:
        return None
    best = response.result.best
    return (
        tuple(sorted(best.block_tiles().items())),
        tuple(sorted(best.thread_tiles().items())),
    )


def run_serve_bench(
    model: str = "bert",
    num_requests: int = 200,
    workers: int = 8,
    device_name: str = "rtx4090",
    deadline_ms: float | None = None,
    seed: int = 0,
    window: int = 64,
    queue_capacity: int | None = None,
    time_scale: float = 1.0,
    config: GensorConfig | None = None,
    fault_plan: FaultPlan | str | None = None,
    fail_fast: bool = False,
    retry: RetryPolicy | None = None,
) -> BenchReport:
    """Replay ``num_requests`` dynamic-shape requests through the service.

    ``fault_plan`` (a :class:`FaultPlan` or a path to one saved as JSON)
    switches on chaos mode.  ``fail_fast`` aborts the replay on the first
    error response instead of completing the trace.
    """
    if device_name not in _DEVICES:
        raise ValueError(
            f"unknown device {device_name!r}; choices: {sorted(_DEVICES)}"
        )
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    hw = _DEVICES[device_name]()
    trace = shape_stream(model, num_requests=num_requests, seed=seed)
    summary = trace_summary(trace)
    deadline_s = None if deadline_ms is None else deadline_ms / 1e3
    # Each bench run gets its own registry so chaos counters and tier
    # totals describe exactly this replay, not the whole process.
    registry = MetricsRegistry()
    injector = None
    if fault_plan is not None:
        plan = (
            fault_plan
            if isinstance(fault_plan, FaultPlan)
            else FaultPlan.load(fault_plan)
        )
        injector = FaultInjector(plan, registry=registry)
    service = CompileService(
        hw,
        config or bench_config(seed),
        workers=workers,
        queue_capacity=queue_capacity or max(2 * window, 64),
        warm_polish_steps=4,
        warm_pool=2,
        registry=registry,
        fault_injector=injector,
        retry=retry,
        measurer_factory=lambda: Measurer(
            hw,
            seed=seed,
            noise_sigma=0.0,
            seconds_per_measurement=MICROBENCH_SECONDS,
            time_scale=time_scale,
        ),
    )
    responses = []

    def drain_one(outstanding: deque) -> bool:
        response = outstanding.popleft().result(timeout=_RESULT_TIMEOUT_S)
        responses.append(response)
        if fail_fast and not response.ok:
            raise RuntimeError(
                f"request {response.request_id} failed "
                f"(tier {response.tier}): {response.reason}"
            )
        return response.ok

    outstanding: deque = deque()
    t0 = time.perf_counter()
    with service:
        for compute in trace:
            if len(outstanding) >= window:
                drain_one(outstanding)
            outstanding.append(service.submit(compute, deadline_s=deadline_s))
        while outstanding:
            drain_one(outstanding)
        wall = time.perf_counter() - t0
        respawns = dict(service.pool.respawns)
        abandoned = service.pool.abandoned_count()
        breaker_states = service.breakers.states()
        quarantined = list(service.cache.quarantined)
    failed = sum(1 for r in responses if not r.ok)
    availability = (
        (len(responses) - failed) / len(responses) if responses else 1.0
    )
    snap = service.stats.snapshot(wall_s=wall)
    wasted_states = registry.total("resilience_wasted_states_total")
    checkpoints = registry.total("resilience_checkpoints_total")
    checkpoint_resumes = registry.total("resilience_checkpoint_loads_total")
    resilience = {
        "faults_injected": len(injector.log) if injector is not None else 0,
        "retries": snap["retries"],
        "breaker_opens": snap["breaker_opens"],
        "breaker_states": breaker_states,
        "worker_respawns": respawns,
        "workers_abandoned": abandoned,
        "quarantined": quarantined,
        "availability": availability,
        # Walk steps re-done because an attempt failed past its last
        # checkpoint; with checkpointing on this stays bounded by one
        # checkpoint interval per failure (the chaos CI gate).
        "wasted_states": wasted_states,
        "checkpoints": checkpoints,
        "checkpoint_resumes": checkpoint_resumes,
    }
    title = (
        f"serve-bench — {model} x{num_requests} "
        f"({summary.unique_shapes} unique shapes), {workers} workers "
        f"on {hw.name}"
        + (" [chaos]" if injector is not None else "")
    )
    return BenchReport(
        model=model,
        device=device_name,
        workers=workers,
        requests=num_requests,
        unique_shapes=summary.unique_shapes,
        wall_s=wall,
        stats=snap,
        table=service.stats.render(wall_s=wall, title=title),
        failed=failed,
        availability=availability,
        resilience=resilience,
        schedules=[
            (shape_fingerprint(c), _schedule_key(r))
            for c, r in zip(
                trace, sorted(responses, key=lambda r: r.request_id)
            )
        ],
        faulted_keys=frozenset(
            injector.faulted_keys() if injector is not None else ()
        ),
    )
