"""serve-bench: replay a dynamic-shape trace through the compile service.

``python -m repro serve-bench`` drives a closed-loop client over a
synthetic BERT/GPT-2 shape stream (:mod:`repro.models.trace`): up to
``window`` requests are kept outstanding, and each completion admits the
next.  Simulated on-device profiling cost elapses in real time
(``time_scale=1.0``), so the cold-construction-bound workload genuinely
overlaps across workers — the worker-scaling numbers are wall-clock real.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.core.constructor import GensorConfig
from repro.hardware import orin_nano, rtx4090
from repro.models.trace import shape_stream, trace_summary
from repro.serve.service import CompileService
from repro.sim.measure import MICROBENCH_SECONDS, Measurer

__all__ = ["BenchReport", "bench_config", "run_serve_bench"]

_DEVICES = {"rtx4090": rtx4090, "orin_nano": orin_nano}

#: per-ticket wait cap — generous; a stuck service should fail loudly.
_RESULT_TIMEOUT_S = 600.0


def bench_config(seed: int = 0) -> GensorConfig:
    """Serving-grade construction budget.

    One short chain plus seeds and a small polish budget: schedule quality
    stays within a few percent of the full walk on the trace's operator
    family while cold CPU cost drops ~3x, which is what a latency-bound
    service would deploy.
    """
    return GensorConfig(
        seed=seed,
        num_chains=1,
        top_k=3,
        polish_steps=5,
        max_iterations_per_chain=40,
    )


@dataclass
class BenchReport:
    """Outcome of one serve-bench run."""

    model: str
    device: str
    workers: int
    requests: int
    unique_shapes: int
    wall_s: float
    stats: dict
    table: str
    failed: int

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0


def run_serve_bench(
    model: str = "bert",
    num_requests: int = 200,
    workers: int = 8,
    device_name: str = "rtx4090",
    deadline_ms: float | None = None,
    seed: int = 0,
    window: int = 64,
    queue_capacity: int | None = None,
    time_scale: float = 1.0,
    config: GensorConfig | None = None,
) -> BenchReport:
    """Replay ``num_requests`` dynamic-shape requests through the service."""
    if device_name not in _DEVICES:
        raise ValueError(
            f"unknown device {device_name!r}; choices: {sorted(_DEVICES)}"
        )
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    hw = _DEVICES[device_name]()
    trace = shape_stream(model, num_requests=num_requests, seed=seed)
    summary = trace_summary(trace)
    deadline_s = None if deadline_ms is None else deadline_ms / 1e3
    service = CompileService(
        hw,
        config or bench_config(seed),
        workers=workers,
        queue_capacity=queue_capacity or max(2 * window, 64),
        warm_polish_steps=4,
        warm_pool=2,
        measurer_factory=lambda: Measurer(
            hw,
            seed=seed,
            noise_sigma=0.0,
            seconds_per_measurement=MICROBENCH_SECONDS,
            time_scale=time_scale,
        ),
    )
    responses = []
    outstanding: deque = deque()
    t0 = time.perf_counter()
    with service:
        for compute in trace:
            if len(outstanding) >= window:
                responses.append(
                    outstanding.popleft().result(timeout=_RESULT_TIMEOUT_S)
                )
            outstanding.append(service.submit(compute, deadline_s=deadline_s))
        while outstanding:
            responses.append(
                outstanding.popleft().result(timeout=_RESULT_TIMEOUT_S)
            )
        wall = time.perf_counter() - t0
    failed = sum(1 for r in responses if not r.ok)
    title = (
        f"serve-bench — {model} x{num_requests} "
        f"({summary.unique_shapes} unique shapes), {workers} workers "
        f"on {hw.name}"
    )
    return BenchReport(
        model=model,
        device=device_name,
        workers=workers,
        requests=num_requests,
        unique_shapes=summary.unique_shapes,
        wall_s=wall,
        stats=service.stats.snapshot(wall_s=wall),
        table=service.stats.render(wall_s=wall, title=title),
        failed=failed,
    )
