"""Request/response types of the compile service.

A :class:`CompileRequest` is one tenant's ask: optimize this operator on
this device, ideally within ``deadline_s``.  The service answers with a
:class:`CompileResponse` tagged with the tier that served it — from exact
cache hit down through deadline-degraded fallbacks — and hands callers a
:class:`ServeTicket`, a minimal future that resolves when a worker (or the
coalesced leader's worker) finishes.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.core.constructor import GensorResult
from repro.ir.compute import ComputeDef

__all__ = ["CompileRequest", "CompileResponse", "ServeTicket", "TIERS"]

#: every tier a response can be served from, best to worst:
#: ``hit``            exact cached schedule, microsecond path
#: ``warm``           nearest-neighbor warm start, full polish budget
#: ``cold``           full graph construction
#: ``degraded_warm``  deadline fallback: warm start, reduced polish budget
#: ``degraded_seed``  deadline fallback: best canonical seed state, no search
#: ``rejected``       admission control refused the request
#: ``failed``         the compilation raised
TIERS = (
    "hit",
    "warm",
    "cold",
    "degraded_warm",
    "degraded_seed",
    "rejected",
    "failed",
)

_REQUEST_IDS = itertools.count(1)


@dataclass
class CompileRequest:
    """One compile ask, stamped at submission time."""

    compute: ComputeDef
    #: wall-clock budget (seconds from submission) the caller can tolerate;
    #: ``None`` means best effort with no degradation.
    deadline_s: float | None = None
    #: higher runs earlier when the queue has a backlog.
    priority: int = 0
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))
    submitted_at: float = field(default_factory=time.perf_counter)
    #: times this request's worker died mid-serve and the ticket was
    #: requeued (bounded by the service's crash-requeue cap).
    crashes: int = 0
    #: last mid-walk checkpoint taken while serving this request — seeded
    #: at submission when the caller resumes earlier work, refreshed by the
    #: service's checkpointer sink, and carried across crash requeues (the
    #: same request object is resubmitted) so a retried attempt continues
    #: the walk instead of restarting it.
    checkpoint: object | None = None
    #: walk steps the last checkpoint had banked (resilience accounting).
    progress_steps: int = 0
    #: program fusion: epilogue pool (ComputeDefs) the construction walk
    #: may fuse into this operator's kernel.  Non-empty pools bypass the
    #: schedule cache and checkpointing (fused states are not cacheable
    #: or resumable) and widen the single-flight coalescing key.
    epilogues: tuple = ()

    def remaining_s(self, now: float | None = None) -> float | None:
        """Deadline budget still available, or ``None`` when unconstrained."""
        if self.deadline_s is None:
            return None
        now = time.perf_counter() if now is None else now
        return self.deadline_s - (now - self.submitted_at)


@dataclass
class CompileResponse:
    """The service's answer, tagged with how it was produced."""

    request_id: int
    tier: str
    ok: bool
    result: GensorResult | None = None
    #: True when this response shares another request's in-flight compilation.
    coalesced: bool = False
    #: admission-control or failure reason (``queue_full``, ``shutting_down``,
    #: or an exception string).
    reason: str | None = None
    #: submission-to-completion wall clock for *this* request.
    service_latency_s: float = 0.0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(f"unknown serve tier {self.tier!r}")

    @property
    def degraded(self) -> bool:
        return self.tier.startswith("degraded")

    @property
    def deadline_met(self) -> bool:
        """Whether the answer arrived inside the caller's budget."""
        if not self.ok:
            return False
        if self.deadline_s is None:
            return True
        return self.service_latency_s <= self.deadline_s

    @property
    def latency_s(self) -> float:
        """Predicted kernel latency of the served schedule."""
        if self.result is None:
            raise ValueError(f"request {self.request_id} has no schedule "
                             f"(tier {self.tier})")
        return self.result.best_metrics.latency_s


class ServeTicket:
    """Future-like handle for one submitted request."""

    def __init__(self, request: CompileRequest) -> None:
        self.request = request
        self._done = threading.Event()
        self._response: CompileResponse | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    def done(self) -> bool:
        return self._done.is_set()

    def add_done_callback(self, fn) -> None:
        """Invoke ``fn(response)`` when the ticket resolves.

        Runs on the fulfilling worker's thread (or immediately on the
        caller's if already resolved) — the fleet's shard loop uses this to
        forward completions over the response pipe without a waiter thread
        per request.  Callback exceptions propagate to the fulfiller, which
        treats them like any other item failure.
        """
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        fn(self._response)

    def result(self, timeout: float | None = None) -> CompileResponse:
        """Block until the response is ready (raises ``TimeoutError``)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id} not served "
                f"within {timeout}s"
            )
        assert self._response is not None
        return self._response

    def fulfill(self, response: CompileResponse) -> None:
        """Resolve the ticket (service-internal; one-shot)."""
        if self._done.is_set():  # pragma: no cover - defensive
            raise RuntimeError(
                f"request {self.request.request_id} fulfilled twice"
            )
        with self._cb_lock:
            self._response = response
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(response)
