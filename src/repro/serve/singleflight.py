"""Single-flight deduplication of concurrent identical requests.

When many tenants ask for the same ``(device, shape_fingerprint)`` at
once, only the first becomes the *leader* and occupies a worker; everyone
else *attaches* as a follower and shares the leader's result the moment it
lands.  This is the serving-layer analogue of the schedule cache: the
cache deduplicates across time, single-flight deduplicates across
concurrency — without it, a traffic spike on one hot shape would burn the
whole worker pool compiling the same kernel N times.
"""

from __future__ import annotations

import threading

from repro.serve.request import ServeTicket

__all__ = ["SingleFlight"]


class SingleFlight:
    """Key-indexed registry of in-flight compilations and their followers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._followers: dict[str, list[ServeTicket]] = {}

    def attach_or_lead(self, key: str, ticket: ServeTicket) -> bool:
        """Join ``key``'s in-flight compilation, or start leading it.

        Returns ``True`` when ``ticket`` was attached as a follower (it will
        be resolved by the leader's completion) and ``False`` when the caller
        just became the leader and must run — and eventually
        :meth:`complete` — the compilation.
        """
        with self._lock:
            followers = self._followers.get(key)
            if followers is not None:
                followers.append(ticket)
                return True
            self._followers[key] = []
            return False

    def complete(self, key: str) -> list[ServeTicket]:
        """End ``key``'s flight; returns the followers awaiting its result.

        Also used to abandon a flight whose leader was refused admission —
        any followers that attached in the meantime are returned so they can
        be refused alongside it.
        """
        with self._lock:
            return self._followers.pop(key, [])

    def in_flight(self) -> int:
        """Number of distinct keys currently being compiled."""
        with self._lock:
            return len(self._followers)
