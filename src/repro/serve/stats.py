"""Service-level statistics: tier counts, throughput, latency percentiles.

The stats object is the service's single source of operational truth: every
response (served, coalesced, degraded, rejected, failed) is recorded under
one lock, and :meth:`ServiceStats.snapshot` / :meth:`ServiceStats.render`
expose the aggregate as a plain dict and a pretty table — the output of
``python -m repro serve-bench``.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.serve.request import CompileResponse, TIERS
from repro.utils.tables import Table

__all__ = ["ServiceStats", "percentile"]


def percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty sample)."""
    if not values:
        return 0.0
    if not (0.0 < pct <= 100.0):
        raise ValueError(f"pct must be in (0, 100], got {pct}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without math import
    return ordered[int(rank) - 1]


class ServiceStats:
    """Thread-safe counters and latency sample of one compile service.

    Every recording also feeds ``registry`` (the process-wide
    :class:`~repro.obs.metrics.MetricsRegistry` by default) with labeled
    counters (``serve_responses_total{tier=...}``) and the latency
    histogram, so registry totals always agree with the snapshot — the
    serving stress tests assert that consistency.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self.registry = registry if registry is not None else get_registry()
        self._tiers = {tier: 0 for tier in TIERS}
        self._coalesced = 0
        self._deadline_missed = 0
        self._submitted = 0
        self._backfills = 0
        self._retries = 0
        self._respawns = 0
        self._breaker_opens = 0
        self._latencies: list[float] = []
        self._first_submit: float | None = None
        self._last_done: float | None = None

    def record_backfill(self) -> None:
        """A background compile-ahead completed after a degraded response."""
        with self._lock:
            self._backfills += 1
        self.registry.counter("serve_backfills_total").inc()

    def record_retry(self) -> None:
        """One compile attempt failed and will be retried (or shed)."""
        with self._lock:
            self._retries += 1

    def record_respawn(self) -> None:
        """The supervisor replaced a dead or stuck worker thread."""
        with self._lock:
            self._respawns += 1

    def record_breaker_open(self) -> None:
        """A family circuit breaker tripped open."""
        with self._lock:
            self._breaker_opens += 1

    def record_submitted(self) -> None:
        with self._lock:
            self._submitted += 1
            if self._first_submit is None:
                self._first_submit = time.perf_counter()
        self.registry.counter("serve_submitted_total").inc()

    def record(self, response: CompileResponse) -> None:
        with self._lock:
            self._tiers[response.tier] += 1
            if response.coalesced:
                self._coalesced += 1
            if response.ok:
                self._latencies.append(response.service_latency_s)
            if not response.deadline_met and response.deadline_s is not None:
                self._deadline_missed += 1
            self._last_done = time.perf_counter()
        self.registry.counter(
            "serve_responses_total", tier=response.tier
        ).inc()
        if response.coalesced:
            self.registry.counter("serve_coalesced_total").inc()
        if response.ok:
            self.registry.histogram("serve_latency_seconds").observe(
                response.service_latency_s
            )

    def snapshot(self, wall_s: float | None = None) -> dict:
        """Aggregate view as a plain dict.

        ``wall_s`` overrides the measured first-submission → last-completion
        window used for throughput (benchmarks pass their own clock).
        """
        with self._lock:
            tiers = dict(self._tiers)
            latencies = list(self._latencies)
            completed = len(latencies)
            if wall_s is None:
                if self._first_submit is None or self._last_done is None:
                    wall_s = 0.0
                else:
                    wall_s = self._last_done - self._first_submit
            return {
                **tiers,
                "submitted": self._submitted,
                "completed": completed,
                "coalesced": self._coalesced,
                "degraded": tiers["degraded_warm"] + tiers["degraded_seed"],
                "deadline_missed": self._deadline_missed,
                "backfilled": self._backfills,
                "retries": self._retries,
                "worker_respawns": self._respawns,
                "breaker_opens": self._breaker_opens,
                "wall_s": wall_s,
                "throughput_rps": completed / wall_s if wall_s > 0 else 0.0,
                "p50_ms": percentile(latencies, 50) * 1e3,
                "p95_ms": percentile(latencies, 95) * 1e3,
                "p99_ms": percentile(latencies, 99) * 1e3,
            }

    def metrics_snapshot(self) -> dict:
        """The backing registry's flat ``series -> value`` dump (JSON-able)."""
        return self.registry.snapshot()

    def render_metrics(self, title: str = "service metrics") -> str:
        """The backing registry rendered as an aligned table."""
        return self.registry.render(title=title)

    def render(self, wall_s: float | None = None, title: str = "") -> str:
        """The stats as an aligned two-column table."""
        snap = self.snapshot(wall_s)
        table = Table(
            "metric", "value", title=title or "compile service stats"
        )
        table.add_row("submitted", snap["submitted"])
        table.add_row("completed", snap["completed"])
        for tier in TIERS:
            table.add_row(f"tier:{tier}", snap[tier])
        table.add_row("coalesced", snap["coalesced"])
        table.add_row("degraded", snap["degraded"])
        table.add_row("deadline_missed", snap["deadline_missed"])
        table.add_row("backfilled", snap["backfilled"])
        table.add_row("retries", snap["retries"])
        table.add_row("worker_respawns", snap["worker_respawns"])
        table.add_row("breaker_opens", snap["breaker_opens"])
        table.add_row("throughput", f"{snap['throughput_rps']:.2f} req/s")
        table.add_row("p50 latency", f"{snap['p50_ms']:.1f} ms")
        table.add_row("p95 latency", f"{snap['p95_ms']:.1f} ms")
        table.add_row("p99 latency", f"{snap['p99_ms']:.1f} ms")
        return table.render()
