"""Gensor's internal analytical score.

Construction methods never profile candidates during traversal; they rank
states analytically.  :func:`quick_latency` is the reduced roofline Gensor
uses for that ranking: compute time (with an ILP derate), DRAM time under
the block tiling, and shared-memory time under the thread tiling with bank
conflicts.  It deliberately omits the phenomena the full simulator models
(L2 capture, wave quantization, staging latency, pipe overlap) — the gap
between this proxy and "hardware" is precisely what a final top-k
measurement round resolves, for Gensor and Roller alike.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hardware.memory import smem_transaction_factor
from repro.hardware.spec import HardwareSpec
from repro.ir.etir import ETIR
from repro.utils.caching import HOT_PATH_CACHING

__all__ = [
    "quick_latency",
    "quick_latency_batch",
    "quick_pipe",
    "quick_score",
    "epilogue_standalone_s",
    "pending_penalty_s",
]

#: below this frontier size the numpy array setup costs more than it saves,
#: so the batch entry points run the scalar loop instead.  Safe at any
#: value: the two paths are bit-identical element-wise.
_SCALAR_CUTOVER = 12


def quick_latency(state: ETIR, hw: HardwareSpec, strict: bool = True) -> float:
    """Reduced-roofline latency estimate (seconds); inf when infeasible.

    ``strict=False`` uses the traversal-time memory check (outer levels not
    yet committed) so mid-walk states can still be compared.
    """
    if not state.memory_ok(hw, strict=strict):
        return math.inf
    compute = state.compute
    threads = state.threads_per_block()
    blocks = state.num_blocks()

    inner_work = 1.0
    for idx, _ax in enumerate(compute.axes):
        inner_work *= state.tile(idx, 1)
    ilp_eff = inner_work / (inner_work + 6.0)
    parallel_threads = min(blocks * threads, hw.num_sms * hw.max_threads_per_sm)
    util = parallel_threads / (hw.num_sms * hw.max_threads_per_sm)
    util_eff = util / (util + 0.12)
    # Blocks smaller than a warp waste SIMT lanes.
    warp_eff = threads / (math.ceil(threads / hw.warp_size) * hw.warp_size)
    flops = state.program_flops() if state.fused else compute.total_flops
    compute_time = flops / max(
        1.0, hw.peak_flops * ilp_eff * util_eff * warp_eff
    )

    coalesce = _coalescing(state, hw)
    dram_time = (
        state.dram_traffic_bytes() * coalesce / hw.dram.bandwidth_bytes_per_s
    )

    spatial = [
        (idx, ax) for idx, ax in enumerate(compute.axes) if not ax.is_reduce
    ]
    conflict = 1.0
    if spatial:
        idx, _ = spatial[-1]
        t1 = state.tile(idx, 1)
        threads_row = max(1, state.tile(idx, state.num_levels) // max(1, t1))
        span = min(hw.warp_size, threads_row) * t1
        conflict = smem_transaction_factor(
            max(1, span), hw.bank_width_elems, state.total_vthreads()
        )
    smem_time = (
        state.smem_traffic_bytes() * conflict / hw.smem.bandwidth_bytes_per_s
    )
    return max(compute_time, dram_time, smem_time)


def quick_latency_batch(
    states: "list[ETIR]", hw: HardwareSpec, strict: bool = True
) -> np.ndarray:
    """Vectorized :func:`quick_latency` over a candidate frontier.

    Feature extraction stays per-state (memoized on the ETIR); the roofline
    arithmetic runs as float64 array expressions in the scalar operation
    order, so every element is bit-identical to ``quick_latency(state)`` —
    infeasible states get ``inf`` exactly as the scalar path does.
    """
    if len(states) <= _SCALAR_CUTOVER:
        return np.array(
            [quick_latency(s, hw, strict=strict) for s in states],
            dtype=np.float64,
        )
    out = np.full(len(states), math.inf, dtype=np.float64)
    rows: list[int] = []
    feats: list[tuple] = []
    for i, state in enumerate(states):
        if not state.memory_ok(hw, strict=strict):
            continue
        compute = state.compute
        inner_work = 1.0
        for idx, _ax in enumerate(compute.axes):
            inner_work *= state.tile(idx, 1)
        spatial = [
            (idx, ax) for idx, ax in enumerate(compute.axes) if not ax.is_reduce
        ]
        conflict = 1.0
        if spatial:
            idx, _ = spatial[-1]
            t1 = state.tile(idx, 1)
            threads_row = max(1, state.tile(idx, state.num_levels) // max(1, t1))
            span = min(hw.warp_size, threads_row) * t1
            conflict = smem_transaction_factor(
                max(1, span), hw.bank_width_elems, state.total_vthreads()
            )
        rows.append(i)
        feats.append(
            (
                float(state.threads_per_block()),
                float(state.num_blocks()),
                inner_work,
                _coalescing(state, hw),
                conflict,
                float(state.dram_traffic_bytes()),
                float(state.smem_traffic_bytes()),
                float(
                    state.program_flops() if state.fused else compute.total_flops
                ),
            )
        )
    if not rows:
        return out

    cols = np.asarray(feats, dtype=np.float64).T
    out[rows] = quick_pipe(cols, hw)
    return out


def quick_pipe(cols: np.ndarray, hw: HardwareSpec) -> np.ndarray:
    """The roofline arithmetic of :func:`quick_latency` over feature columns.

    ``cols`` is a ``(8, n)`` float64 array with rows ``(threads, blocks,
    inner_work, coalesce, conflict, dram_q, smem_q, flops)``.  Operations
    run in the exact scalar order, so the result is bit-identical to the
    scalar path element-wise.  Shared by :func:`quick_latency_batch` and the
    SoA walk core (:mod:`repro.perf.soa`), which builds the same columns
    without materializing ETIR objects.
    """
    threads, blocks, inner_work, coalesce, conflict, dram_q, smem_q, flops = cols

    ilp_eff = inner_work / (inner_work + 6.0)
    parallel_threads = np.minimum(
        blocks * threads, hw.num_sms * hw.max_threads_per_sm
    )
    util = parallel_threads / (hw.num_sms * hw.max_threads_per_sm)
    util_eff = util / (util + 0.12)
    warp_eff = threads / (np.ceil(threads / hw.warp_size) * hw.warp_size)
    compute_time = flops / np.maximum(
        1.0, hw.peak_flops * ilp_eff * util_eff * warp_eff
    )
    dram_time = dram_q * coalesce / hw.dram.bandwidth_bytes_per_s
    smem_time = smem_q * conflict / hw.smem.bandwidth_bytes_per_s
    return np.maximum(np.maximum(compute_time, dram_time), smem_time)


def _coalescing(state: ETIR, hw: HardwareSpec) -> float:
    """Footprint-weighted DRAM-transaction inflation (shared with the
    simulator's fuller model; constructive compilers model coalescing too —
    Roller's rTiles exist to align slabs with memory transactions).

    Depends only on the block tiles (and the warp size), so it is memoized
    in the compute's tile-keyed cache.
    """
    if HOT_PATH_CACHING.enabled:
        from repro.ir.access import _tile_cache

        cache = _tile_cache(state.compute)
        lvl = state.num_levels
        key = (
            "coal",
            tuple(t[lvl - 1] for t in state.config.tiles),
            hw.warp_size,
        )
        cached = cache.get(key)
        if cached is None:
            cached = cache[key] = _coalescing_uncached(state, hw)
        return cached
    return _coalescing_uncached(state, hw)


def _coalescing_uncached(state: ETIR, hw: HardwareSpec) -> float:
    from repro.hardware.memory import coalescing_factor
    from repro.ir.access import access_footprint_elems

    block_tiles = state.tile_sizes(state.num_levels)
    total_w = 0.0
    acc_f = 0.0
    for acc in state.compute.inputs:
        width = min(
            acc.indices[-1].extent_under_tiles(block_tiles),
            acc.tensor.shape[-1],
        )
        weight = float(
            access_footprint_elems(acc, block_tiles) * acc.tensor.dtype_bytes
        )
        acc_f += coalescing_factor(width, hw.warp_size) * weight
        total_w += weight
    return acc_f / total_w if total_w else 1.0


def epilogue_standalone_s(ep, hw: HardwareSpec) -> float:
    """Analytical cost of running one epilogue op as its own kernel.

    A launch, a full IO round-trip, and its (tiny) FLOPs — the program-level
    price the fusion actions and the constructor's ranking objective charge
    for every epilogue left unfused.
    """
    return (
        hw.kernel_launch_overhead_s
        + ep.total_io_bytes() / hw.dram.bandwidth_bytes_per_s
        + ep.total_flops / hw.peak_flops
    )


def pending_penalty_s(state: ETIR, hw: HardwareSpec) -> float:
    """Standalone cost of every epilogue still unfused in ``state``.

    Zero for single-op states (empty pool), so per-kernel objectives are
    untouched; for program groups it makes latency comparisons
    program-level — a fused kernel that runs slightly longer still wins
    when it deletes whole epilogue kernels.
    """
    if not state.epilogue_pool or state.fused >= len(state.epilogue_pool):
        return 0.0
    return sum(epilogue_standalone_s(ep, hw) for ep in state.pending_epilogues)


def quick_score(state: ETIR, hw: HardwareSpec) -> float:
    """Higher-is-better analytical score (estimated FLOP/s)."""
    lat = quick_latency(state, hw)
    if not math.isfinite(lat) or lat <= 0:
        return 0.0
    flops = state.program_flops() if state.fused else state.compute.total_flops
    return flops / lat
