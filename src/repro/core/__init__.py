"""Gensor: graph-based construction tensor compilation (the paper's core).

The construction space is a graph whose nodes are ETIR states and whose
edges are scheduling actions (:mod:`repro.core.actions`).  Gensor walks it
as a Markov chain: per-action analytical benefits (paper Formulas 1–3) are
normalized into transition probabilities (:mod:`repro.core.policy`,
Algorithm 2) and an annealed stochastic walk (:mod:`repro.core.constructor`,
Algorithm 1) converges across memory levels.  :mod:`repro.core.markov`
provides the transition-matrix analysis backing the paper's §IV-D
convergence claims.
"""

from repro.core.actions import Action, ActionKind, enumerate_actions, action_benefit
from repro.core.graph import ConstructionGraph
from repro.core.policy import TransitionPolicy, cache_anneal_factor, append_probability
from repro.core.constructor import Gensor, GensorConfig, GensorResult
from repro.core.cache import CachedSchedule, ScheduleCache, shape_fingerprint
from repro.core.dynamic import DynamicCompileResult, DynamicGensor
from repro.core.score import quick_latency
from repro.core import markov, convergence

__all__ = [
    "Action",
    "ActionKind",
    "enumerate_actions",
    "action_benefit",
    "ConstructionGraph",
    "TransitionPolicy",
    "cache_anneal_factor",
    "append_probability",
    "Gensor",
    "GensorConfig",
    "GensorResult",
    "ScheduleCache",
    "CachedSchedule",
    "shape_fingerprint",
    "DynamicGensor",
    "DynamicCompileResult",
    "quick_latency",
    "markov",
    "convergence",
]
