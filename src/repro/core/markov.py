"""Markov-chain analysis of the construction graph (paper §IV-D).

The paper argues the construction process converges because the chain over
ETIR states is finite, irreducible within memory levels (inverse tiling
makes same-level states mutually reachable), and aperiodic; and that a
product-form value iteration over the normalized benefits converges to the
maximum-payoff state.  This module makes those claims executable: it builds
the explicit transition matrix of a (bounded) subgraph and provides the
stationary-distribution and value-iteration computations the tests and the
convergence-analysis experiment use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.actions import ActionKind
from repro.core.graph import ConstructionGraph
from repro.ir.etir import ETIR

__all__ = [
    "TransitionMatrix",
    "build_transition_matrix",
    "stationary_distribution",
    "value_iteration",
]


@dataclass
class TransitionMatrix:
    """Row-stochastic transition matrix over an ordered state list."""

    keys: list[tuple]
    matrix: np.ndarray  # shape (n, n)

    def __post_init__(self) -> None:
        # Key→row map built once; `index` used to scan `keys` linearly,
        # which made every per-state lookup O(n) on large subgraphs.
        self._index = {k: i for i, k in enumerate(self.keys)}

    @property
    def n(self) -> int:
        return len(self.keys)

    def index(self, key: tuple) -> int:
        return self._index[key]

    def validate(self) -> None:
        if np.isnan(self.matrix).any():
            raise ValueError(
                "transition matrix contains NaN probabilities "
                "(a degenerate row was normalized by a zero total)"
            )
        rows = self.matrix.sum(axis=1)
        dead = np.flatnonzero(rows == 0.0)
        if dead.size:
            # An all-zero row is a state the chain can enter but never
            # leave nor stay in: downstream normalization turns it into
            # NaN probabilities.  Name the states instead of failing late.
            shown = ", ".join(str(self.keys[i]) for i in dead[:3])
            more = f" (+{dead.size - 3} more)" if dead.size > 3 else ""
            raise ValueError(
                f"transition matrix has {dead.size} all-zero row(s) — "
                f"degenerate states with no outgoing probability: "
                f"{shown}{more}; enable self_loop_sinks or prune them"
            )
        if not np.allclose(rows, 1.0, atol=1e-9):
            raise ValueError("transition matrix rows must sum to 1")
        if (self.matrix < 0).any():
            raise ValueError("transition probabilities must be non-negative")


def build_transition_matrix(
    graph: ConstructionGraph,
    start: ETIR,
    max_nodes: int = 500,
    self_loop_sinks: bool = True,
    laziness: float = 0.02,
    soa_check: bool = False,
) -> TransitionMatrix:
    """Materialize the reachable subgraph and normalize benefits row-wise.

    Rows with no outgoing edges (converged sinks) get a self-loop so the
    matrix stays stochastic, matching the paper's treatment of terminal
    states.

    ``laziness`` is the per-state probability of staying put.  The paper's
    Algorithm 2 roulette can fall through its selection loop without
    returning an action, leaving the state unchanged — the chain is *lazy*,
    which is also what makes it aperiodic on power-of-two tile lattices
    (where every tiling cycle otherwise has even length).  Set it to 0 to
    analyze the strict always-move chain.

    ``soa_check=True`` additionally runs the structure-of-arrays
    differential harness (:class:`repro.perf.soa.DifferentialWalker`) over
    every materialized state, raising
    :class:`~repro.perf.soa.SoAParityError` if the packed walk core's
    expansion diverges from the graph's at any node of the analyzed
    subgraph — a convergence analysis then provably covers both paths.
    """
    if not (0.0 <= laziness < 1.0):
        raise ValueError(f"laziness must be in [0, 1), got {laziness}")
    graph.explore(start, max_nodes=max_nodes)
    if soa_check:
        from repro.perf.soa import DifferentialWalker

        diff = DifferentialWalker(
            start.compute,
            graph.hw,
            multi_objective=graph.multi_objective,
            forbid=graph.forbid,
        )
        for state in list(graph.nodes.values()):
            diff.compare_state(state, forbid=graph.forbid)
    keys = sorted(graph.nodes.keys())
    index = {k: i for i, k in enumerate(keys)}
    n = len(keys)
    P = np.zeros((n, n))
    for key in keys:
        state = graph.nodes[key]
        edges = [e for e in graph.expand(state) if e.dst_key in index]
        i = index[key]
        total = sum(e.benefit for e in edges)
        if total <= 0 or not edges:
            if self_loop_sinks:
                P[i, i] = 1.0
            continue
        move_mass = 1.0 - laziness
        for e in edges:
            P[i, index[e.dst_key]] += move_mass * e.benefit / total
        P[i, i] += laziness
    tm = TransitionMatrix(keys=keys, matrix=P)
    tm.validate()
    return tm


def stationary_distribution(
    tm: TransitionMatrix, tol: float = 1e-10, max_iter: int = 50_000
) -> np.ndarray:
    """Solve ``pi P = pi, sum(pi) = 1`` for the chain's stationary vector.

    Solved directly as a least-squares system (robust even when subgraph
    truncation leaves periodic recurrent classes, where plain power
    iteration oscillates).  Falls back to Cesàro-averaged power iteration
    if the linear solve is degenerate.
    """
    n = tm.n
    # [P^T - I; 1^T] pi = [0; 1]
    A = np.vstack([tm.matrix.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(A, b, rcond=None)
    if np.all(pi >= -1e-9) and abs(pi.sum() - 1.0) < 1e-6:
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()
    # Cesàro averaging converges for periodic chains as well.
    cur = np.full(n, 1.0 / n)
    avg = cur.copy()
    # Inclusive upper bound: `range(1, max_iter)` ran max_iter - 1 steps,
    # and max_iter=1 silently did zero averaging.
    for it in range(1, max_iter + 1):
        cur = cur @ tm.matrix
        new_avg = (avg * it + cur) / (it + 1)
        if np.abs(new_avg - avg).max() < tol:
            return new_avg / new_avg.sum()
        avg = new_avg
    raise RuntimeError("stationary distribution did not converge")


def value_iteration(
    tm: TransitionMatrix,
    rewards: np.ndarray,
    tol: float = 1e-12,
    max_iter: int = 10_000,
) -> tuple[np.ndarray, int]:
    """The paper's product-form Bellman iteration (Formulas 5–6).

    ``V_{k+1}(i) = max_a pi(a|i) * V_k(j))`` with ``V_0 = rewards``.
    Because benefits are multiplicative acceleration ratios, the update is
    a max over products, not sums.  Returns the fixed point and the number
    of iterations it took — the quantity the paper reports as "about 100".
    """
    if rewards.shape != (tm.n,):
        raise ValueError("rewards must have one entry per state")
    if (rewards < 0).any():
        raise ValueError("rewards must be non-negative for product-form values")
    V = rewards.astype(float).copy()
    for it in range(1, max_iter + 1):
        # For each state i: max over successors j of P[i, j] * V[j].
        candidate = tm.matrix * V[None, :]
        nxt = np.maximum(candidate.max(axis=1), rewards)
        if np.abs(nxt - V).max() < tol:
            return nxt, it
        V = nxt
    raise RuntimeError("value iteration did not converge")
