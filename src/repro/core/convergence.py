"""Executable convergence and validity checks (paper §IV-D).

Irreducibility is claimed *within a memory level*: inverse tiling makes the
states that share a level and an outer-tile context mutually reachable
(cache transitions are one-way by design — that is what drives
termination).  Aperiodicity holds when tile extents admit return cycles of
coprime lengths; for power-of-two-only extents every tiling cycle has even
length, so the demonstration operators use non-power-of-two extents, where
the clamp-to-extent move creates odd cycles (e.g. 3 → 6 → 3 alongside
3 → 1 → 2 → 4 → 6 → 3).

These functions verify both properties on fully materialized bounded
subgraphs with networkx and package the analysis into the report used by
tests and the convergence-analysis experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.actions import ActionKind
from repro.core.graph import ConstructionGraph
from repro.core.markov import (
    build_transition_matrix,
    stationary_distribution,
    value_iteration,
)
from repro.core.score import quick_score
from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR

__all__ = [
    "ConvergenceReport",
    "same_level_groups",
    "same_level_irreducible",
    "is_aperiodic",
    "analyze",
]


def same_level_groups(keys: list[tuple]) -> dict[tuple, list[tuple]]:
    """Group state keys by (memory level, frozen outer-tile context).

    Key layout: ``(name, tiles, vthreads, cur_level)`` where ``tiles`` is a
    per-axis tuple of per-level sizes.  States at scheduling level ``l``
    share a group when every tile at levels ``>= l`` matches — those outer
    tiles are frozen once the walk leaves the level, so only states with
    the same context are claimed to be mutually reachable.
    """
    groups: dict[tuple, list[tuple]] = {}
    for key in keys:
        _name, tiles, _vt, level = key
        # per_axis is (T_1, ..., T_L); the frozen outer context is every
        # tile strictly above the level being scheduled.
        context = tuple(per_axis[level:] for per_axis in tiles)
        groups.setdefault((level, context), []).append(key)
    return groups


def same_level_irreducible(graph: ConstructionGraph, level: int) -> bool:
    """True if every same-level, same-context group of materialized states
    is strongly connected under the non-cache actions."""
    import networkx as nx

    g = graph.to_networkx()
    keys = [k for k in g.nodes if k[-1] == level]
    if not keys:
        return True
    non_cache = nx.DiGraph()
    non_cache.add_nodes_from(keys)
    for src, dst, data in g.edges(data=True):
        if data.get("action") != ActionKind.CACHE and src[-1] == dst[-1] == level:
            non_cache.add_edge(src, dst)
    for (_lvl, _ctx), members in same_level_groups(keys).items():
        sub = non_cache.subgraph(members)
        if sub.number_of_nodes() > 1 and not nx.is_strongly_connected(sub):
            return False
    return True


def is_aperiodic(graph: ConstructionGraph, lazy: bool = True) -> bool:
    """Aperiodicity of every recurrent class of the materialized chain.

    ``lazy=True`` analyzes the chain the paper's Algorithm 2 actually
    defines (its roulette can fall through without moving, so every state
    has a self-loop); ``lazy=False`` analyzes the strict always-move chain,
    which is periodic on power-of-two tile lattices.
    """
    import networkx as nx

    g = graph.to_networkx()
    for node in list(g.nodes):
        if lazy or g.out_degree(node) == 0:
            g.add_edge(node, node)  # laziness / sink self-loop, as in the matrix
    for comp in nx.strongly_connected_components(g):
        outgoing = any(dst not in comp for src in comp for dst in g.successors(src))
        if outgoing:
            continue  # transient class: periodicity irrelevant
        if not nx.is_aperiodic(g.subgraph(comp)):
            return False
    return True


@dataclass
class ConvergenceReport:
    """Summary of the Markov analysis over a bounded construction subgraph."""

    num_states: int
    num_edges: int
    irreducible_per_level: dict[int, bool]
    aperiodic: bool
    value_iterations: int
    best_state_key: tuple
    stationary_mass_on_top_decile: float


def analyze(
    compute: ComputeDef,
    hardware: HardwareSpec,
    max_nodes: int = 2000,
    include_vthread: bool = False,
) -> ConvergenceReport:
    """Run the full §IV-D analysis on a bounded subgraph of ``compute``.

    vThread actions are excluded by default so small operators' state
    spaces can be materialized *exhaustively* — truncated frontiers would
    otherwise report spurious reducibility.
    """
    forbid = (
        frozenset()
        if include_vthread
        else frozenset({ActionKind.VTHREAD_UP, ActionKind.VTHREAD_DOWN})
    )
    graph = ConstructionGraph(hardware, forbid=forbid)
    start = ETIR.initial(compute, num_levels=hardware.num_cache_levels)
    tm = build_transition_matrix(graph, start, max_nodes=max_nodes)
    levels = sorted({key[-1] for key in tm.keys})
    irreducible = {lvl: same_level_irreducible(graph, lvl) for lvl in levels}
    aperiodic = is_aperiodic(graph)
    rewards = np.array([quick_score(graph.nodes[k], hardware) for k in tm.keys])
    if rewards.max() > 0:
        rewards = rewards / rewards.max()
    values, iters = value_iteration(tm, rewards, tol=1e-10)
    best_idx = int(np.argmax(values))
    pi = stationary_distribution(tm)
    order = np.argsort(rewards)[::-1]
    top = order[: max(1, len(order) // 10)]
    return ConvergenceReport(
        num_states=tm.n,
        num_edges=graph.edge_count(),
        irreducible_per_level=irreducible,
        aperiodic=aperiodic,
        value_iterations=iters,
        best_state_key=tm.keys[best_idx],
        stationary_mass_on_top_decile=float(pi[top].sum()),
    )
