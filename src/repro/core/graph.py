"""The construction graph: lazily expanded state space over ETIR nodes.

The graph is exponentially large, so it is materialized on demand:
:meth:`ConstructionGraph.expand` produces the legal outgoing edges of one
state, memoizing nodes by their ETIR key.  Besides serving the Markov walk,
the explicit structure supports the paper's analyses — exporting a
NetworkX digraph for irreducibility/aperiodicity checks and enumerating
bounded subgraphs for transition-matrix experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.actions import Action, action_benefit, enumerate_actions
from repro.hardware.spec import HardwareSpec
from repro.ir.etir import ETIR

__all__ = ["Edge", "ConstructionGraph"]


@dataclass(frozen=True)
class Edge:
    """A legal transition: ``action`` maps ``src`` to ``dst`` with ``benefit``."""

    src_key: tuple
    dst_key: tuple
    action: Action
    benefit: float


class ConstructionGraph:
    """Lazily expanded construction space for one operator on one device.

    ``forbid`` removes whole action families from the space (e.g. vThreads
    for the ablation variant, or for analyses over a bounded state count).
    """

    def __init__(
        self,
        hardware: HardwareSpec,
        forbid: frozenset[str] = frozenset(),
        multi_objective: bool = True,
    ) -> None:
        self.hw = hardware
        self.forbid = forbid
        self.multi_objective = multi_objective
        self.nodes: dict[tuple, ETIR] = {}
        self._edges: dict[tuple, list[Edge]] = {}

    def add_node(self, state: ETIR) -> tuple:
        key = state.key()
        self.nodes.setdefault(key, state)
        return key

    def expand(self, state: ETIR) -> list[Edge]:
        """Legal outgoing edges of ``state`` (memoized).

        Edges whose destination fails the memory check carry benefit 0 and
        are excluded — the paper sets their probability to 0, which is the
        same thing for the walk.
        """
        key = self.add_node(state)
        cached = self._edges.get(key)
        if cached is not None:
            return cached
        edges: list[Edge] = []
        for action in enumerate_actions(state):
            if action.kind in self.forbid:
                continue
            nxt = action.apply(state)
            if nxt is None:
                continue
            benefit = action_benefit(
                action, state, nxt, self.hw, self.multi_objective
            )
            if benefit <= 0.0:
                continue
            dst_key = self.add_node(nxt)
            edges.append(Edge(key, dst_key, action, benefit))
        self._edges[key] = edges
        return edges

    def neighbors(self, state: ETIR) -> list[ETIR]:
        return [self.nodes[e.dst_key] for e in self.expand(state)]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_expanded(self) -> int:
        return len(self._edges)

    def explore(self, start: ETIR, max_nodes: int = 2000) -> None:
        """Breadth-first materialization of the subgraph reachable from
        ``start``, bounded by ``max_nodes`` (for analysis experiments)."""
        frontier = [start]
        self.add_node(start)
        seen = {start.key()}
        while frontier and len(seen) < max_nodes:
            state = frontier.pop(0)
            for edge in self.expand(state):
                if edge.dst_key not in seen:
                    seen.add(edge.dst_key)
                    frontier.append(self.nodes[edge.dst_key])
                    if len(seen) >= max_nodes:
                        break

    def to_networkx(self):
        """Export the materialized subgraph as a ``networkx.DiGraph``.

        Imported lazily so the core has no hard networkx dependency.
        """
        import networkx as nx

        g = nx.DiGraph()
        for key in self.nodes:
            g.add_node(key)
        for edges in self._edges.values():
            for e in edges:
                g.add_edge(e.src_key, e.dst_key, benefit=e.benefit, action=e.action.kind)
        return g

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._edges.values())
