"""The construction graph: lazily expanded state space over ETIR nodes.

The graph is exponentially large, so it is materialized on demand:
:meth:`ConstructionGraph.expand` produces the legal outgoing edges of one
state, memoizing nodes by their ETIR key.  Besides serving the Markov walk,
the explicit structure supports the paper's analyses — exporting a
NetworkX digraph for irreducibility/aperiodicity checks and enumerating
bounded subgraphs for transition-matrix experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.actions import (
    Action,
    action_benefit,
    action_benefits,
    enumerate_actions,
)
from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR

__all__ = ["Edge", "ConstructionGraph", "DEFAULT_MAX_CACHED_STATES"]

#: Node/edge memo cap: a long-lived service can expand millions of states
#: across requests, so the graph sheds its oldest cached half past this.
DEFAULT_MAX_CACHED_STATES = 100_000


@dataclass(frozen=True)
class Edge:
    """A legal transition: ``action`` maps ``src`` to ``dst`` with ``benefit``.

    ``dst`` carries the destination state itself so walking an edge never
    needs the graph's (bounded, evictable) node memo.
    """

    src_key: tuple
    dst_key: tuple
    action: Action
    benefit: float
    dst: ETIR = field(repr=False, compare=False)


class ConstructionGraph:
    """Lazily expanded construction space for one operator on one device.

    ``forbid`` removes whole action families from the space (e.g. vThreads
    for the ablation variant, or for analyses over a bounded state count).

    ``batch_scoring`` prices each expansion frontier through the vectorized
    benefit path (bit-identical values to the scalar one); ``False`` keeps
    the per-edge scalar calls — the bench's pre-PR baseline.

    The node/edge/latency memos are bounded by ``max_cached_states``: past
    the cap the oldest-inserted half is dropped and re-derived on demand
    (expansion is deterministic, so recomputation is value-identical).
    ``max_cached_states=0`` disables eviction.
    """

    def __init__(
        self,
        hardware: HardwareSpec,
        forbid: frozenset[str] = frozenset(),
        multi_objective: bool = True,
        batch_scoring: bool = True,
        max_cached_states: int = DEFAULT_MAX_CACHED_STATES,
    ) -> None:
        self.hw = hardware
        self.forbid = forbid
        self.multi_objective = multi_objective
        self.batch_scoring = batch_scoring
        self.max_cached_states = max_cached_states
        self.nodes: dict[tuple, ETIR] = {}
        self._edges: dict[tuple, list[Edge]] = {}
        # Keyed by ETIR instance (cached hash) rather than key() tuple:
        # nested-tuple keys would be rehashed on every lookup.
        self._quick_cache: dict[ETIR, float] = {}
        self._nodes_seen = 0

    def add_node(self, state: ETIR) -> tuple:
        key = state.key()
        if key not in self.nodes:
            self.nodes[key] = state
            self._nodes_seen += 1
        return key

    def expand(self, state: ETIR) -> list[Edge]:
        """Legal outgoing edges of ``state`` (memoized).

        Edges whose destination fails the memory check carry benefit 0 and
        are excluded — the paper sets their probability to 0, which is the
        same thing for the walk.
        """
        key = self.add_node(state)
        cached = self._edges.get(key)
        if cached is not None:
            return cached
        candidates: list[tuple[Action, ETIR]] = []
        for action in enumerate_actions(state):
            if action.kind in self.forbid:
                continue
            nxt = action.apply(state)
            if nxt is None:
                continue
            candidates.append((action, nxt))
        if self.batch_scoring:
            benefits = action_benefits(
                candidates,
                state,
                self.hw,
                self.multi_objective,
                quick_cache=self._quick_cache,
            )
        else:
            benefits = [
                action_benefit(action, state, nxt, self.hw, self.multi_objective)
                for action, nxt in candidates
            ]
        edges: list[Edge] = []
        for (action, nxt), benefit in zip(candidates, benefits):
            if benefit <= 0.0:
                continue
            dst_key = self.add_node(nxt)
            edges.append(Edge(key, dst_key, action, benefit, nxt))
        self._edges[key] = edges
        self._maybe_evict()
        return edges

    def expansion_oracle(
        self, state: ETIR
    ) -> "list[tuple[Action, ETIR | None, float]]":
        """Slot-level scalar expansion for the differential SoA harness.

        One ``(action, next_state, benefit)`` triple per enumerated action
        template — structurally illegal ones included (``next_state`` is
        ``None`` and the benefit 0.0), memory-check failures carry benefit
        0.0.  Priced through the per-edge *scalar* benefit path and touching
        none of the graph's memos, so it stays an independent oracle for
        :class:`repro.perf.soa.DifferentialWalker` even after ``expand`` has
        cached the same state.
        """
        slots: list[tuple[Action, ETIR | None, float]] = []
        for action in enumerate_actions(state):
            if action.kind in self.forbid:
                continue
            nxt = action.apply(state)
            benefit = (
                action_benefit(action, state, nxt, self.hw, self.multi_objective)
                if nxt is not None
                else 0.0
            )
            slots.append((action, nxt, benefit))
        return slots

    def _maybe_evict(self) -> None:
        cap = self.max_cached_states
        if cap <= 0:
            return
        # Rebind fresh dicts rather than mutating in place, so concurrent
        # walkers iterating the old reference never see a resize.
        if len(self.nodes) > cap:
            items = list(self.nodes.items())
            self.nodes = dict(items[len(items) // 2 :])
        if len(self._edges) > cap:
            items = list(self._edges.items())
            self._edges = dict(items[len(items) // 2 :])
        if len(self._quick_cache) > cap:
            qitems = list(self._quick_cache.items())
            self._quick_cache = dict(qitems[len(qitems) // 2 :])

    def neighbors(self, state: ETIR) -> list[ETIR]:
        return [e.dst for e in self.expand(state)]

    # -- checkpoint support ------------------------------------------------

    def export_nodes(self) -> tuple[list[tuple], int]:
        """Portable node identities for a :class:`WalkCheckpoint`.

        Returns the cached node keys as insertion-ordered
        ``(tiles, vthreads, cur_level)`` tuples plus the monotone
        ``_nodes_seen`` counter.  The *membership* matters, not just the
        count: :meth:`add_node` only increments for unseen keys, so a
        resumed walk's future ``num_nodes`` depends on exactly which
        keys the snapshot preserved.  Edge memos are deliberately not
        exported — expansion is deterministic, so the resumed walk
        rebuilds value-identical memos on demand.
        """
        return [(key[1], key[2], key[3]) for key in self.nodes], self._nodes_seen

    def restore_nodes(
        self, configs: Iterable[tuple], nodes_seen: int, compute: ComputeDef
    ) -> None:
        """Rebuild the node memo a checkpoint exported (insertion order kept)."""
        nodes: dict[tuple, ETIR] = {}
        for tiles, vthreads, level in configs:
            state = ETIR.from_arrays(
                compute,
                np.array(tiles, dtype=np.int64),
                np.array(vthreads, dtype=np.int64),
                int(level),
                len(tiles[0]),
            )
            nodes[state.key()] = state
        self.nodes = nodes
        self._nodes_seen = int(nodes_seen)

    @property
    def num_nodes(self) -> int:
        """Distinct states ever added (monotone — unaffected by eviction)."""
        return self._nodes_seen

    @property
    def num_cached_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_expanded(self) -> int:
        return len(self._edges)

    def explore(self, start: ETIR, max_nodes: int = 2000) -> None:
        """Breadth-first materialization of the subgraph reachable from
        ``start``, bounded by ``max_nodes`` (for analysis experiments)."""
        frontier = [start]
        self.add_node(start)
        seen = {start.key()}
        while frontier and len(seen) < max_nodes:
            state = frontier.pop(0)
            for edge in self.expand(state):
                if edge.dst_key not in seen:
                    seen.add(edge.dst_key)
                    frontier.append(self.nodes[edge.dst_key])
                    if len(seen) >= max_nodes:
                        break

    def to_networkx(self):
        """Export the materialized subgraph as a ``networkx.DiGraph``.

        Imported lazily so the core has no hard networkx dependency.
        """
        import networkx as nx

        g = nx.DiGraph()
        for key in self.nodes:
            g.add_node(key)
        for edges in self._edges.values():
            for e in edges:
                g.add_edge(e.src_key, e.dst_key, benefit=e.benefit, action=e.action.kind)
        return g

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._edges.values())
