"""DynamicGensor: real-time re-optimization for dynamic DNNs.

The paper closes with "ongoing work aims to design a dynamic optimizing
system based on Gensor to achieve efficient real-time optimization of
dynamic deep neural networks" — this module implements that system:

* a per-device :class:`~repro.core.cache.ScheduleCache` remembers every
  shape ever optimized (exact hits compile in microseconds),
* unseen shapes *warm-start*: the nearest cached configuration of the
  same operator family is adapted to the new extents and refined with the
  deterministic value-policy (the polish pass), skipping the full
  annealed walk,
* shapes with no usable neighbor fall back to the full Gensor
  construction — whose winner then enters the cache.

The result is amortized seconds-to-microseconds compilation across a
dynamic shape stream, at schedule quality matching cold construction
(see ``benchmarks/test_dynamic_gensor.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import ScheduleCache
from repro.core.constructor import Gensor, GensorConfig, GensorResult
from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience.deadline import CancelToken
from repro.sim.measure import MICROBENCH_SECONDS, Measurer

__all__ = ["DynamicGensor", "DynamicCompileResult"]


@dataclass
class DynamicCompileResult:
    """One dynamic compilation, tagged with how it was served."""

    result: GensorResult
    #: "hit" (exact cache), "warm" (nearest-neighbor + refine), "cold"
    #: (full construction).
    source: str

    @property
    def latency_s(self) -> float:
        return self.result.best_metrics.latency_s

    @property
    def compile_seconds(self) -> float:
        return self.result.compile_seconds


@dataclass
class DynamicStats:
    hits: int = 0
    warm: int = 0
    cold: int = 0
    #: guards increments — the serving layer drives one DynamicGensor from
    #: many worker threads.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def count(self, source: str) -> None:
        with self._lock:
            if source == "hit":
                self.hits += 1
            elif source == "warm":
                self.warm += 1
            elif source == "cold":
                self.cold += 1
            else:
                raise ValueError(f"unknown serve source {source!r}")

    @property
    def total(self) -> int:
        return self.hits + self.warm + self.cold


class DynamicGensor:
    """Cache-backed, warm-starting Gensor for dynamic shape streams."""

    def __init__(
        self,
        hardware: HardwareSpec,
        config: GensorConfig | None = None,
        cache: ScheduleCache | None = None,
        #: refinement steps applied to a warm-started configuration.
        warm_polish_steps: int = 40,
        #: how many of the (adapted entry + seed) candidates get polished;
        #: serving deployments shrink this to cut per-request CPU.
        warm_pool: int = 3,
    ) -> None:
        if warm_pool < 1:
            raise ValueError(f"warm_pool must be >= 1, got {warm_pool}")
        self.hw = hardware
        self.config = config or GensorConfig()
        # not `cache or ...`: ScheduleCache has __len__, so an *empty*
        # injected cache is falsy and would be silently replaced — fatal
        # for fleet shards, which hand in an empty cache wired to the
        # shared on-disk database.
        self.cache = cache if cache is not None else ScheduleCache(hardware)
        self.warm_polish_steps = warm_polish_steps
        self.warm_pool = warm_pool
        self.stats = DynamicStats()
        #: the underlying constructor — public so the serving layer can use
        #: its warm-start hooks (``seed_states`` / ``polish``) directly.
        self.gensor = Gensor(hardware, self.config)

    @property
    def memo(self):
        """The shared metrics memo (same instance the constructor prices with)."""
        return self.gensor.memo

    def compile(
        self,
        compute: ComputeDef,
        measurer: Measurer | None = None,
        tracer: Tracer | None = None,
        cancel: CancelToken | None = None,
        resume_from=None,
        checkpointer=None,
        epilogues: "tuple[ComputeDef, ...]" = (),
    ) -> DynamicCompileResult:
        """Serve one shape: cache hit, warm start, or cold construction.

        ``cancel`` is forwarded into the polish/construction loops so the
        serving layer's per-attempt timeouts can reclaim a hung compile.
        ``resume_from``/``checkpointer`` apply to the cold path only — the
        hit and warm tiers never run the annealed walk, so there is
        nothing to checkpoint or resume there (a stale checkpoint simply
        rides along unused when the cache answers first).

        ``epilogues`` (a program fusion group's pool) bypasses the cache
        entirely and runs the full fused construction: cache entries store
        bare tile configs keyed by the anchor shape, so a fused winner
        must never be served for — or seeded from — the plain kernel.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        measurer = measurer or Measurer(
            self.hw,
            seed=self.config.seed,
            noise_sigma=0.0,
            seconds_per_measurement=MICROBENCH_SECONDS,
            tracer=tracer,
        )
        t0 = time.perf_counter()

        if epilogues:
            self.stats.count("cold")
            result = self.gensor.compile(
                compute,
                measurer,
                tracer=tracer,
                cancel=cancel,
                epilogues=tuple(epilogues),
            )
            self._trace(tracer, compute, "cold", time.perf_counter() - t0)
            return DynamicCompileResult(result, source="cold")

        exact = self.cache.get(compute)
        if exact is not None:
            state = exact.instantiate(compute)
            if state is not None and state.memory_ok(self.hw):
                self.stats.count("hit")
                metrics = self.memo.evaluate(self.hw, state)
                wall = time.perf_counter() - t0
                self._trace(tracer, compute, "hit", wall)
                return DynamicCompileResult(
                    GensorResult(
                        best=state,
                        best_metrics=metrics,
                        top_results=[state],
                        iterations=0,
                        states_visited=1,
                        compile_wall_s=wall,
                        simulated_measure_s=0.0,
                    ),
                    source="hit",
                )

        neighbor = self.cache.nearest(compute)
        if neighbor is not None:
            warm = neighbor.instantiate(compute)
            if warm is not None and warm.memory_ok(self.hw):
                self.stats.count("warm")
                measured_before = measurer.simulated_seconds
                # Refine the adapted entry alongside the best canonical dim
                # configs — a few deterministic polish runs instead of the
                # full annealed walk.
                pool = [warm] + self.gensor.seed_states(compute)
                # Batched pricing; a stable index sort preserves the tie
                # order of the old ``pool.sort(key=latency)``.
                pool_lats = self.memo.latency_batch(self.hw, pool)
                pool = [
                    pool[i]
                    for i in sorted(
                        range(len(pool)), key=lambda i: pool_lats[i]
                    )
                ]
                polished = [
                    self.gensor.polish(
                        s,
                        self.warm_polish_steps,
                        frozenset(),
                        tracer=tracer,
                        cancel=cancel,
                    )
                    for s in pool[: self.warm_pool]
                ]
                refined = polished[
                    int(np.argmin(self.memo.latency_batch(self.hw, polished)))
                ]
                metrics = measurer.measure(refined)
                wall = time.perf_counter() - t0
                result = GensorResult(
                    best=refined,
                    best_metrics=metrics,
                    top_results=[refined],
                    iterations=0,
                    states_visited=1,
                    compile_wall_s=wall,
                    simulated_measure_s=measurer.simulated_seconds
                    - measured_before,
                )
                self.cache.put(refined, metrics.latency_s)
                self._trace(tracer, compute, "warm", wall)
                return DynamicCompileResult(result, source="warm")

        self.stats.count("cold")
        result = self.gensor.compile(
            compute,
            measurer,
            tracer=tracer,
            cancel=cancel,
            resume_from=resume_from,
            checkpointer=checkpointer,
        )
        self.cache.put(result.best, result.best_metrics.latency_s)
        self._trace(tracer, compute, "cold", time.perf_counter() - t0)
        return DynamicCompileResult(result, source="cold")

    def compile_graph(
        self,
        model_graph,
        fusion: bool = True,
        measurer: Measurer | None = None,
        tracer: Tracer | None = None,
    ):
        """Compile a :class:`~repro.models.graph.ModelGraph` as one program
        (see :meth:`Gensor.compile_graph`); fused groups always run cold,
        single-op groups go through the cache tiers."""
        from repro.models.program import compile_program

        return compile_program(
            self, model_graph, fusion=fusion, measurer=measurer, tracer=tracer
        )

    @staticmethod
    def _trace(
        tracer: Tracer, compute: ComputeDef, source: str, wall: float
    ) -> None:
        if tracer.enabled:
            tracer.emit(
                "dynamic_serve",
                {"compute": compute.name, "source": source},
                dur=wall,
            )
