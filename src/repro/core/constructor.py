"""Gensor's construction loop (paper Algorithm 1).

Starting from the unscheduled ETIR state, an annealed Markov walk applies
one scheduling action per iteration: the transition policy samples an edge
by its normalized analytical benefit, the temperature decays, and the
cache-action bias grows so the walk crosses memory levels and terminates.
States encountered at high temperature are appended to a diverse
``top_results`` pool.

Several independent chains are run (the paper's "diverse set of tensor
program configurations"), the pooled candidates are ranked by Gensor's
internal analytical score, and only the short top-k list is profiled once
on the (simulated) device — the same final micro-benchmark step Roller
uses, preserving the constructive methods' orders-of-magnitude compile-time
advantage over search.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.actions import ActionKind
from repro.core.graph import ConstructionGraph
from repro.core.policy import TransitionPolicy, append_probability
from repro.core.score import pending_penalty_s, quick_latency
from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf.memo import MetricsMemo, get_memo
from repro.resilience.deadline import CancelToken
from repro.sim.measure import MICROBENCH_SECONDS, Measurer
from repro.sim.metrics import KernelMetrics
from repro.utils.rng import restore_rng, spawn_rng, spawn_substreams

__all__ = ["GensorConfig", "GensorResult", "Gensor"]


@dataclass(frozen=True)
class GensorConfig:
    """Tuning knobs of the construction loop.

    The defaults follow the paper's description: temperature annealing to a
    threshold (~100 iterations per chain with the default cooling rate),
    a handful of independent chains for result diversity, and a top-k
    measured shortlist.  ``cooling=0.5`` reproduces the paper's literal
    "T halves each iteration" variant (see the annealing ablation bench).
    """

    seed: int = 0
    initial_temperature: float = 100.0
    cooling: float = 0.93
    threshold: float = 0.01
    num_chains: int = 8
    top_k: int = 16
    enable_vthread: bool = True
    max_iterations_per_chain: int = 400
    #: greedy value-refinement steps applied to the shortlist (paper §IV-D:
    #: the optimal policy picks the action maximizing the state value; we run
    #: that deterministic policy from the best sampled states).  0 disables.
    polish_steps: int = 120
    #: False drops the roofline term from transition benefits, leaving the
    #: bare Formula 1-3 ratios (the single-objective guidance ablation).
    multi_objective: bool = True
    #: independent annealed walks run per compile; each walker runs
    #: ``num_chains`` chains on its own deterministic RNG substream and the
    #: candidate pools are merged.  ``walkers=1`` consumes exactly the
    #: single-walker RNG stream (golden-trace parity).
    walkers: int = 1
    #: False prices expansion frontiers, polish sweeps, and ranking through
    #: the per-edge scalar calls instead of the vectorized batch path.  The
    #: two produce bit-identical values; this knob exists so the walk bench
    #: can measure the batched path against the historical scalar one.
    batch_scoring: bool = True

    def __post_init__(self) -> None:
        if not (0.0 < self.cooling < 1.0):
            raise ValueError(f"cooling must be in (0,1), got {self.cooling}")
        if self.initial_temperature <= self.threshold:
            raise ValueError("initial temperature must exceed threshold")
        if self.num_chains < 1 or self.top_k < 1:
            raise ValueError("num_chains and top_k must be >= 1")
        if self.walkers < 1:
            raise ValueError(f"walkers must be >= 1, got {self.walkers}")


@dataclass
class GensorResult:
    """Outcome of one Gensor compilation (same surface as
    :class:`~repro.baselines.base.CompilerResult`)."""

    best: ETIR
    best_metrics: KernelMetrics
    top_results: list[ETIR]
    iterations: int
    states_visited: int
    compile_wall_s: float
    simulated_measure_s: float
    method: str = "gensor"

    @property
    def compile_seconds(self) -> float:
        """Total compile cost: optimization wall clock + simulated profiling."""
        return self.compile_wall_s + self.simulated_measure_s

    @property
    def latency_s(self) -> float:
        return self.best_metrics.latency_s

    @property
    def achieved_flops(self) -> float:
        return self.best_metrics.achieved_flops


class Gensor:
    """Graph-based construction tensor compiler."""

    def __init__(
        self,
        hardware: HardwareSpec,
        config: GensorConfig | None = None,
        tracer: Tracer | None = None,
        memo: MetricsMemo | None = None,
    ) -> None:
        self.hw = hardware
        self.config = config or GensorConfig()
        #: default event sink; per-call tracers can override it.  The
        #: NullTracer default keeps the walk allocation-free: every emission
        #: below is guarded on ``tracer.enabled``.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: shared bounded memo over the full analytical model (noise-free —
        #: this is analysis, not profiling).  The cheap roofline guides the
        #: walk; this model ranks and refines the final candidates.  The
        #: process-wide default memo is shared with DynamicGensor, the
        #: Measurer, and CompileService, so nothing is priced twice.
        self.memo = memo if memo is not None else get_memo()

    def _model_latency(self, state: ETIR) -> float:
        return self.memo.latency(self.hw, state)

    def _model_latency_batch(self, states: list[ETIR]) -> np.ndarray:
        return self.memo.latency_batch(self.hw, states)

    def compile(
        self,
        compute: ComputeDef,
        measurer: Measurer | None = None,
        tracer: Tracer | None = None,
        cancel: CancelToken | None = None,
        walkers: int | None = None,
        resume_from=None,
        checkpointer=None,
        epilogues: "tuple[ComputeDef, ...]" = (),
    ) -> GensorResult:
        """Construct an optimized schedule for ``compute``.

        ``epilogues`` is the fusable-epilogue pool of a program fusion
        group (see :mod:`repro.models.program`): the walk gains
        fuse/unfuse edges toggling how many pool ops run inside the anchor
        kernel, and candidates are ranked by *program* cost (kernel
        latency plus the standalone cost of every epilogue left unfused).
        Empty (the default) leaves the single-op walk — actions, RNG
        stream, ranking — byte-identical to the historical path.

        ``measurer`` provides the final top-k profiling; when omitted a
        fresh noise-free measurer on the constructor's device is used.
        ``tracer`` overrides the constructor-level tracer for this call;
        the walk consumes the identical RNG stream with tracing on or off.
        ``cancel`` is a cooperative deadline token polled once per walk
        iteration (and per polish step); an expired token raises
        :class:`~repro.resilience.deadline.CompileCancelled` — polling
        never touches the RNG streams, so cancellation preserves the
        walk's determinism for attempts that do finish.
        ``walkers`` overrides ``config.walkers`` for this call: ``k > 1``
        runs k independent annealed walks over the shared construction
        graph on the worker pool and merges their candidate pools in
        walker order (deterministic regardless of thread scheduling);
        ``1`` consumes exactly the historical single-walker RNG stream.

        ``resume_from`` restarts the walk mid-anneal from a
        :class:`~repro.resilience.checkpoint.WalkCheckpoint`: completed
        chains are skipped, the interrupted chain continues from its
        snapshotted state and exact RNG bit state, and the result is
        byte-identical (schedule, trace suffix, RNG consumption, node
        counts) to the uninterrupted walk.  ``checkpointer`` (a
        :class:`~repro.resilience.checkpoint.Checkpointer`) snapshots the
        walk on its policy's cadence so a later attempt can resume.  Both
        require the effective single-walker path — multi-walker walks are
        deliberately not checkpointed (their merge couples substreams).
        """
        t_start = time.perf_counter()
        cfg = self.config
        epilogues = tuple(epilogues)
        if epilogues and (resume_from is not None or checkpointer is not None):
            raise ValueError(
                "checkpoint/resume is not supported for fused program "
                "groups; compile them without a checkpointer"
            )
        n_walkers = cfg.walkers if walkers is None else int(walkers)
        if n_walkers < 1:
            raise ValueError(f"walkers must be >= 1, got {n_walkers}")
        if n_walkers > 1:
            if resume_from is not None:
                raise ValueError(
                    "resume_from requires a single walker; multi-walker "
                    "walks are not checkpointed"
                )
            checkpointer = None
        if resume_from is not None:
            resume_from.require(compute, cfg)
        tracer = tracer if tracer is not None else self.tracer
        measurer = measurer or Measurer(
            self.hw,
            seed=cfg.seed,
            noise_sigma=0.0,
            seconds_per_measurement=MICROBENCH_SECONDS,
            tracer=tracer,
            memo=self.memo,
        )
        measured_before = measurer.simulated_seconds
        forbid = (
            frozenset()
            if cfg.enable_vthread
            else frozenset({ActionKind.VTHREAD_UP, ActionKind.VTHREAD_DOWN})
        )
        engine = None
        # The SoA core packs states as (tiles, vthreads, level) arrays with
        # no epilogue dimension; fused walks take the object path, whose
        # parity obligation is only for unfused programs.
        if cfg.batch_scoring and not epilogues:
            from repro.perf.soa import SoAWalkEngine, soa_walk_enabled

            if soa_walk_enabled():
                # The SoA walk core: bit-identical frontiers, benefits, and
                # RNG stream to the object path below (see repro.perf.soa).
                engine = SoAWalkEngine(
                    compute,
                    self.hw,
                    multi_objective=cfg.multi_objective,
                    num_levels=self.hw.num_cache_levels,
                )
        graph = (
            None
            if engine is not None
            else ConstructionGraph(
                self.hw,
                multi_objective=cfg.multi_objective,
                batch_scoring=cfg.batch_scoring,
            )
        )
        if n_walkers == 1:
            candidates, total_iterations = self._run_walker(
                graph, compute, forbid, tracer, cancel, walker=0,
                engine=engine, resume_from=resume_from,
                checkpointer=checkpointer, epilogues=epilogues,
            )
        else:
            candidates, total_iterations = self._run_walkers(
                graph, compute, forbid, tracer, cancel, n_walkers,
                engine=engine, epilogues=epilogues,
            )
        states_visited = (
            engine.num_nodes if engine is not None else graph.num_nodes
        )

        # Algorithm 1 receives dim_configs as input: canonical dimension
        # configurations seed the pool alongside the walked states, so the
        # refinement stage always starts from at least one sane anchor.
        for seed_state in self.seed_states(compute, epilogues=epilogues):
            candidates.setdefault(seed_state.key(), seed_state)
        shortlist = self._rank(candidates.values())[: cfg.top_k]
        if cfg.polish_steps > 0:
            polished = {s.key(): s for s in shortlist}
            for s in shortlist:
                p = self.polish(
                    s, cfg.polish_steps, forbid, tracer=tracer, cancel=cancel
                )
                polished[p.key()] = p
            shortlist = self._rank(polished.values())[: cfg.top_k]
        best, best_metrics = self._measure_shortlist(shortlist, measurer)
        wall = time.perf_counter() - t_start
        if tracer.enabled:
            tracer.emit(
                "compile",
                {
                    "compute": compute.name,
                    "iterations": total_iterations,
                    "states_visited": states_visited,
                    "shortlist": len(shortlist),
                    "best_latency_s": best_metrics.latency_s,
                    "chains": cfg.num_chains,
                },
                dur=wall,
            )
        return GensorResult(
            best=best,
            best_metrics=best_metrics,
            top_results=shortlist,
            iterations=total_iterations,
            states_visited=states_visited,
            compile_wall_s=wall,
            simulated_measure_s=measurer.simulated_seconds - measured_before,
        )

    def compile_graph(
        self,
        model_graph,
        fusion: bool = True,
        measurer: Measurer | None = None,
        tracer: Tracer | None = None,
    ):
        """Compile a whole :class:`~repro.models.graph.ModelGraph` as one
        program and return a
        :class:`~repro.models.program.CompiledProgram`.

        The graph is greedily partitioned into fusion groups (anchor +
        elementwise epilogue chain); each group compiles through
        :meth:`compile` with its epilogue pool, so the walk decides
        fusion.  ``fusion=False`` compiles every op as its own group —
        byte-identical RNG streams to per-op compilation.
        """
        from repro.models.program import compile_program

        return compile_program(
            self, model_graph, fusion=fusion, measurer=measurer, tracer=tracer
        )

    # -- the annealed walk -------------------------------------------------------

    def _run_walker(
        self,
        graph: ConstructionGraph | None,
        compute: ComputeDef,
        forbid: frozenset[str],
        tracer: Tracer,
        cancel: CancelToken | None,
        walker: int,
        engine=None,
        resume_from=None,
        checkpointer=None,
        epilogues: "tuple[ComputeDef, ...]" = (),
    ) -> tuple[dict[tuple, ETIR], int]:
        """Run one walker's ``num_chains`` annealed chains; return its
        candidate pool (insertion-ordered) and iteration count.

        Walker 0 derives each chain's generator exactly as the historical
        single-walker path did (``spawn_rng(seed, "gensor", name, chain)``),
        so ``walkers=1`` is byte-identical to the pre-walker RNG stream.
        Walkers ``w > 0`` draw their chains from ``SeedSequence.spawn``
        substreams of a walker-labeled seed — independent of walker 0 and
        of each other by construction.

        When ``engine`` (a :class:`repro.perf.soa.SoAWalkEngine`) is given
        the chain body runs on the structure-of-arrays core instead of the
        object graph; the RNG draws, trace events, and candidate pool are
        bit-identical between the two paths.

        ``resume_from`` (walker 0 only) rebuilds the mid-walk view its
        checkpoint froze — the candidate pool in insertion order (ranking
        tie-breaks depend on it), the node bookkeeping (membership drives
        future ``num_nodes`` increments), the completed-chain iteration
        total — then skips the completed chains and continues the
        interrupted one from its snapshotted state, temperature, and
        exact RNG bit state.  Later chains spawn their generators
        normally, so they consume the streams the uninterrupted walk
        would have.
        """
        cfg = self.config
        substreams = (
            spawn_substreams(
                cfg.seed, "gensor", compute.name, "walker", walker,
                n=cfg.num_chains,
            )
            if walker > 0
            else None
        )
        candidates: dict[tuple, ETIR] = {}
        total_iterations = 0
        start_chain = 0
        if resume_from is not None and walker == 0:
            from repro.resilience.checkpoint import config_to_state

            start_chain = resume_from.chain
            total_iterations = resume_from.total_steps - resume_from.iteration
            for state_cfg in resume_from.candidates:
                state = config_to_state(
                    compute, state_cfg, resume_from.num_levels
                )
                candidates[state.key()] = state
            if engine is not None:
                engine.restore_nodes(
                    resume_from.node_keys, resume_from.nodes_seen
                )
            else:
                assert graph is not None
                graph.restore_nodes(
                    resume_from.node_keys, resume_from.nodes_seen, compute
                )
            if checkpointer is not None:
                checkpointer.start_from(resume_from)
        for chain in range(start_chain, cfg.num_chains):
            resuming = (
                resume_from is not None
                and walker == 0
                and chain == resume_from.chain
            )
            if resuming:
                rng = restore_rng(resume_from.rng_state)
            elif substreams is None:
                rng = spawn_rng(cfg.seed, "gensor", compute.name, chain)
            else:
                rng = substreams[chain]
            tid = walker * cfg.num_chains + chain
            if engine is not None:
                resume = None
                if resuming:
                    r_tiles, r_vthreads, r_level = resume_from.state
                    resume = (
                        np.array(r_tiles, dtype=np.int64),
                        np.array(r_vthreads, dtype=np.int64),
                        int(r_level),
                        resume_from.temperature,
                        resume_from.iteration,
                    )
                total_iterations += engine.run_chain(
                    cfg, rng, forbid, tracer, cancel, tid, candidates,
                    checkpointer=checkpointer, base_steps=total_iterations,
                    resume=resume,
                )
                continue
            assert graph is not None
            policy = TransitionPolicy(graph, rng)
            if resuming:
                r_tiles, r_vthreads, r_level = resume_from.state
                state = ETIR.from_arrays(
                    compute,
                    np.array(r_tiles, dtype=np.int64),
                    np.array(r_vthreads, dtype=np.int64),
                    int(r_level),
                    resume_from.num_levels,
                )
                temperature = resume_from.temperature
                iteration = resume_from.iteration
            else:
                state = ETIR.initial(
                    compute,
                    num_levels=self.hw.num_cache_levels,
                    epilogues=epilogues,
                )
                temperature = cfg.initial_temperature
                iteration = 0
            base_steps = total_iterations
            while (
                temperature > cfg.threshold
                and iteration < cfg.max_iterations_per_chain
            ):
                if cancel is not None:
                    cancel.check()
                progress = math.log2(cfg.initial_temperature / temperature)
                if tracer.enabled:
                    # Mirror TransitionPolicy.select call-for-call so the
                    # RNG stream (and thus the walk) is trace-invariant.
                    edges, probs = policy.probabilities(state, progress, forbid)
                    edge = None
                    if edges:
                        idx = int(rng.choice(len(edges), p=probs))
                        edge = edges[idx]
                else:
                    edge = policy.select(state, progress, forbid)
                if edge is None:
                    break
                src_level = state.cur_level
                state = edge.dst
                appended = rng.random() < append_probability(temperature)
                if appended:
                    candidates[state.key()] = state
                if tracer.enabled:
                    tracer.emit(
                        "walk_step",
                        {
                            "compute": compute.name,
                            "chain": tid,
                            "iteration": iteration,
                            "temperature": temperature,
                            "level": src_level,
                            "actions": [
                                {
                                    "kind": e.action.kind,
                                    "axis": e.action.axis_idx,
                                    "benefit": e.benefit,
                                    "prob": float(p),
                                }
                                for e, p in zip(edges, probs)
                            ],
                            "chosen": idx,
                            "appended": appended,
                        },
                        tid=tid,
                    )
                temperature *= cfg.cooling
                iteration += 1
                if checkpointer is not None:
                    checkpointer.on_step(
                        cancel,
                        lambda: self._walk_checkpoint(
                            compute, cfg, chain, iteration,
                            base_steps + iteration, temperature, state, rng,
                            candidates, graph,
                        ),
                    )
            candidates[state.key()] = state
            total_iterations += iteration
            if tracer.enabled:
                tracer.emit(
                    "chain_end",
                    {
                        "compute": compute.name,
                        "chain": tid,
                        "iterations": iteration,
                        "final_level": state.cur_level,
                        "final_temperature": temperature,
                    },
                    tid=tid,
                )
        return candidates, total_iterations

    def _walk_checkpoint(
        self,
        compute: ComputeDef,
        cfg: GensorConfig,
        chain: int,
        iteration: int,
        total_steps: int,
        temperature: float,
        state: ETIR,
        rng: np.random.Generator,
        candidates: dict[tuple, ETIR],
        graph: ConstructionGraph,
    ):
        """Assemble an object-path walk checkpoint (cadence-gated; the
        builder only runs on steps that actually snapshot)."""
        from repro.resilience.checkpoint import build_walk_checkpoint

        node_keys, nodes_seen = graph.export_nodes()
        return build_walk_checkpoint(
            compute,
            cfg,
            num_levels=self.hw.num_cache_levels,
            chain=chain,
            iteration=iteration,
            total_steps=total_steps,
            temperature=temperature,
            state_config=(
                state.config.tiles, state.config.vthreads, state.cur_level
            ),
            rng=rng,
            candidate_configs=[
                (s.config.tiles, s.config.vthreads, s.cur_level)
                for s in candidates.values()
            ],
            node_keys=node_keys,
            nodes_seen=nodes_seen,
        )

    def _run_walkers(
        self,
        graph: ConstructionGraph | None,
        compute: ComputeDef,
        forbid: frozenset[str],
        tracer: Tracer,
        cancel: CancelToken | None,
        n_walkers: int,
        engine=None,
        epilogues: "tuple[ComputeDef, ...]" = (),
    ) -> tuple[dict[tuple, ETIR], int]:
        """Run ``n_walkers`` independent walkers concurrently and merge.

        Each walker owns its RNG substreams and candidate dict; they share
        the construction graph and the metrics memo (both value-identical
        under recomputation, so races only affect cache hit rates).  The
        merge happens in walker order, so the pooled candidate ordering —
        and therefore ranking tie-breaks — is deterministic regardless of
        thread scheduling.
        """
        from repro.serve.pool import WorkerPool

        results: list[tuple[dict[tuple, ETIR], int] | None] = [None] * n_walkers
        errors: list[BaseException] = []

        def make_task(w: int):
            def task() -> None:
                try:
                    results[w] = self._run_walker(
                        graph, compute, forbid, tracer, cancel, walker=w,
                        engine=engine, epilogues=epilogues,
                    )
                except BaseException as exc:  # repro: ignore[broad-except] - transported, re-raised on the caller thread
                    errors.append(exc)

            return task

        pool = WorkerPool(
            workers=n_walkers, capacity=n_walkers, name="gensor-walker"
        )
        try:
            for w in range(n_walkers):
                pool.submit_nowait(make_task(w))
        finally:
            pool.shutdown(wait=True)
        if errors:
            raise errors[0]
        candidates: dict[tuple, ETIR] = {}
        total_iterations = 0
        for res in results:
            assert res is not None
            walker_candidates, iterations = res
            for key, state in walker_candidates.items():
                candidates.setdefault(key, state)
            total_iterations += iterations
        return candidates, total_iterations

    # -- warm-start hooks (public: used by DynamicGensor and repro.serve) --------

    def polish(
        self,
        state: ETIR,
        max_steps: int,
        forbid: frozenset[str] = frozenset(),
        tracer: Tracer | None = None,
        cancel: CancelToken | None = None,
        resume_from=None,
    ) -> ETIR:
        """Deterministic greedy refinement under the analytical value.

        Implements the optimal policy of the paper's value iteration: from
        ``state``, repeatedly move to the neighbor (tile change at any
        level, vThread change) with the lowest analytical latency, until a
        local optimum.  Purely analytical — no measurements.

        Public API: warm-started and degraded serving paths refine adapted
        cache entries with a reduced step budget instead of a full walk.

        ``resume_from`` continues an interrupted polish from a
        polish-phase checkpoint
        (:meth:`~repro.resilience.checkpoint.WalkCheckpoint.for_polish`):
        greedy refinement is memoryless, so restarting from the
        checkpointed state with the remaining budget yields the exact
        state the uninterrupted polish would have reached.
        """
        tracer = tracer if tracer is not None else self.tracer
        if resume_from is not None:
            from repro.resilience.checkpoint import config_to_state

            resume_from.require_polish(state.compute)
            state = config_to_state(
                state.compute, resume_from.state, resume_from.num_levels
            )
            max_steps = max(0, max_steps - resume_from.iteration)
        if self.config.batch_scoring and not state.epilogue_pool:
            from repro.perf.soa import SoAWalkEngine, soa_walk_enabled

            if soa_walk_enabled():
                engine = SoAWalkEngine(
                    state.compute,
                    self.hw,
                    multi_objective=self.config.multi_objective,
                )
                return engine.polish(
                    state, max_steps, forbid, tracer=tracer, cancel=cancel
                )
        t0 = time.perf_counter() if tracer.enabled else 0.0
        current = state
        # Program groups refine under the program objective (kernel latency
        # plus the standalone cost of unfused epilogues); single-op states
        # keep the bare latency, bit-identical to the historical path.
        program = bool(state.epilogue_pool)
        start_lat = current_lat = self._model_latency(current)
        if program:
            current_lat += pending_penalty_s(current, self.hw)
            start_lat = current_lat
        vthread_allowed = ActionKind.VTHREAD_UP not in forbid
        steps = 0
        batch = self.config.batch_scoring
        for _ in range(max_steps):
            if cancel is not None:
                cancel.check()
            if batch:
                # One vectorized sweep prices the whole neighborhood;
                # argmin's first-occurrence rule matches the scalar loop's
                # "first strict improvement over all previous" bookkeeping.
                neighbors = list(
                    self._all_level_neighbors(current, vthread_allowed)
                )
                if not neighbors:
                    break
                lats = self._model_latency_batch(neighbors)
                if program:
                    lats = lats + np.array(
                        [pending_penalty_s(n, self.hw) for n in neighbors],
                        dtype=np.float64,
                    )
                j = int(np.argmin(lats))
                if not lats[j] < current_lat:
                    break
                best_next, best_lat = neighbors[j], float(lats[j])
            else:
                best_next = None
                best_lat = current_lat
                for nxt in self._all_level_neighbors(current, vthread_allowed):
                    lat = self._model_latency(nxt)
                    if program:
                        lat += pending_penalty_s(nxt, self.hw)
                    if lat < best_lat:
                        best_next, best_lat = nxt, lat
                if best_next is None:
                    break
            current, current_lat = best_next, best_lat
            steps += 1
        if tracer.enabled:
            tracer.emit(
                "polish",
                {
                    "compute": state.compute.name,
                    "steps": steps,
                    "max_steps": max_steps,
                    "latency_before_s": start_lat,
                    "latency_after_s": current_lat,
                },
                dur=time.perf_counter() - t0,
            )
        return current

    def seed_states(
        self,
        compute: ComputeDef,
        epilogues: "tuple[ComputeDef, ...]" = (),
    ) -> list[ETIR]:
        """Canonical dim_configs: square-ish thread tiles with block tiles a
        power-of-two multiple, reduce axes staged in warp-wide chunks.

        Public API: the cheapest serving tier picks the best seed when a
        deadline leaves no room for construction or refinement.

        With an epilogue pool, every canonical tiling is seeded twice —
        fully unfused and fully fused — so program ranking always compares
        both fusion extremes even if the walk undersamples one.
        """
        spatial = [ax for ax in compute.axes if not ax.is_reduce]
        reduce_axes = [ax for ax in compute.axes if ax.is_reduce]
        epilogues = tuple(epilogues)
        seeds: list[ETIR] = []
        for t_sp in (8, 4, 2, 1):
            for blk_mult in (16, 8, 4):
                thread: dict[str, int] = {}
                block: dict[str, int] = {}
                for ax in spatial:
                    thread[ax.name] = min(t_sp, ax.extent)
                    block[ax.name] = min(ax.extent, thread[ax.name] * blk_mult)
                for ax in reduce_axes:
                    thread[ax.name] = min(2, ax.extent)
                    block[ax.name] = min(32, ax.extent)
                try:
                    state = ETIR.from_tiles(compute, block, thread)
                except ValueError:
                    continue
                if epilogues:
                    state = ETIR(
                        compute,
                        state.config,
                        state.cur_level,
                        state.num_levels,
                        epilogue_pool=epilogues,
                    )
                if state.memory_ok(self.hw):
                    seeds.append(state)
                if epilogues:
                    fused = state
                    while fused.fused < len(epilogues):
                        nxt = fused.with_fuse()
                        if nxt is None:  # pragma: no cover - loop-bounded
                            break
                        fused = nxt
                    if fused.memory_ok(self.hw):
                        seeds.append(fused)
        return seeds

    # -- internals ---------------------------------------------------------------

    def _all_level_neighbors(self, state: ETIR, vthread_allowed: bool):
        """Neighbors of ``state`` across every tiling level (refinement moves)."""
        for idx, ax in enumerate(state.compute.axes):
            for level in range(1, state.num_levels + 1):
                for up in (True, False):
                    nxt = state.scaled_tile_at(idx, level, up)
                    if nxt is not None:
                        yield nxt
            if vthread_allowed and not ax.is_reduce:
                v = state.vthreads(idx)
                for nv in (v * 2, v // 2, 1):
                    if nv >= 1 and nv != v:
                        nxt = state.with_vthread(idx, nv)
                        if nxt is not None:
                            yield nxt
        if state.epilogue_pool:
            for nxt in (state.with_fuse(), state.with_unfuse()):
                if nxt is not None:
                    yield nxt

    def _rank(self, states) -> list[ETIR]:
        """Order candidates by the internal analytical model (best first).

        One batched evaluation prices the feasible pool; the insertion
        index stays the tie-break, as in the scalar path.
        """
        feasible = [
            (i, s) for i, s in enumerate(states) if s.memory_ok(self.hw)
        ]
        if self.config.batch_scoring:
            lats = self._model_latency_batch([s for _i, s in feasible])
            scored = [
                (float(lat), i, s) for (i, s), lat in zip(feasible, lats)
            ]
        else:
            scored = [(self._model_latency(s), i, s) for i, s in feasible]
        # Program groups rank on program cost: unfused epilogues cost their
        # own kernels.  Single-op pools (no epilogue pool) are untouched.
        scored = [
            (
                lat + pending_penalty_s(s, self.hw) if s.epilogue_pool else lat,
                i,
                s,
            )
            for lat, i, s in scored
        ]
        scored.sort(key=lambda item: (item[0], item[1]))
        return [s for _lat, _i, s in scored if math.isfinite(_lat)]

    def _measure_shortlist(
        self, shortlist: list[ETIR], measurer: Measurer
    ) -> tuple[ETIR, KernelMetrics]:
        if not shortlist:
            raise RuntimeError("Gensor produced no feasible candidate states")
        best: ETIR | None = None
        best_metrics: KernelMetrics | None = None
        best_obj = math.inf
        for state in shortlist:
            metrics = measurer.measure(state)
            obj = metrics.latency_s
            if state.epilogue_pool:
                obj += pending_penalty_s(state, self.hw)
            if best_metrics is None or obj < best_obj:
                best, best_metrics, best_obj = state, metrics, obj
        assert best is not None and best_metrics is not None
        return best, best_metrics
