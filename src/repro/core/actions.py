"""Construction-graph edges: scheduling actions and their benefits.

Three action families (paper §IV-A/B) connect ETIR states:

* **tiling / inverse tiling** — double or halve one axis's tile at the
  current memory level.  Benefit (Formula 1) is the memory-traffic
  reduction over the footprint growth: ``Q(T)F(T') / (Q(T')F(T))``.
  Inverse tiling is what makes same-level states mutually reachable — the
  irreducibility Gensor's convergence argument needs, and the backtracking
  a tree cannot do.
* **caching** — advance scheduling to the next (faster) memory level.
  Benefit (Formula 2) is the access-time ratio
  ``(L_low + S/B_low) / (L_high + S/B_high)``.
* **setting virtual threads** — double/halve one spatial axis's vThread
  count.  Benefit (Formula 3) is the bank-conflict-group ratio
  ``ceil(x/W) / ceil(x/(V*W))``.

Any action whose destination violates the hardware memory check gets
probability 0 (paper §IV-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.memory import bank_conflict_factor
from repro.hardware.spec import HardwareSpec, MemoryLevel
from repro.ir.access import tile_footprint_bytes, tile_traffic_bytes
from repro.ir.etir import ETIR

__all__ = [
    "ActionKind",
    "Action",
    "enumerate_actions",
    "action_benefit",
    "action_benefits",
]


class ActionKind:
    """Closed set of action tags."""

    TILE_UP = "tile_up"
    TILE_DOWN = "tile_down"  # the paper's invTiling
    CACHE = "cache"
    VTHREAD_UP = "vthread_up"
    VTHREAD_DOWN = "vthread_down"
    FUSE = "fuse"
    UNFUSE = "unfuse"

    ALL = (TILE_UP, TILE_DOWN, CACHE, VTHREAD_UP, VTHREAD_DOWN, FUSE, UNFUSE)


#: kinds whose benefit is used bare, without the roofline acceleration
#: term: level changes don't move the roofline, and fusion toggles are
#: priced at program level (the per-kernel roofline would punish a fused
#: kernel for doing the epilogue's work).
_NO_ACCEL = (ActionKind.CACHE, ActionKind.FUSE, ActionKind.UNFUSE)


@dataclass(frozen=True)
class Action:
    """One edge type: an action kind plus the axis it applies to.

    ``axis_idx`` is ``-1`` for axis-free actions (caching).
    """

    kind: str
    axis_idx: int = -1

    def apply(self, state: ETIR) -> ETIR | None:
        """Apply to ``state``; ``None`` when the move is structurally illegal."""
        if self.kind == ActionKind.TILE_UP:
            return state.scaled_tile(self.axis_idx, up=True)
        if self.kind == ActionKind.TILE_DOWN:
            return state.scaled_tile(self.axis_idx, up=False)
        if self.kind == ActionKind.CACHE:
            return state.with_cache_advance()
        if self.kind == ActionKind.VTHREAD_UP:
            return state.with_vthread(
                self.axis_idx, state.vthreads(self.axis_idx) * 2
            )
        if self.kind == ActionKind.VTHREAD_DOWN:
            v = state.vthreads(self.axis_idx)
            if v <= 1:
                return None
            return state.with_vthread(self.axis_idx, v // 2)
        if self.kind == ActionKind.FUSE:
            return state.with_fuse()
        if self.kind == ActionKind.UNFUSE:
            return state.with_unfuse()
        raise ValueError(f"unknown action kind {self.kind!r}")

    def describe(self, state: ETIR) -> str:
        if self.kind == ActionKind.CACHE:
            return f"cache(level {state.cur_level} -> {state.cur_level - 1})"
        if self.kind == ActionKind.FUSE:
            pending = state.pending_epilogues
            return f"fuse({pending[0].name})" if pending else "fuse()"
        if self.kind == ActionKind.UNFUSE:
            fused = state.epilogues
            return f"unfuse({fused[-1].name})" if fused else "unfuse()"
        ax = state.compute.axes[self.axis_idx]
        return f"{self.kind}({ax.name})"


def enumerate_actions(state: ETIR) -> list[Action]:
    """All action templates available from ``state`` (before legality)."""
    actions: list[Action] = []
    for idx, ax in enumerate(state.compute.axes):
        actions.append(Action(ActionKind.TILE_UP, idx))
        actions.append(Action(ActionKind.TILE_DOWN, idx))
        if not ax.is_reduce and state.cur_level == 1:
            actions.append(Action(ActionKind.VTHREAD_UP, idx))
            actions.append(Action(ActionKind.VTHREAD_DOWN, idx))
    if state.cur_level > 1:
        actions.append(Action(ActionKind.CACHE))
    # Guarded on the pool so single-op walks enumerate exactly the
    # historical action list (RNG-stream parity).
    if state.epilogue_pool:
        if state.fused < len(state.epilogue_pool):
            actions.append(Action(ActionKind.FUSE))
        if state.fused > 0:
            actions.append(Action(ActionKind.UNFUSE))
    return actions


def action_benefit(
    action: Action,
    state: ETIR,
    next_state: ETIR,
    hw: HardwareSpec,
    multi_objective: bool = True,
) -> float:
    """The paper's analytical benefit of taking ``action`` from ``state``.

    Returns 0.0 when ``next_state`` fails the hardware memory check (the
    relaxed traversal-time variant — the block shape is only committed once
    the walk reaches the innermost level; final candidates are re-checked
    strictly before measurement).

    Per the paper (§III), transition probabilities are "determined by the
    normalized performance improvement of the tensor program resulting from
    the scheduling action" *and* guided by the hardware architecture.  The
    benefit is therefore the product of the action family's closed-form
    ratio (Formulas 1–3) and the analytically predicted acceleration of the
    whole program under Gensor's internal roofline — both computed without
    any profiling.

    ``multi_objective=False`` drops the roofline term, leaving the bare
    closed-form ratios — the single-objective guidance ablation.
    """
    if not next_state.memory_ok(hw, strict=False):
        return 0.0
    if action.kind in (ActionKind.TILE_UP, ActionKind.TILE_DOWN):
        formula = _tiling_benefit(state, next_state)
    elif action.kind == ActionKind.CACHE:
        formula = _caching_benefit(state, hw)
    elif action.kind in (ActionKind.VTHREAD_UP, ActionKind.VTHREAD_DOWN):
        formula = _vthread_benefit(action, state, next_state, hw)
    elif action.kind in (ActionKind.FUSE, ActionKind.UNFUSE):
        formula = _fusion_benefit(state, next_state, hw)
    else:
        raise ValueError(f"unknown action kind {action.kind!r}")
    if action.kind in _NO_ACCEL or not multi_objective:
        # Level changes re-anchor which tiles the walk tunes; the roofline
        # is unchanged by them, so only the formula (with its annealing
        # schedule, applied by the policy) decides the transition.  Fusion
        # toggles carry their own program-level ratio.
        return formula
    return formula * _predicted_acceleration(state, next_state, hw)


def action_benefits(
    candidates: "list[tuple[Action, ETIR]]",
    state: ETIR,
    hw: HardwareSpec,
    multi_objective: bool = True,
    quick_cache: "dict | None" = None,
) -> list[float]:
    """Batched :func:`action_benefit` over one state's candidate frontier.

    Value-identical to calling the scalar function per edge, but the
    roofline term is priced efficiently: ``quick_latency(state)`` is
    computed once per frontier (the scalar path recomputes it for every
    edge) and the destinations' latencies go through
    :func:`~repro.core.score.quick_latency_batch` in a single vectorized
    pass.  ``quick_cache`` (keyed by the ``ETIR`` itself — equal states
    share an entry via the cached hash) lets callers reuse latencies
    across frontiers — destinations become sources one step later —
    without changing any value.
    """
    from repro.core.score import quick_latency, quick_latency_batch

    benefits = [0.0] * len(candidates)
    needs_accel: list[int] = []
    # The source-state terms of Formula 1 are shared by every tiling
    # candidate in the frontier; compute them lazily once.
    src_qf: "tuple[int, int] | None" = None
    for i, (action, next_state) in enumerate(candidates):
        if not next_state.memory_ok(hw, strict=False):
            continue
        if action.kind in (ActionKind.TILE_UP, ActionKind.TILE_DOWN):
            if src_qf is None:
                t_old = state.tile_sizes(state.cur_level)
                src_qf = (
                    tile_traffic_bytes(state.compute, t_old),
                    tile_footprint_bytes(state.compute, t_old),
                )
            formula = _tiling_benefit_from(src_qf, state, next_state)
        elif action.kind == ActionKind.CACHE:
            formula = _caching_benefit(state, hw)
        elif action.kind in (ActionKind.VTHREAD_UP, ActionKind.VTHREAD_DOWN):
            formula = _vthread_benefit(action, state, next_state, hw)
        elif action.kind in (ActionKind.FUSE, ActionKind.UNFUSE):
            formula = _fusion_benefit(state, next_state, hw)
        else:
            raise ValueError(f"unknown action kind {action.kind!r}")
        benefits[i] = formula
        if action.kind not in _NO_ACCEL and multi_objective:
            needs_accel.append(i)
    if not needs_accel:
        return benefits

    before = None if quick_cache is None else quick_cache.get(state)
    if before is None:
        before = quick_latency(state, hw, strict=False)
        if quick_cache is not None:
            quick_cache[state] = before

    afters: list[float | None] = [None] * len(needs_accel)
    missing: list[int] = []
    if quick_cache is not None:
        for j, i in enumerate(needs_accel):
            afters[j] = quick_cache.get(candidates[i][1])
            if afters[j] is None:
                missing.append(j)
    else:
        missing = list(range(len(needs_accel)))
    if missing:
        batch = [candidates[needs_accel[j]][1] for j in missing]
        lats = quick_latency_batch(batch, hw, strict=False)
        for j, lat in zip(missing, lats):
            afters[j] = float(lat)
            if quick_cache is not None:
                quick_cache[candidates[needs_accel[j]][1]] = float(lat)

    for j, i in enumerate(needs_accel):
        after = afters[j]
        if not math.isfinite(after) or after <= 0:
            accel = 0.0
        elif not math.isfinite(before):
            accel = 4.0
        else:
            accel = min(16.0, before / after)
        benefits[i] = benefits[i] * accel
    return benefits


def _fused_epilogue_s(ep, hw: HardwareSpec) -> float:
    """Marginal cost an epilogue adds once fused into the anchor kernel:
    its extra inputs stream from DRAM and its FLOPs run, but the
    intermediate never round-trips and no launch is paid."""
    extra = sum(inp.tensor.nbytes for inp in ep.inputs[1:])
    return extra / hw.dram.bandwidth_bytes_per_s + ep.total_flops / hw.peak_flops


def _group_time_s(state: ETIR, hw: HardwareSpec) -> float:
    """Closed-form program time of the whole fusion group at ``state``:
    the anchor kernel plus fused epilogues in-kernel plus pending
    epilogues as standalone kernels."""
    from repro.core.score import epilogue_standalone_s

    compute = state.compute
    t = (
        hw.kernel_launch_overhead_s
        + compute.total_io_bytes() / hw.dram.bandwidth_bytes_per_s
        + compute.total_flops / hw.peak_flops
    )
    for ep in state.epilogues:
        t += _fused_epilogue_s(ep, hw)
    for ep in state.pending_epilogues:
        t += epilogue_standalone_s(ep, hw)
    return t


def _fusion_benefit(state: ETIR, next_state: ETIR, hw: HardwareSpec) -> float:
    """Program-time ratio of a fuse/unfuse toggle.

    Fusing an epilogue trades its standalone kernel (launch + full IO
    round-trip) for in-kernel marginal cost (extra inputs + FLOPs), so
    fuse benefits exceed 1 exactly when fusion saves program time; unfuse
    is the inverse ratio — below 1 but positive, preserving the walk's
    reversibility.
    """
    t_src = _group_time_s(state, hw)
    t_dst = _group_time_s(next_state, hw)
    if t_dst <= 0:
        return 0.0
    return t_src / t_dst


def _predicted_acceleration(state: ETIR, next_state: ETIR, hw: HardwareSpec) -> float:
    """Acceleration ratio under the internal analytical roofline."""
    from repro.core.score import quick_latency

    before = quick_latency(state, hw, strict=False)
    after = quick_latency(next_state, hw, strict=False)
    if not math.isfinite(after) or after <= 0:
        return 0.0
    if not math.isfinite(before):
        return 4.0  # escaping an infeasible state is always attractive
    return min(16.0, before / after)


def _tiling_benefit_from(
    src_qf: "tuple[int, int]", state: ETIR, next_state: ETIR
) -> float:
    """Formula 1 with the source state's ``(Q, F)`` precomputed.

    Exact integer products and one final float division — element-wise
    identical to :func:`_tiling_benefit`.
    """
    q_old, f_old = src_qf
    level = state.cur_level
    compute = state.compute
    t_new = next_state.tile_sizes(level)
    q_new = tile_traffic_bytes(compute, t_new)
    f_new = tile_footprint_bytes(compute, t_new)
    if q_new == 0 or f_old == 0:
        return 0.0
    return (q_old * f_new) / (q_new * f_old)


def _tiling_benefit(state: ETIR, next_state: ETIR) -> float:
    """Formula 1: traffic reduction over footprint growth at the current level."""
    level = state.cur_level
    compute = state.compute
    t_old = state.tile_sizes(level)
    t_new = next_state.tile_sizes(level)
    q_old = tile_traffic_bytes(compute, t_old)
    q_new = tile_traffic_bytes(compute, t_new)
    f_old = tile_footprint_bytes(compute, t_old)
    f_new = tile_footprint_bytes(compute, t_new)
    if q_new == 0 or f_old == 0:
        return 0.0
    return (q_old * f_new) / (q_new * f_old)


def _level_pair(state: ETIR, hw: HardwareSpec) -> tuple[MemoryLevel, MemoryLevel]:
    """(slow, fast) memory levels bridged by a cache action at this state.

    At the outer scheduling level (L) the cache action moves staging from
    DRAM into shared memory; at level L-1 from shared memory into
    registers.
    """
    if state.cur_level >= state.num_levels:
        return hw.dram, hw.smem
    return hw.smem, hw.regs


def _caching_benefit(state: ETIR, hw: HardwareSpec) -> float:
    """Formula 2: access-time ratio between the bridged memory levels."""
    low, high = _level_pair(state, hw)
    s_data = float(
        tile_footprint_bytes(
            state.compute, state.tile_sizes(state.cur_level), include_output=False
        )
    )
    t_low = low.latency_s + s_data / low.bandwidth_bytes_per_s
    t_high = high.latency_s + s_data / high.bandwidth_bytes_per_s
    if t_high <= 0:
        return 0.0
    return t_low / t_high


def _vthread_benefit(
    action: Action, state: ETIR, next_state: ETIR, hw: HardwareSpec
) -> float:
    """Formula 3: conflict-group count ratio before/after the vThread change.

    ``x`` is the width of the tile row processed in parallel (the thread
    tile of the targeted axis scaled by the threads sweeping it), ``W`` the
    bank width, ``V`` the vThread count.

    Bank conflicts arise from the memory-contiguous (innermost spatial)
    axis; vThreads on outer axes neither create nor remove conflict groups,
    so their benefit is neutral (1.0).
    """
    spatial = [i for i, ax in enumerate(state.compute.axes) if not ax.is_reduce]
    if not spatial or action.axis_idx != spatial[-1]:
        return 1.0
    idx = action.axis_idx
    x = state.tile(idx, 1) * max(
        1,
        state.tile(idx, state.num_levels) // max(1, state.tile(idx, 1)),
    )
    x = max(1, min(x, state.compute.axes[idx].extent))
    w = hw.bank_width_elems
    v_old = state.vthreads(idx)
    v_new = next_state.vthreads(idx)
    groups_old = bank_conflict_factor(x, w, v_old)
    groups_new = bank_conflict_factor(x, w, v_new)
    if groups_new <= 0:
        return 0.0
    return groups_old / groups_new
