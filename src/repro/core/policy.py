"""Transition policy: Algorithm 2 (roulette selection over normalized
benefits) plus the annealing terms of Algorithm 1.

The policy turns per-edge analytical benefits into a probability
distribution, applies the paper's annealing multiplier to the cache action
(so the walk converges toward faster memory levels as the temperature
drops), and samples one edge by roulette.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.actions import ActionKind
from repro.core.graph import ConstructionGraph, Edge
from repro.ir.etir import ETIR

__all__ = ["cache_anneal_factor", "append_probability", "TransitionPolicy"]


def cache_anneal_factor(t: float) -> float:
    """The paper's cache-probability multiplier ``3 / (1 + e^{-(ln5/10)(t-10)})``.

    Rises from ~0.5 at t=0 through 1.5 at t=10 toward 3.0, steadily biasing
    the walk toward advancing to the next memory level so it terminates.

    ``t`` is measured in *temperature halvings* ``log2(T0 / T)`` — the
    paper's iteration count under its literal "T halves every step"
    schedule — so slower cooling rates stretch the annealing trajectory
    proportionally instead of rushing the level change.
    """
    return 3.0 / (1.0 + math.exp(-(math.log(5.0) / 10.0) * (t - 10.0)))


def append_probability(temperature: float) -> float:
    """Probability of appending the new state to ``top_results``.

    The paper's ``1 - 1/(1 + e^{-0.5(-log T - 10)})``: near 1 at high
    temperature (explore widely, record everything) and decaying as the
    walk converges, keeping the result pool diverse without unbounded
    growth.
    """
    if temperature <= 0:
        return 0.0
    z = -0.5 * (-math.log(temperature) - 10.0)
    # 1 - 1/(1 + e^{z}) = sigmoid(z): ~1 at high T, decaying as T -> 0.
    return 1.0 - 1.0 / (1.0 + math.exp(min(z, 700.0)))


class TransitionPolicy:
    """Samples scheduling actions per Algorithm 2 (``getProgPolicy``)."""

    def __init__(self, graph: ConstructionGraph, rng: np.random.Generator) -> None:
        self.graph = graph
        self.rng = rng

    def probabilities(
        self,
        state: ETIR,
        anneal_progress: float,
        forbid: frozenset[str] = frozenset(),
    ) -> tuple[list[Edge], np.ndarray]:
        """Legal edges of ``state`` and their normalized probabilities.

        Each edge's weight is its analytical benefit; cache edges are
        additionally scaled by :func:`cache_anneal_factor`.  Weights are
        normalized to sum to 1 (the paper's probability list).  ``forbid``
        removes whole action families — the ablation study (Table VI) uses
        it to disable vThreads.
        """
        edges = self.graph.expand(state)
        if forbid:
            edges = [e for e in edges if e.action.kind not in forbid]
        if not edges:
            return [], np.zeros(0)
        weights = np.empty(len(edges))
        anneal = cache_anneal_factor(anneal_progress)
        for i, edge in enumerate(edges):
            if edge.action.kind == ActionKind.CACHE:
                # Formula 2's raw value is a latency *ratio* (tens), a
                # different dimensional character from the tiling/vThread
                # acceleration ratios (~0.4–3).  Mapping it onto a log scale
                # before mixing keeps the annealing factor — not the raw
                # magnitude — in control of when the walk changes memory
                # level, which is the role the paper assigns to it.
                w = anneal * (1.0 + math.log2(max(1.0, edge.benefit))) / 10.0
            else:
                w = edge.benefit
            weights[i] = max(0.0, w)
        total = weights.sum()
        if total <= 0:
            return edges, np.full(len(edges), 1.0 / len(edges))
        return edges, weights / total

    def select(
        self,
        state: ETIR,
        anneal_progress: float,
        forbid: frozenset[str] = frozenset(),
    ) -> Edge | None:
        """Roulette-select one outgoing edge; ``None`` at a sink state."""
        edges, probs = self.probabilities(state, anneal_progress, forbid)
        if not edges:
            return None
        idx = int(self.rng.choice(len(edges), p=probs))
        return edges[idx]
