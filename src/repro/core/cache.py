"""Persistent schedule cache.

Production tensor compilers keep a tuning database (TVM's tophub, Ansor's
log files) so a shape is only ever optimized once per device.  The cache
stores winning ETIR configurations keyed by (device, operator-shape
fingerprint) and can persist itself as JSON.  It also powers
:mod:`repro.core.dynamic`: for an unseen shape it returns the *nearest*
cached entry of the same operator family, which seeds warm-started
re-optimization.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR

__all__ = [
    "CachedSchedule",
    "ScheduleCache",
    "shape_fingerprint",
    "family_fingerprint",
]


def shape_fingerprint(compute: ComputeDef) -> str:
    """Canonical key for an operator's *shape* (name-independent)."""
    axes = ",".join(f"{ax.name}:{ax.extent}:{ax.kind[0]}" for ax in compute.axes)
    return f"{compute.kind}[{axes}]"


def family_fingerprint(compute: ComputeDef) -> str:
    """Canonical key for an operator *family* (kind + axis set, any extents).

    Two shapes share a family exactly when :meth:`ScheduleCache.nearest`
    could warm-start one from the other — the granularity at which the
    serving layer guards against cold-start stampedes.
    """
    axes = ",".join(f"{ax.name}:{ax.kind[0]}" for ax in compute.axes)
    return f"{compute.kind}[{axes}]"


@dataclass
class CachedSchedule:
    """A winning configuration, stored shape-independently by axis name."""

    kind: str
    extents: dict[str, int]
    block_tiles: dict[str, int]
    thread_tiles: dict[str, int]
    vthreads: dict[str, int]
    latency_s: float

    @classmethod
    def from_state(cls, state: ETIR, latency_s: float) -> "CachedSchedule":
        compute = state.compute
        return cls(
            kind=compute.kind,
            extents={ax.name: ax.extent for ax in compute.axes},
            block_tiles=state.block_tiles(),
            thread_tiles=state.thread_tiles(),
            vthreads={
                ax.name: state.vthreads(i)
                for i, ax in enumerate(compute.axes)
                if not ax.is_reduce
            },
            latency_s=latency_s,
        )

    def instantiate(self, compute: ComputeDef) -> ETIR | None:
        """Adapt this entry to ``compute`` (tiles clip to the new extents).

        Returns ``None`` when the operator has different axes entirely.
        """
        names = {ax.name for ax in compute.axes}
        if set(self.block_tiles) - names:
            return None
        try:
            return ETIR.from_tiles(
                compute, self.block_tiles, self.thread_tiles, self.vthreads
            )
        except ValueError:
            return None

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "extents": self.extents,
            "block_tiles": self.block_tiles,
            "thread_tiles": self.thread_tiles,
            "vthreads": self.vthreads,
            "latency_s": self.latency_s,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CachedSchedule":
        return cls(
            kind=data["kind"],
            extents={k: int(v) for k, v in data["extents"].items()},
            block_tiles={k: int(v) for k, v in data["block_tiles"].items()},
            thread_tiles={k: int(v) for k, v in data["thread_tiles"].items()},
            vthreads={k: int(v) for k, v in data["vthreads"].items()},
            latency_s=float(data["latency_s"]),
        )


class ScheduleCache:
    """Per-device map from shape fingerprint to winning schedule.

    Thread-safe: the serving layer (:mod:`repro.serve`) reads and writes
    one shared cache from many worker threads, so every entry operation
    holds an internal lock.
    """

    def __init__(self, hardware: HardwareSpec) -> None:
        self.hw = hardware
        self._entries: dict[str, CachedSchedule] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def put(self, state: ETIR, latency_s: float) -> None:
        """Record a winner; keeps the faster entry on fingerprint collision."""
        key = shape_fingerprint(state.compute)
        entry = CachedSchedule.from_state(state, latency_s)
        with self._lock:
            existing = self._entries.get(key)
            if existing is None or latency_s < existing.latency_s:
                self._entries[key] = entry

    def get(self, compute: ComputeDef) -> CachedSchedule | None:
        """Exact-shape hit."""
        with self._lock:
            return self._entries.get(shape_fingerprint(compute))

    def nearest(self, compute: ComputeDef) -> CachedSchedule | None:
        """Closest cached entry of the same kind and axis set.

        Distance is the sum of absolute log2 extent ratios — the natural
        metric on a power-of-two tile lattice.
        """
        target = {ax.name: ax.extent for ax in compute.axes}
        best: CachedSchedule | None = None
        best_dist = math.inf
        for entry in self.entries():
            if entry.kind != compute.kind or set(entry.extents) != set(target):
                continue
            dist = sum(
                abs(math.log2(entry.extents[name] / target[name]))
                for name in target
            )
            if dist < best_dist:
                best, best_dist = entry, dist
        return best

    def entries(self) -> Iterable[CachedSchedule]:
        with self._lock:
            return list(self._entries.values())

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist atomically: a crash mid-save never corrupts the file.

        The payload is written to a temporary sibling and moved into place
        with :func:`os.replace`, so readers only ever observe either the old
        or the new complete database.
        """
        path = Path(path)
        with self._lock:
            payload = {
                "device": self.hw.name,
                "entries": {
                    key: entry.to_json() for key, entry in self._entries.items()
                },
            }
        tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
        try:
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: str | Path, hardware: HardwareSpec) -> "ScheduleCache":
        """Load a persisted cache, validating it was tuned for ``hardware``.

        Raises :class:`ValueError` on corrupt or ill-formed files instead of
        leaking ``JSONDecodeError``/``KeyError`` — the serving layer treats
        that as "start with an empty tuning database", not a crash.
        """
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt schedule cache {path}: {exc}") from exc
        if not isinstance(payload, dict) or not isinstance(
            payload.get("entries"), dict
        ):
            raise ValueError(
                f"ill-formed schedule cache {path}: expected an object with "
                "an 'entries' mapping"
            )
        if payload.get("device") != hardware.name:
            raise ValueError(
                f"cache was tuned for {payload.get('device')!r}, "
                f"not {hardware.name!r}"
            )
        cache = cls(hardware)
        for key, data in payload["entries"].items():
            try:
                cache._entries[key] = CachedSchedule.from_json(data)
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                raise ValueError(
                    f"ill-formed schedule cache entry {key!r} in {path}: {exc}"
                ) from exc
        return cache
