"""Persistent schedule cache.

Production tensor compilers keep a tuning database (TVM's tophub, Ansor's
log files) so a shape is only ever optimized once per device.  The cache
stores winning ETIR configurations keyed by (device, operator-shape
fingerprint) and can persist itself as JSON.  It also powers
:mod:`repro.core.dynamic`: for an unseen shape it returns the *nearest*
cached entry of the same operator family, which seeds warm-started
re-optimization.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import math
import os
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

try:  # POSIX advisory file locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "CachedSchedule",
    "ScheduleCache",
    "entry_checksum",
    "shape_fingerprint",
    "family_fingerprint",
]


def shape_fingerprint(compute: ComputeDef) -> str:
    """Canonical key for an operator's *shape* (name-independent)."""
    axes = ",".join(f"{ax.name}:{ax.extent}:{ax.kind[0]}" for ax in compute.axes)
    return f"{compute.kind}[{axes}]"


def family_fingerprint(compute: ComputeDef) -> str:
    """Canonical key for an operator *family* (kind + axis set, any extents).

    Two shapes share a family exactly when :meth:`ScheduleCache.nearest`
    could warm-start one from the other — the granularity at which the
    serving layer guards against cold-start stampedes.
    """
    axes = ",".join(f"{ax.name}:{ax.kind[0]}" for ax in compute.axes)
    return f"{compute.kind}[{axes}]"


@dataclass
class CachedSchedule:
    """A winning configuration, stored shape-independently by axis name."""

    kind: str
    extents: dict[str, int]
    block_tiles: dict[str, int]
    thread_tiles: dict[str, int]
    vthreads: dict[str, int]
    latency_s: float

    @classmethod
    def from_state(cls, state: ETIR, latency_s: float) -> "CachedSchedule":
        compute = state.compute
        return cls(
            kind=compute.kind,
            extents={ax.name: ax.extent for ax in compute.axes},
            block_tiles=state.block_tiles(),
            thread_tiles=state.thread_tiles(),
            vthreads={
                ax.name: state.vthreads(i)
                for i, ax in enumerate(compute.axes)
                if not ax.is_reduce
            },
            latency_s=latency_s,
        )

    def instantiate(self, compute: ComputeDef) -> ETIR | None:
        """Adapt this entry to ``compute`` (tiles clip to the new extents).

        Returns ``None`` when the operator has different axes entirely.
        """
        names = {ax.name for ax in compute.axes}
        if set(self.block_tiles) - names:
            return None
        try:
            return ETIR.from_tiles(
                compute, self.block_tiles, self.thread_tiles, self.vthreads
            )
        except ValueError:
            return None

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "extents": self.extents,
            "block_tiles": self.block_tiles,
            "thread_tiles": self.thread_tiles,
            "vthreads": self.vthreads,
            "latency_s": self.latency_s,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CachedSchedule":
        return cls(
            kind=data["kind"],
            extents={k: int(v) for k, v in data["extents"].items()},
            block_tiles={k: int(v) for k, v in data["block_tiles"].items()},
            thread_tiles={k: int(v) for k, v in data["thread_tiles"].items()},
            vthreads={k: int(v) for k, v in data["vthreads"].items()},
            latency_s=float(data["latency_s"]),
        )


class ScheduleCache:
    """Per-device map from shape fingerprint to winning schedule.

    Thread-safe: the serving layer (:mod:`repro.serve`) reads and writes
    one shared cache from many worker threads, so every entry operation
    holds an internal lock.
    """

    def __init__(self, hardware: HardwareSpec) -> None:
        self.hw = hardware
        self._entries: dict[str, CachedSchedule] = {}
        self._lock = threading.RLock()
        #: reasons for every record quarantined by the last :meth:`load`.
        self.quarantined: list[str] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def put(self, state: ETIR, latency_s: float) -> None:
        """Record a winner; keeps the faster entry on fingerprint collision."""
        key = shape_fingerprint(state.compute)
        entry = CachedSchedule.from_state(state, latency_s)
        with self._lock:
            existing = self._entries.get(key)
            if existing is None or latency_s < existing.latency_s:
                self._entries[key] = entry

    def get(self, compute: ComputeDef) -> CachedSchedule | None:
        """Exact-shape hit."""
        with self._lock:
            return self._entries.get(shape_fingerprint(compute))

    def nearest(self, compute: ComputeDef) -> CachedSchedule | None:
        """Closest cached entry of the same kind and axis set.

        Distance is the sum of absolute log2 extent ratios — the natural
        metric on a power-of-two tile lattice.
        """
        target = {ax.name: ax.extent for ax in compute.axes}
        best: CachedSchedule | None = None
        best_dist = math.inf
        for entry in self.entries():
            if entry.kind != compute.kind or set(entry.extents) != set(target):
                continue
            dist = sum(
                abs(math.log2(entry.extents[name] / target[name]))
                for name in target
            )
            if dist < best_dist:
                best, best_dist = entry, dist
        return best

    def entries(self) -> Iterable[CachedSchedule]:
        with self._lock:
            return list(self._entries.values())

    # -- chaos hook --------------------------------------------------------------

    def corrupt(self, compute_or_key: ComputeDef | str) -> bool:
        """Mangle one entry in place (fault injection's ``corrupt-cache``).

        The corrupted record keeps the shape key but carries axis names
        matching no operator and an infinite latency, so readers see
        ``instantiate() -> None`` (and fall through to a recompile, whose
        winner then overwrites this record via :meth:`put`).  Returns
        whether an entry existed to corrupt.
        """
        key = (
            compute_or_key
            if isinstance(compute_or_key, str)
            else shape_fingerprint(compute_or_key)
        )
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            self._entries[key] = CachedSchedule(
                kind=entry.kind,
                extents={"__corrupt__": 1},
                block_tiles={"__corrupt__": 1},
                thread_tiles={"__corrupt__": 1},
                vthreads={},
                latency_s=math.inf,
            )
            return True

    # -- cross-process merge ----------------------------------------------------

    def merge_entries(self, entries: Mapping[str, "CachedSchedule"]) -> int:
        """Union ``entries`` into memory; the faster latency wins per key.

        Returns how many keys were added or improved.  This is the in-memory
        half of cross-process replication: a sibling's published winners
        only ever add to or improve the local view, never regress it.
        """
        updated = 0
        with self._lock:
            for key, entry in entries.items():
                existing = self._entries.get(key)
                if existing is None or entry.latency_s < existing.latency_s:
                    self._entries[key] = entry
                    updated += 1
        return updated

    def snapshot_entries(self) -> dict[str, "CachedSchedule"]:
        """Point-in-time copy of the key -> entry map (for merge/transport)."""
        with self._lock:
            return dict(self._entries)

    def refresh(self, path: str | Path) -> int:
        """Pull: merge the on-disk database into memory (returns updates).

        A missing or unreadable file merges nothing — replication must
        never crash a serving shard because a sibling wrote garbage.
        """
        path = Path(path)
        with _file_lock(path):
            disk = _read_entries(path, self.hw.name)
        return self.merge_entries(disk)

    def sync(self, path: str | Path) -> int:
        """Push+pull: union memory with the on-disk database, write both.

        Under one advisory file lock, the current file is read, its entries
        are merged into memory (faster latency wins), and the merged view
        is written back crash-safely.  Concurrent syncers from different
        processes serialize on the lock, so no process's published entries
        are ever lost to a last-writer-wins race.  Returns the number of
        entries pulled in from disk.
        """
        path = Path(path)
        with _file_lock(path):
            pulled = self.merge_entries(_read_entries(path, self.hw.name))
            self._write_locked(path)
        return pulled

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path, *, merge: bool = True) -> None:
        """Persist crash-safely: journal write, fsync, then atomic rename.

        The checksummed payload is written to a journal sibling, flushed
        to disk, and moved into place with :func:`os.replace`, so readers
        only ever observe either the old or the new complete database —
        a crash mid-save never corrupts the live file.

        Saves from different processes additionally serialize on an
        advisory lock file (``<name>.lock``, :mod:`fcntl`) and, with
        ``merge=True`` (the default), union the in-memory entries with
        whatever is already on disk — keeping the faster entry per key —
        instead of last-writer-wins.  Two processes saving concurrently
        therefore never interleave their :func:`os.replace` calls and
        never drop each other's entries.  ``merge=False`` restores plain
        overwrite semantics (still locked) for tools that intend to
        truncate the database.
        """
        path = Path(path)
        with _file_lock(path):
            if merge:
                self.merge_entries(_read_entries(path, self.hw.name))
            self._write_locked(path)

    def _write_locked(self, path: Path) -> None:
        """Journal+fsync+rename of the current entries (lock already held)."""
        with self._lock:
            payload = {
                "device": self.hw.name,
                "entries": {
                    key: {**entry.to_json(), "crc": entry_checksum(entry.to_json())}
                    for key, entry in self._entries.items()
                },
            }
        journal = path.parent / f".{path.name}.journal.{os.getpid()}"
        try:
            with open(journal, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(payload, indent=2, sort_keys=True))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(journal, path)
        finally:
            journal.unlink(missing_ok=True)

    @classmethod
    def load(
        cls,
        path: str | Path,
        hardware: HardwareSpec,
        *,
        strict: bool = False,
        registry: MetricsRegistry | None = None,
    ) -> "ScheduleCache":
        """Load a persisted cache, quarantining whatever is corrupt.

        A truncated file, a flipped bit in one record (checksum mismatch),
        or a missing field never crashes the serving layer and never
        poisons the healthy entries: bad records are moved to a
        ``.quarantine/`` directory next to the cache file (with the reason
        attached), the rest load normally, and every quarantined record
        increments ``cache_quarantined_total``.  ``strict=True`` restores
        the all-or-nothing behavior (raise :class:`ValueError` on the
        first corruption) for tools that prefer loud failure.  A device
        mismatch always raises — that is a configuration error, not
        corruption.
        """
        path = Path(path)
        registry = registry if registry is not None else get_registry()
        cache = cls(hardware)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            if strict:
                raise ValueError(f"corrupt schedule cache {path}: {exc}") from exc
            cache._quarantine_file(path, f"corrupt JSON: {exc}", registry)
            return cache
        if not isinstance(payload, dict) or not isinstance(
            payload.get("entries"), dict
        ):
            reason = "expected an object with an 'entries' mapping"
            if strict:
                raise ValueError(f"ill-formed schedule cache {path}: {reason}")
            cache._quarantine_file(path, reason, registry)
            return cache
        if payload.get("device") != hardware.name:
            raise ValueError(
                f"cache was tuned for {payload.get('device')!r}, "
                f"not {hardware.name!r}"
            )
        for key, data in payload["entries"].items():
            try:
                if isinstance(data, dict) and "crc" in data:
                    body = {k: v for k, v in data.items() if k != "crc"}
                    if entry_checksum(body) != data["crc"]:
                        raise ValueError(
                            f"checksum mismatch (stored {data['crc']}, "
                            f"computed {entry_checksum(body)})"
                        )
                    data = body
                cache._entries[key] = CachedSchedule.from_json(data)
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                if strict:
                    raise ValueError(
                        f"ill-formed schedule cache entry {key!r} in {path}: "
                        f"{exc}"
                    ) from exc
                cache._quarantine_entry(path, key, data, str(exc), registry)
        return cache

    def _quarantine_file(
        self, path: Path, reason: str, registry: MetricsRegistry
    ) -> None:
        """Move an unreadable cache file aside and start empty."""
        qdir = path.parent / ".quarantine"
        qdir.mkdir(exist_ok=True)
        # Unique target per incident (same probe discipline as
        # _quarantine_entry): a cache corrupted twice leaves two records.
        target = qdir / path.name
        n = 0
        while target.exists():
            n += 1
            target = qdir / f"{path.name}.{n}"
        try:
            os.replace(path, target)
        except OSError:  # cross-device or permission trouble: leave in place
            pass
        self.quarantined.append(f"{path.name}: {reason}")
        registry.counter("cache_quarantined_total").inc()

    def _quarantine_entry(
        self,
        path: Path,
        key: str,
        data: object,
        reason: str,
        registry: MetricsRegistry,
    ) -> None:
        """Park one bad record in ``.quarantine/`` and keep loading."""
        qdir = path.parent / ".quarantine"
        qdir.mkdir(exist_ok=True)
        digest = hashlib.sha256(key.encode()).hexdigest()[:8]
        record = {"cache": path.name, "key": key, "reason": reason, "entry": data}
        # Unique target per incident: the same key corrupted twice must
        # leave two records behind, not overwrite the first (forensics).
        target = qdir / f"{path.name}.{digest}.json"
        n = 0
        while target.exists():
            n += 1
            target = qdir / f"{path.name}.{digest}.{n}.json"
        try:
            target.write_text(json.dumps(record, indent=2, default=str))
        except OSError:
            pass
        self.quarantined.append(f"{key}: {reason}")
        registry.counter("cache_quarantined_total").inc()


def entry_checksum(entry_json: dict) -> int:
    """CRC-32 of an entry's canonical JSON (flipped-bit detection)."""
    canonical = json.dumps(entry_json, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode())


@contextlib.contextmanager
def _file_lock(path: Path):
    """Advisory cross-process lock guarding ``path``'s save/merge cycle.

    Locks a ``<name>.lock`` sibling rather than the database itself so the
    lock survives :func:`os.replace` of the data file.  The OS releases the
    lock when the holder dies, so a crashed process never wedges its
    siblings.  On platforms without :mod:`fcntl` the lock degrades to a
    no-op (single-process semantics, which the journal+rename still keeps
    crash-safe).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = path.parent / f"{path.name}.lock"
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "a+", encoding="utf-8") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def _read_entries(path: Path, device: str) -> dict[str, CachedSchedule]:
    """Checksummed entries of an on-disk database, skipping whatever is bad.

    The lenient read used by merge paths: a missing/corrupt file yields an
    empty mapping and individual bad records are skipped (the next real
    :meth:`ScheduleCache.load` quarantines them).  A device mismatch raises
    — merging databases tuned for different hardware is a configuration
    error, not corruption.
    """
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(payload, dict) or not isinstance(
        payload.get("entries"), dict
    ):
        return {}
    if payload.get("device") != device:
        raise ValueError(
            f"cache {path} was tuned for {payload.get('device')!r}, "
            f"not {device!r}"
        )
    out: dict[str, CachedSchedule] = {}
    for key, data in payload["entries"].items():
        try:
            if isinstance(data, dict) and "crc" in data:
                body = {k: v for k, v in data.items() if k != "crc"}
                if entry_checksum(body) != data["crc"]:
                    continue
                data = body
            out[key] = CachedSchedule.from_json(data)
        except (KeyError, TypeError, ValueError, AttributeError):
            continue
    return out
