"""Lowering: Schedule → imperative loop nest (Kernel).

The lowering walks the schedule's axis list outer→inner, opening one
:class:`~repro.ir.loopnest.Loop` per axis, and splices in the staged-memory
structure:

* shared-memory ``cache_read`` stages lower to an ``Alloc`` (at kernel
  scope) plus a cooperative ``LoadStage`` + ``Sync`` at their anchor axis,
* the ``cache_write`` stage lowers to a register accumulator ``Alloc`` and
  a ``StoreStmt`` after the anchor axis closes,
* the innermost body is the rendered contraction statement.
"""

from __future__ import annotations

import math

from repro.ir.access import access_footprint_elems
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.ir.loopnest import (
    Alloc,
    ComputeStmt,
    Kernel,
    LoadStage,
    Loop,
    StoreStmt,
    Sync,
)
from repro.ir.schedule import Schedule

__all__ = ["lower_schedule", "lower_etir"]


def lower_schedule(sched: Schedule, block_tiles: dict[str, int] | None = None) -> Kernel:
    """Lower a primitive-based schedule into a Kernel loop nest.

    ``block_tiles`` (axis-name → block tile size) sizes the staged slabs;
    when omitted, slabs are sized from the full tensor extents.
    """
    compute = sched.compute
    block_tiles = block_tiles or {ax.name: ax.extent for ax in compute.axes}
    kernel = Kernel(
        name=compute.name,
        grid_dim=sched.grid_dim(),
        block_dim=sched.block_dim(),
    )

    # Kernel-scope allocations for every cache stage.
    shared_stage_at: dict[str, list[str]] = {}
    accum_alloc: Alloc | None = None
    write_anchor: str | None = None
    for stage in sched.cache_stages:
        if stage.tensor == compute.output.name:
            out_elems = _thread_out_elems(sched)
            accum_alloc = Alloc(f"{stage.tensor}_local", "local", out_elems)
            write_anchor = stage.at_axis
            continue
        elems = _stage_elems(compute, stage.tensor, block_tiles)
        kernel.body.append(Alloc(f"{stage.tensor}_shared", "shared", elems))
        shared_stage_at.setdefault(stage.at_axis, []).append(stage.tensor)
    if accum_alloc is not None:
        kernel.body.append(accum_alloc)

    body_stmt = ComputeStmt(_body_text(compute))
    cursor = kernel.body
    innermost: list | None = None
    for ax in sched.axes:
        loop = Loop(ax.name, ax.extent, ax.kind)
        # Staged loads land at the top of their anchor loop's body.
        for tensor in shared_stage_at.get(ax.name, ()):  # preserve order
            elems = _stage_elems(compute, tensor, block_tiles)
            loop.body.append(
                LoadStage(
                    tensor,
                    f"{tensor}_shared",
                    elems,
                    "shared",
                    base_expr=_slab_base_expr(compute, tensor, block_tiles),
                )
            )
        if shared_stage_at.get(ax.name):
            loop.body.append(Sync())
        cursor.append(loop)
        cursor = loop.body
        innermost = cursor
    if innermost is None:
        kernel.body.append(body_stmt)
    else:
        innermost.append(body_stmt)
    if accum_alloc is not None:
        kernel.body.append(
            StoreStmt(compute.output.name, accum_alloc.buffer, accum_alloc.num_elems)
        )
    return kernel


def lower_etir(state: ETIR) -> Kernel:
    """Convenience: derive the canonical schedule from an ETIR and lower it."""
    sched = Schedule.from_etir(state)
    return lower_schedule(sched, state.block_tiles())


def _stage_elems(
    compute: ComputeDef, tensor: str, block_tiles: dict[str, int]
) -> int:
    for acc in compute.inputs:
        if acc.tensor.name == tensor:
            return access_footprint_elems(acc, block_tiles)
    raise KeyError(f"{tensor!r} is not an input of {compute.name!r}")


def _slab_base_expr(
    compute: ComputeDef, tensor: str, block_tiles: dict[str, int]
) -> str:
    """The slab's base offset into ``tensor`` as linearized C arithmetic.

    Each affine index contributes ``coef * axis.o * tile`` per referenced
    axis (``axis.o`` is the axis's outer/block loop variable), scaled by
    the tensor dimension's row-major stride.
    """
    acc = next(a for a in compute.inputs if a.tensor.name == tensor)
    shape = acc.tensor.shape
    strides = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    terms: list[str] = []
    for expr, stride in zip(acc.indices, strides):
        for var, coef in expr.terms.items():
            tile = block_tiles.get(var, 1)
            factor = coef * tile * stride
            if factor == 0:
                continue
            term = f"{var}_o" if factor == 1 else f"{factor}*{var}_o"
            terms.append(term)
        if expr.const:
            terms.append(str(expr.const * stride))
    return " + ".join(terms) if terms else "0"


def _thread_out_elems(sched: Schedule) -> int:
    """Per-thread accumulator size: product of unrolled spatial extents."""
    elems = 1
    for ax in sched.axes:
        if not ax.is_reduce and ax.kind == "unroll":
            elems *= ax.extent
    return max(1, elems)


def _body_text(compute: ComputeDef) -> str:
    reads = " * ".join(acc.render() for acc in compute.inputs) or "1.0f"
    target = f"{compute.output.name}_local" if compute.reduce_axes else compute.output.name
    op = "+=" if compute.reduce_axes else "="
    return f"{target}[...] {op} {reads};"
