"""Code generation: scheduled ETIR → loop nest → CUDA-like kernel source.

The paper uses TVM for code generation; this package reproduces the stage:
:mod:`repro.codegen.lower` turns a primitive-based
:class:`~repro.ir.schedule.Schedule` into the imperative loop-nest IR, and
:mod:`repro.codegen.cuda` renders that nest as CUDA-flavored kernel source
with launch configuration.  The emitted source is not compiled (there is no
GPU here); it exists so the full compile pipeline is exercised and
inspectable, and tests assert that schedules lower to structurally correct
kernels (binding, staging, synchronization, accumulation).
"""

from repro.codegen.lower import lower_schedule, lower_etir
from repro.codegen.cuda import emit_cuda

__all__ = ["lower_schedule", "lower_etir", "emit_cuda"]
