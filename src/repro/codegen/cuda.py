"""CUDA-flavored source emission from the lowered loop nest.

Renders a kernel that mirrors what TVM would emit for the same schedule:
``__global__`` signature over the operator's tensors, ``__shared__`` /
register allocations, grid-stride structure implied by the bound loops, an
``#pragma unroll`` per unrolled loop, and ``__syncthreads()`` barriers
around staged loads.  The source is for inspection and testing (there is no
device to compile it on), so index arithmetic inside staged copies is
summarized rather than fully scalarized.
"""

from __future__ import annotations

from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.ir.loopnest import (
    Alloc,
    ComputeStmt,
    Kernel,
    LoadStage,
    Loop,
    LoopKind,
    StoreStmt,
    Sync,
)

__all__ = ["emit_cuda"]

_CTYPE = {"float32": "float", "float16": "half", "int32": "int", "int8": "char"}


def emit_cuda(kernel: Kernel, compute: ComputeDef) -> str:
    """Render the lowered kernel as CUDA-like source text."""
    params = _params(compute)
    lines: list[str] = []
    lines.append(
        f"// launch: <<<dim3({kernel.grid_dim}), dim3({kernel.block_dim})>>>"
    )
    lines.append(f'extern "C" __global__ void {kernel.name}_kernel({params}) {{')
    _emit_stmts(kernel.body, lines, depth=1)
    lines.append("}")
    return "\n".join(lines)


def _params(compute: ComputeDef) -> str:
    seen: list[str] = []
    parts: list[str] = []
    for acc in compute.inputs:
        t = acc.tensor
        if t.name in seen:
            continue
        seen.append(t.name)
        parts.append(f"const {_CTYPE[t.dtype]}* __restrict__ {t.name}")
    out = compute.output
    parts.append(f"{_CTYPE[out.dtype]}* __restrict__ {out.name}")
    return ", ".join(parts)


def _emit_stmts(stmts: list, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    for stmt in stmts:
        if isinstance(stmt, Alloc):
            qual = "__shared__ " if stmt.scope == "shared" else ""
            lines.append(
                f"{pad}{qual}{_CTYPE[stmt.dtype]} {stmt.buffer}[{stmt.num_elems}];"
            )
        elif isinstance(stmt, Loop):
            _emit_loop(stmt, lines, depth)
        elif isinstance(stmt, LoadStage):
            lines.append(
                f"{pad}// cooperative copy: {stmt.num_elems} elems of "
                f"{stmt.src_tensor} -> {stmt.dst_buffer} ({stmt.scope})"
            )
            lines.append(
                f"{pad}for (int v = threadIdx.x; v < {stmt.num_elems}; "
                f"v += blockDim.x) {stmt.dst_buffer}[v] = "
                f"{stmt.src_tensor}[({stmt.base_expr}) + v];"
            )
        elif isinstance(stmt, Sync):
            lines.append(f"{pad}__syncthreads();")
        elif isinstance(stmt, ComputeStmt):
            lines.append(f"{pad}{stmt.text}")
        elif isinstance(stmt, StoreStmt):
            lines.append(
                f"{pad}for (int v = 0; v < {stmt.num_elems}; ++v) "
                f"{stmt.dst_tensor}[/* tile base + v */ v] = {stmt.src_buffer}[v];"
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot emit {stmt!r}")


def _emit_loop(loop: Loop, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    if loop.kind == LoopKind.BLOCK:
        lines.append(
            f"{pad}int {_cvar(loop.var)} = blockIdx.x % {loop.extent};  // bound"
        )
        _emit_stmts(loop.body, lines, depth)
        return
    if loop.kind == LoopKind.THREAD:
        lines.append(
            f"{pad}int {_cvar(loop.var)} = threadIdx.x % {loop.extent};  // bound"
        )
        _emit_stmts(loop.body, lines, depth)
        return
    if loop.kind == LoopKind.VTHREAD:
        lines.append(
            f"{pad}#pragma unroll  // virtual thread ({loop.extent} lanes)"
        )
    elif loop.kind == LoopKind.UNROLL:
        lines.append(f"{pad}#pragma unroll")
    elif loop.kind == LoopKind.VECTORIZE:
        lines.append(f"{pad}// vectorized (float4)")
    lines.append(
        f"{pad}for (int {_cvar(loop.var)} = 0; {_cvar(loop.var)} < {loop.extent}; "
        f"++{_cvar(loop.var)}) {{"
    )
    _emit_stmts(loop.body, lines, depth + 1)
    lines.append(f"{pad}}}")


def _cvar(name: str) -> str:
    return name.replace(".", "_")
