"""ResNet-34 / ResNet-50 operator graphs (He et al., CVPR'16).

Convolutions take pre-padded inputs (see :mod:`repro.ir.operators`), so a
3x3/pad-1 layer over an HxW feature map is expressed on an (H+2)x(W+2)
input.  Each residual block contributes its convolutions, the elementwise
add, and the ReLU; the classifier is an average-pool plus a GEMM.
"""

from __future__ import annotations

from repro.ir import operators as ops
from repro.models.graph import ModelGraph

__all__ = ["resnet34", "resnet50"]


def _stem(g: ModelGraph, batch: int) -> tuple[int, int]:
    """7x7/2 stem conv + 3x3/2 max-pool (pool cost modeled as avg-pool)."""
    g.add(
        ops.conv2d(batch, 3, 230, 230, 64, 7, 7, 2, name=f"{g.name}_stem"),
    )
    g.add(ops.elementwise((batch, 64, 112, 112), "relu", f"{g.name}_stem_relu"))
    g.add(ops.avgpool2d(batch, 64, 114, 114, 3, 2, f"{g.name}_stem_pool"))
    return 64, 56


def resnet34(batch: int = 128) -> ModelGraph:
    """ResNet-34: basic blocks, stages (64,3),(128,4),(256,6),(512,3)."""
    g = ModelGraph("resnet34", batch)
    channels, size = _stem(g, batch)
    stages = [(64, 3), (128, 4), (256, 6), (512, 3)]
    for stage_idx, (width, blocks) in enumerate(stages):
        for block in range(blocks):
            stride = 2 if (stage_idx > 0 and block == 0) else 1
            in_ch = channels
            out_size = size // stride
            g.add(
                ops.conv2d(
                    batch, in_ch, size + 2, size + 2, width, 3, 3, stride,
                    name=f"{g.name}_s{stage_idx}b{block}_conv1",
                )
            )
            g.add(
                ops.conv2d(
                    batch, width, out_size + 2, out_size + 2, width, 3, 3, 1,
                    name=f"{g.name}_s{stage_idx}b{block}_conv2",
                )
            )
            if stride != 1 or in_ch != width:
                g.add(
                    ops.conv2d(
                        batch, in_ch, size, size, width, 1, 1, stride,
                        name=f"{g.name}_s{stage_idx}b{block}_down",
                    )
                )
            g.add(ops.add((batch, width, out_size, out_size), f"{g.name}_s{stage_idx}_add"))
            g.add(
                ops.elementwise(
                    (batch, width, out_size, out_size), "relu", f"{g.name}_s{stage_idx}_relu"
                ),
                count=2,
            )
            channels, size = width, out_size
    _head(g, batch, channels, size)
    return g


def resnet50(batch: int = 128) -> ModelGraph:
    """ResNet-50: bottleneck blocks, stages (64,3),(128,4),(256,6),(512,3)x4."""
    g = ModelGraph("resnet50", batch)
    channels, size = _stem(g, batch)
    stages = [(64, 3), (128, 4), (256, 6), (512, 3)]
    for stage_idx, (mid, blocks) in enumerate(stages):
        out_ch = mid * 4
        for block in range(blocks):
            stride = 2 if (stage_idx > 0 and block == 0) else 1
            in_ch = channels
            out_size = size // stride
            g.add(
                ops.conv2d(
                    batch, in_ch, size, size, mid, 1, 1, 1,
                    name=f"{g.name}_s{stage_idx}b{block}_reduce",
                )
            )
            g.add(
                ops.conv2d(
                    batch, mid, size + 2, size + 2, mid, 3, 3, stride,
                    name=f"{g.name}_s{stage_idx}b{block}_conv3x3",
                )
            )
            g.add(
                ops.conv2d(
                    batch, mid, out_size, out_size, out_ch, 1, 1, 1,
                    name=f"{g.name}_s{stage_idx}b{block}_expand",
                )
            )
            if stride != 1 or in_ch != out_ch:
                g.add(
                    ops.conv2d(
                        batch, in_ch, size, size, out_ch, 1, 1, stride,
                        name=f"{g.name}_s{stage_idx}b{block}_down",
                    )
                )
            g.add(
                ops.add((batch, out_ch, out_size, out_size), f"{g.name}_s{stage_idx}_add")
            )
            g.add(
                ops.elementwise(
                    (batch, out_ch, out_size, out_size), "relu", f"{g.name}_s{stage_idx}_relu"
                ),
                count=3,
            )
            channels, size = out_ch, out_size
    _head(g, batch, channels, size)
    return g


def _head(g: ModelGraph, batch: int, channels: int, size: int) -> None:
    g.add(ops.avgpool2d(batch, channels, size, size, size, size, f"{g.name}_gap"))
    g.add(ops.matmul(batch, channels, 1000, f"{g.name}_fc"))
