"""BERT-small operator graph (Devlin et al., NAACL'19).

BERT-Small: 4 transformer layers, hidden 512, 8 attention heads,
intermediate 2048.  The graph parameterizes the sequence length — the
paper's dynamic-shape experiment (Fig. 11) runs the same network over a
set of sequence lengths.
"""

from __future__ import annotations

from repro.ir import operators as ops
from repro.models.graph import ModelGraph

__all__ = ["bert_small", "transformer_layer_ops"]


def transformer_layer_ops(
    g: ModelGraph,
    batch: int,
    seq: int,
    hidden: int,
    heads: int,
    intermediate: int,
    layers: int,
    tag: str,
) -> None:
    """Append ``layers`` identical transformer encoder layers to ``g``."""
    tokens = batch * seq
    head_dim = hidden // heads
    # QKV + output projections.
    g.add(ops.matmul(tokens, hidden, hidden, f"{tag}_proj"), count=4 * layers)
    # Attention scores and context.
    g.add(
        ops.batched_matmul(batch * heads, seq, head_dim, seq, f"{tag}_scores"),
        count=layers,
    )
    g.add(ops.softmax_proxy(batch * heads * seq, seq, f"{tag}_softmax"), count=layers)
    g.add(
        ops.batched_matmul(batch * heads, seq, seq, head_dim, f"{tag}_context"),
        count=layers,
    )
    # Feed-forward network.
    g.add(ops.matmul(tokens, hidden, intermediate, f"{tag}_ffn1"), count=layers)
    g.add(ops.elementwise((tokens, intermediate), "gelu", f"{tag}_gelu"), count=layers)
    g.add(ops.matmul(tokens, intermediate, hidden, f"{tag}_ffn2"), count=layers)
    # Norms and residuals.
    g.add(ops.layernorm_proxy(tokens, hidden, f"{tag}_ln"), count=2 * layers)
    g.add(ops.add((tokens, hidden), f"{tag}_residual"), count=2 * layers)


def bert_small(batch: int = 32, seq: int = 128) -> ModelGraph:
    """BERT-Small encoder stack (4 layers, hidden 512, 8 heads)."""
    g = ModelGraph(f"bert_small_s{seq}", batch)
    transformer_layer_ops(
        g,
        batch=batch,
        seq=seq,
        hidden=512,
        heads=8,
        intermediate=2048,
        layers=4,
        tag=g.name,
    )
    # Pooler.
    g.add(ops.matmul(batch, 512, 512, f"{g.name}_pooler"))
    return g
