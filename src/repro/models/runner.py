"""Model compilation and timing: the engine behind Figs. 9–12.

:func:`compile_and_time` compiles every unique operator of a model graph
with a given method and sums per-kernel latencies (weighted by execution
count) into one inference latency, alongside the method's total compile
cost.  :class:`DynamicScenario` drives the paper's dynamic-structure
experiment: repeated cycles of (infer N frames → mutate the model →
re-optimize), producing the timeline segments of Fig. 12.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.models.graph import ModelGraph
from repro.sim.measure import Measurer


class _SupportsCompile(Protocol):
    def compile(self, compute, measurer=None): ...  # pragma: no cover


__all__ = ["ModelRunResult", "compile_and_time", "DynamicScenario", "TimelineSegment"]


@dataclass
class ModelRunResult:
    """End-to-end outcome of compiling and running one model."""

    model: str
    method: str
    #: one full inference pass (sum of kernel latencies x counts).
    latency_s: float
    #: optimization cost: wall clock + simulated profiling, summed over ops.
    compile_seconds: float
    batch: int
    #: latency per unique op shape (program mode: per fusion group), keyed
    #: by ``ModelGraph.op_label`` — name alone collides when a model reuses
    #: one op name at several shapes (e.g. the two BERT attention matmuls).
    per_op_latency: dict[str, float] = field(default_factory=dict)
    #: whole-graph compilation result, when ``program=True`` produced one.
    program: object | None = None

    @property
    def throughput(self) -> float:
        """Inferences (frames/samples) per second."""
        return self.batch / self.latency_s if self.latency_s > 0 else 0.0


def compile_and_time(
    graph: ModelGraph,
    compiler: _SupportsCompile,
    method_name: str | None = None,
    measurer: Measurer | None = None,
    program: bool = False,
    fusion: bool = True,
) -> ModelRunResult:
    """Compile every unique op of ``graph`` and sum the inference latency.

    ``program=True`` routes through the compiler's ``compile_graph`` hook
    (whole-graph fusion-aware compilation): per-op entries then describe
    fusion groups, and the :class:`CompiledProgram` rides along on the
    result for callers that need kernel/fusion accounting.
    """
    name = method_name or getattr(compiler, "name", type(compiler).__name__.lower())
    if program:
        prog = compiler.compile_graph(graph, fusion=fusion, measurer=measurer)
        prog.method = name
        per_op: dict[str, float] = {}
        for g in prog.groups:
            label = g.anchor_label or g.anchor_name
            if g.epilogue_names:
                label = "+".join((label, *g.epilogue_names))
            per_op[label] = g.latency_s
        return ModelRunResult(
            model=graph.name,
            method=name,
            latency_s=prog.latency_s,
            compile_seconds=prog.compile_seconds,
            batch=graph.batch,
            per_op_latency=per_op,
            program=prog,
        )
    total = 0.0
    compile_cost = 0.0
    per_op = {}
    for inst in graph.ops:
        result = compiler.compile(inst.compute, measurer)
        lat = result.best_metrics.latency_s
        per_op[ModelGraph.op_label(inst.compute)] = lat
        total += lat * inst.count
        compile_cost += result.compile_wall_s + result.simulated_measure_s
    return ModelRunResult(
        model=graph.name,
        method=name,
        latency_s=total,
        compile_seconds=compile_cost,
        batch=graph.batch,
        per_op_latency=per_op,
    )


@dataclass
class TimelineSegment:
    """One phase of the dynamic-structure timeline (Fig. 12)."""

    method: str
    kind: str  # "optimize" | "inference"
    start_s: float
    duration_s: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class DynamicScenario:
    """Repeated (optimize → infer) cycles over a mutating model.

    Args:
        model_factory: maps a cycle index to that cycle's model graph (the
            experiment mutates channel counts between cycles).
        frames_per_stage: inference requests served per cycle.
        reoptimize: whether the method re-optimizes after each mutation
            (PyTorch eager does not — it just keeps dispatching).
    """

    def __init__(
        self,
        model_factory: Callable[[int], ModelGraph],
        cycles: int = 3,
        frames_per_stage: int = 2000,
    ) -> None:
        if cycles < 1:
            raise ValueError("cycles must be >= 1")
        self.model_factory = model_factory
        self.cycles = cycles
        self.frames_per_stage = frames_per_stage

    def run(
        self,
        compiler: _SupportsCompile,
        method_name: str | None = None,
        measurer: Measurer | None = None,
        reoptimize: bool = True,
        program: bool = False,
    ) -> list[TimelineSegment]:
        """Produce the method's timeline across all cycles.

        A non-reoptimizing method compiles exactly once, at cycle 0: later
        cycles keep dispatching its cycle-0 kernels (no recompilation, so
        no extra compile cost *and* no adaptation to the mutated model).
        That one-off compile still costs real time, so it appears as the
        timeline's initial optimize segment.
        """
        name = method_name or getattr(compiler, "name", type(compiler).__name__.lower())
        segments: list[TimelineSegment] = []
        clock = 0.0
        run: ModelRunResult | None = None
        for cycle in range(self.cycles):
            graph = self.model_factory(cycle)
            if reoptimize or run is None:
                run = compile_and_time(
                    graph, compiler, name, measurer, program=program
                )
                opt = run.compile_seconds
                if opt > 0:
                    segments.append(TimelineSegment(name, "optimize", clock, opt))
                    clock += opt
            batches = max(1, self.frames_per_stage // graph.batch)
            infer = run.latency_s * batches
            segments.append(TimelineSegment(name, "inference", clock, infer))
            clock += infer
        return segments

    @staticmethod
    def total_time(segments: list[TimelineSegment]) -> float:
        return segments[-1].end_s if segments else 0.0
