"""GPT-2 (small) operator graph (Radford et al., 2019).

GPT-2 small: 12 decoder layers, hidden 768, 12 heads, intermediate 3072.
The structural difference from the encoder (causal masking) does not change
the operator inventory, so the graph reuses the transformer layer builder.
"""

from __future__ import annotations

from repro.ir import operators as ops
from repro.models.bert import transformer_layer_ops
from repro.models.graph import ModelGraph

__all__ = ["gpt2"]


def gpt2(batch: int = 8, seq: int = 512) -> ModelGraph:
    """GPT-2 small decoder stack plus the tied LM head."""
    g = ModelGraph(f"gpt2_s{seq}", batch)
    transformer_layer_ops(
        g,
        batch=batch,
        seq=seq,
        hidden=768,
        heads=12,
        intermediate=3072,
        layers=12,
        tag=g.name,
    )
    # LM head over the (tied) embedding matrix — the unbalanced GEMM the
    # paper calls out as common in LLMs.
    g.add(ops.matmul(batch * seq, 768, 50257, f"{g.name}_lm_head"))
    return g
