"""Model graphs: ordered operator lists with occurrence counts.

A network typically repeats the same operator shape many times (every 3x3
conv of a ResNet stage, every attention head's matmul); the graph stores
one :class:`OpInstance` per *unique* shape with a count, so compilers tune
each shape once — exactly how a tensor compiler processes a model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.compute import ComputeDef

__all__ = ["OpInstance", "ModelGraph"]


@dataclass
class OpInstance:
    """One unique operator shape and how many times the model runs it."""

    compute: ComputeDef
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")


@dataclass
class ModelGraph:
    """An inference graph: unique operators with execution counts."""

    name: str
    batch: int
    ops: list[OpInstance] = field(default_factory=list)
    #: shape-key -> position in ``ops``; makes ``add`` O(1) per call while
    #: ``ops`` itself keeps insertion order (walk-visible once whole graphs
    #: compile as programs).
    _index: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for i, inst in enumerate(self.ops):
            self._index.setdefault(self._shape_key(inst.compute), i)

    def add(self, compute: ComputeDef, count: int = 1) -> None:
        """Add an operator, merging with an existing identical shape.

        Merging never reorders: counts accumulate on the instance at the
        shape's first insertion position.
        """
        key = self._shape_key(compute)
        pos = self._index.get(key)
        if pos is not None:
            self.ops[pos].count += count
            return
        self._index[key] = len(self.ops)
        self.ops.append(OpInstance(compute, count))

    @staticmethod
    def _shape_key(compute: ComputeDef) -> tuple:
        return (
            compute.kind,
            tuple((ax.name, ax.extent, ax.kind) for ax in compute.axes),
            compute.flops_per_point,
        )

    @staticmethod
    def op_label(compute: ComputeDef) -> str:
        """Stable human-readable per-shape label: name plus extent suffix.

        Distinct shapes sharing an op name (two ``mm``s of different sizes)
        stay distinct in reports keyed by this label.
        """
        extents = "x".join(str(ax.extent) for ax in compute.axes)
        return f"{compute.name}@{extents}"

    @property
    def num_unique_ops(self) -> int:
        return len(self.ops)

    @property
    def num_op_executions(self) -> int:
        return sum(inst.count for inst in self.ops)

    @property
    def total_flops(self) -> float:
        """FLOPs of one full inference pass."""
        return sum(inst.compute.total_flops * inst.count for inst in self.ops)

    def summary(self) -> str:
        return (
            f"{self.name} (batch {self.batch}): {self.num_unique_ops} unique ops, "
            f"{self.num_op_executions} executions, "
            f"{self.total_flops / 1e9:.1f} GFLOPs/inference"
        )
