"""Synthetic dynamic-shape request traces for the serving layer.

A trace replays what a multi-tenant inference service actually sees: the
operators of one network family (BERT-small or GPT-2) across a stream of
varying sequence lengths, with bursty repetition — the same hot shape
arrives many times, often back-to-back.  Bursts are what make single-flight
coalescing matter; shape variety is what exercises the warm-start path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache import shape_fingerprint
from repro.ir.compute import ComputeDef
from repro.models.bert import bert_small
from repro.models.gpt2 import gpt2
from repro.utils.rng import spawn_rng

__all__ = ["shape_stream", "trace_summary", "TRACE_MODELS"]

#: model name -> (graph factory taking (batch, seq), default seq lengths)
TRACE_MODELS = {
    "bert": (bert_small, (64, 128, 192, 256, 384, 512)),
    "gpt2": (gpt2, (128, 256, 512, 1024)),
}


def shape_stream(
    model: str = "bert",
    num_requests: int = 200,
    seed: int = 0,
    seq_lengths: tuple[int, ...] | None = None,
    batches: tuple[int, ...] = (4, 8, 16),
    burstiness: float = 0.35,
) -> list[ComputeDef]:
    """A request stream over ``model``'s dynamic-shape operator family.

    The shape pool crosses every sequence length with every batch size —
    the two axes a real serving frontend actually varies — so a 200-request
    trace stays cold-construction-bound rather than collapsing onto a few
    hot shapes.  Each step repeats the previous operator with probability
    ``burstiness`` (a traffic burst on one hot shape) and otherwise draws
    uniformly from the pool.  Deterministic in ``seed``.
    """
    if model not in TRACE_MODELS:
        raise ValueError(
            f"unknown trace model {model!r}; choices: {sorted(TRACE_MODELS)}"
        )
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if not (0.0 <= burstiness < 1.0):
        raise ValueError(f"burstiness must be in [0, 1), got {burstiness}")
    if not batches:
        raise ValueError("batches must be non-empty")
    factory, default_seqs = TRACE_MODELS[model]
    seqs = tuple(seq_lengths) if seq_lengths else default_seqs
    unique: dict[str, ComputeDef] = {}
    for batch in batches:
        for seq in seqs:
            for inst in factory(batch=batch, seq=seq).ops:
                unique.setdefault(shape_fingerprint(inst.compute), inst.compute)
    ops = list(unique.values())
    rng = spawn_rng(seed, "trace", model, *batches, *seqs)
    stream: list[ComputeDef] = []
    current = ops[int(rng.integers(len(ops)))]
    for _ in range(num_requests):
        if not stream or rng.random() >= burstiness:
            current = ops[int(rng.integers(len(ops)))]
        stream.append(current)
    return stream


@dataclass
class TraceSummary:
    """Shape of a generated trace (for reports and sanity checks)."""

    requests: int
    unique_shapes: int
    kinds: tuple[str, ...]

    @property
    def duplication(self) -> float:
        """Mean repeats per unique shape — the coalescing/caching headroom."""
        return self.requests / self.unique_shapes if self.unique_shapes else 0.0


def trace_summary(stream: list[ComputeDef]) -> TraceSummary:
    fingerprints = {shape_fingerprint(c) for c in stream}
    return TraceSummary(
        requests=len(stream),
        unique_shapes=len(fingerprints),
        kinds=tuple(sorted({c.kind for c in stream})),
    )
