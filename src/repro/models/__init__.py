"""End-to-end DNN model layer.

Models are operator graphs (:mod:`repro.models.graph`): ordered lists of
:class:`~repro.ir.compute.ComputeDef` instances with occurrence counts.
:mod:`repro.models.runner` compiles every unique operator with a chosen
compiler and sums per-kernel latencies into an end-to-end inference time —
the measurement behind the paper's Figs. 9–12.

Provided networks (the paper's evaluation set): ResNet-50 / ResNet-34
(:mod:`repro.models.resnet`), BERT-small with static or dynamic sequence
lengths (:mod:`repro.models.bert`), MobileNetV2 with a channel-width
multiplier (:mod:`repro.models.mobilenet`), and GPT-2
(:mod:`repro.models.gpt2`).
"""

from repro.models.graph import ModelGraph, OpInstance
from repro.models.resnet import resnet34, resnet50
from repro.models.bert import bert_small
from repro.models.mobilenet import mobilenet_v2
from repro.models.gpt2 import gpt2
from repro.models.program import (
    CompiledGroup,
    CompiledProgram,
    FusedGroup,
    ProgramState,
    compile_program,
    plan_fusion,
)
from repro.models.runner import ModelRunResult, compile_and_time, DynamicScenario
from repro.models.trace import shape_stream, trace_summary

__all__ = [
    "ModelGraph",
    "OpInstance",
    "resnet34",
    "resnet50",
    "bert_small",
    "mobilenet_v2",
    "gpt2",
    "CompiledGroup",
    "CompiledProgram",
    "FusedGroup",
    "ProgramState",
    "compile_program",
    "plan_fusion",
    "ModelRunResult",
    "compile_and_time",
    "DynamicScenario",
    "shape_stream",
    "trace_summary",
]
