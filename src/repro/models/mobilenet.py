"""MobileNetV2 operator graph (Sandler et al., CVPR'18).

Supports a channel-width multiplier: the dynamic-structure experiment
(paper Fig. 12) repeatedly re-scales the network's channel counts and
re-optimizes, which is exactly what ``width_mult`` parameterizes.
"""

from __future__ import annotations

from repro.ir import operators as ops
from repro.models.graph import ModelGraph

__all__ = ["mobilenet_v2"]

#: (expansion t, output channels c, repeats n, first stride s)
_INVERTED_RESIDUALS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _scale(channels: int, width_mult: float) -> int:
    """Scale a channel count, keeping it divisible by 8 (MobileNet rule)."""
    scaled = max(8, int(channels * width_mult + 4) // 8 * 8)
    return scaled


def mobilenet_v2(batch: int = 128, width_mult: float = 1.0) -> ModelGraph:
    """MobileNetV2 on 224x224 inputs with an optional width multiplier."""
    g = ModelGraph(f"mobilenetv2_w{width_mult:g}", batch)
    size = 112
    in_ch = _scale(32, width_mult)
    g.add(ops.conv2d(batch, 3, 226, 226, in_ch, 3, 3, 2, f"{g.name}_stem"))
    g.add(ops.elementwise((batch, in_ch, size, size), "relu6", f"{g.name}_stem_act"))
    for t, c, n, s in _INVERTED_RESIDUALS:
        out_ch = _scale(c, width_mult)
        for block in range(n):
            stride = s if block == 0 else 1
            hidden = in_ch * t
            tag = f"{g.name}_t{t}c{c}b{block}"
            if t != 1:
                g.add(ops.conv2d(batch, in_ch, size, size, hidden, 1, 1, 1, f"{tag}_expand"))
                g.add(ops.elementwise((batch, hidden, size, size), "relu6", f"{tag}_expand_act"))
            out_size = size // stride
            g.add(
                ops.depthwise_conv2d(
                    batch, hidden, size + 2, size + 2, 3, 3, stride, f"{tag}_dw"
                )
            )
            g.add(
                ops.elementwise((batch, hidden, out_size, out_size), "relu6", f"{tag}_dw_act")
            )
            g.add(ops.conv2d(batch, hidden, out_size, out_size, out_ch, 1, 1, 1, f"{tag}_project"))
            if stride == 1 and in_ch == out_ch:
                g.add(ops.add((batch, out_ch, out_size, out_size), f"{tag}_residual"))
            in_ch, size = out_ch, out_size
    last = _scale(1280, max(1.0, width_mult))
    g.add(ops.conv2d(batch, in_ch, size, size, last, 1, 1, 1, f"{g.name}_head_conv"))
    g.add(ops.elementwise((batch, last, size, size), "relu6", f"{g.name}_head_act"))
    g.add(ops.avgpool2d(batch, last, size, size, size, size, f"{g.name}_gap"))
    g.add(ops.matmul(batch, last, 1000, f"{g.name}_fc"))
    return g
