"""Whole-graph program compilation: fusion groups over a ModelGraph.

A :class:`~repro.models.graph.ModelGraph` lists unique operator shapes in
the model's dataflow order.  :func:`plan_fusion` greedily groups each
compute-heavy *anchor* with the elementwise/epilogue chain that follows it
(softmax after attention scores, GELU after the FFN matmul, residual add
after layernorm) into :class:`FusedGroup`\\ s; each group compiles as ONE
construction walk whose ETIR states carry the epilogue pool, so the
annealed walk explores fuse/unfuse decisions alongside tiling ones (see
``repro.core.actions``).

The result is a :class:`CompiledProgram`: one :class:`CompiledGroup` per
fusion group — a wire-safe plain-data record (portable best config, names,
latencies) that serve/fleet responses can carry across process boundaries
— plus program-level latency/compile accounting consumed by
``repro.models.runner.compile_and_time``, the fig09/fig11 experiments, the
``compile-graph`` CLI, and ``CompileService.compile_program``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.compute import ComputeDef
from repro.models.graph import ModelGraph, OpInstance

__all__ = [
    "FusedGroup",
    "ProgramState",
    "CompiledGroup",
    "CompiledProgram",
    "plan_fusion",
    "is_epilogue_candidate",
    "compile_program",
    "MAX_EPILOGUES_PER_GROUP",
]

#: epilogue chain length cap per anchor — long chains explode the walk's
#: fusion branch with negligible extra launch savings.
MAX_EPILOGUES_PER_GROUP = 3


@dataclass(frozen=True)
class FusedGroup:
    """One fusion group: an anchor op plus its fusable epilogue chain.

    ``count`` is the group's execution count per inference — fusion only
    groups ops with *equal* counts, so the whole group launches together.
    """

    anchor: ComputeDef
    epilogues: tuple[ComputeDef, ...] = ()
    count: int = 1

    @property
    def num_ops(self) -> int:
        return 1 + len(self.epilogues)

    def describe(self) -> str:
        chain = " + ".join(ep.name for ep in self.epilogues)
        suffix = f" + {chain}" if chain else ""
        return f"{self.anchor.name}{suffix} (x{self.count})"


@dataclass
class ProgramState:
    """The program under compilation: its fusion groups in model order."""

    model: str
    batch: int
    groups: list[FusedGroup] = field(default_factory=list)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def num_fused_ops(self) -> int:
        """Ops absorbed into an anchor's kernel (kernels eliminated)."""
        return sum(len(g.epilogues) for g in self.groups)


@dataclass(frozen=True)
class CompiledGroup:
    """Wire-safe result of compiling one fusion group.

    Plain data only (names, tuples, floats) — this crosses pickle/process
    boundaries in serve/fleet responses, so it must never carry live ETIR
    states or ComputeDefs.
    """

    anchor_name: str
    #: the group's full epilogue pool, by name.
    epilogue_names: tuple[str, ...]
    #: how many pool epilogues the winning schedule actually fused.
    fused: int
    #: executions of this group per inference.
    count: int
    #: measured latency of the group's fused kernel (one execution).
    kernel_latency_s: float
    #: standalone cost of the epilogues the winner left unfused.
    pending_cost_s: float
    #: compile cost (wall + simulated measurement) of this group's walk.
    compile_seconds: float
    #: portable winning schedule: (tiles, vthreads, cur_level).
    best_config: tuple = ()
    #: shape-suffixed anchor label (``name@ExtentxExtent...``) — unlike
    #: ``anchor_name``, unique across same-named ops at different shapes.
    anchor_label: str = ""

    @property
    def latency_s(self) -> float:
        """Program latency of one group execution: the fused kernel plus
        every epilogue kernel the schedule did not absorb."""
        return self.kernel_latency_s + self.pending_cost_s


@dataclass
class CompiledProgram:
    """A whole model compiled as one program of fused groups."""

    model: str
    batch: int
    groups: list[CompiledGroup] = field(default_factory=list)
    method: str = "gensor"

    @property
    def latency_s(self) -> float:
        """End-to-end inference latency: count-weighted group latencies."""
        return sum(g.latency_s * g.count for g in self.groups)

    @property
    def compile_seconds(self) -> float:
        return sum(g.compile_seconds for g in self.groups)

    @property
    def num_kernels(self) -> int:
        """Kernel launches per inference after fusion."""
        launches = 0
        for g in self.groups:
            per_exec = 1 + (len(g.epilogue_names) - g.fused)
            launches += per_exec * g.count
        return launches

    @property
    def num_fused_ops(self) -> int:
        """Op executions eliminated as separate kernels by fusion."""
        return sum(g.fused * g.count for g in self.groups)

    def summary(self) -> str:
        return (
            f"{self.model} (batch {self.batch}): {len(self.groups)} groups, "
            f"{self.num_kernels} kernels/inference "
            f"({self.num_fused_ops} fused away), "
            f"{self.latency_s * 1e3:.3f} ms/inference"
        )


def is_epilogue_candidate(compute: ComputeDef) -> bool:
    """Whether ``compute`` can ride inside a preceding anchor's kernel.

    Mirrors ``Schedule.fuse``'s spatial/reduce guard: only ops iterating a
    purely spatial space (elementwise activations, adds, the softmax /
    layernorm proxies) can consume the anchor's intermediate from
    registers; anything with a reduce axis needs the full tensor
    materialized first.
    """
    return not compute.reduce_axes


def _spatial_points(compute: ComputeDef) -> int:
    pts = 1
    for ax in compute.axes:
        if not ax.is_reduce:
            pts *= ax.extent
    return pts


def _can_follow(anchor: ComputeDef, epilogue: ComputeDef) -> bool:
    """Whether ``epilogue`` iterates exactly the anchor's spatial space."""
    return epilogue.iteration_points == _spatial_points(anchor)


def plan_fusion(graph: ModelGraph, fusion: bool = True) -> ProgramState:
    """Greedily group the graph's op list into fusion groups.

    The op list is in model dataflow order (``ModelGraph.add`` preserves
    insertion order), so adjacency is the producer/consumer relation: an
    epilogue candidate immediately following an anchor with the same
    execution count and a matching spatial iteration space joins the
    anchor's group, up to :data:`MAX_EPILOGUES_PER_GROUP` per anchor.
    ``fusion=False`` yields one single-op group per instance — the per-op
    compilation baseline expressed in program form.
    """
    groups: list[FusedGroup] = []
    ops: list[OpInstance] = list(graph.ops)
    i = 0
    while i < len(ops):
        inst = ops[i]
        epilogues: list[ComputeDef] = []
        j = i + 1
        if fusion:
            while (
                j < len(ops)
                and len(epilogues) < MAX_EPILOGUES_PER_GROUP
                and ops[j].count == inst.count
                and is_epilogue_candidate(ops[j].compute)
                and _can_follow(inst.compute, ops[j].compute)
            ):
                epilogues.append(ops[j].compute)
                j += 1
        groups.append(
            FusedGroup(
                anchor=inst.compute,
                epilogues=tuple(epilogues),
                count=inst.count,
            )
        )
        i = j if epilogues else i + 1
    return ProgramState(model=graph.name, batch=graph.batch, groups=groups)


def compile_program(
    compiler,
    graph: ModelGraph,
    fusion: bool = True,
    measurer=None,
    tracer=None,
    method: str = "gensor",
) -> CompiledProgram:
    """Compile ``graph`` as one program: one construction walk per group.

    ``compiler`` is a :class:`~repro.core.constructor.Gensor` (or anything
    with its ``compile(compute, measurer=..., epilogues=...)`` signature).
    Each group's walk carries the group's epilogue pool, so the annealed
    chains decide fusion; the group result records what the winner fused
    and what it left as standalone kernels.
    """
    from repro.core.score import pending_penalty_s
    from repro.obs.metrics import get_registry

    state = plan_fusion(graph, fusion=fusion)
    registry = get_registry()
    registry.counter("fusion_groups_total", model=graph.name).inc(
        len(state.groups)
    )
    registry.counter("fusion_fused_ops_total", model=graph.name).inc(
        state.num_fused_ops
    )
    if tracer is not None and tracer.enabled:
        tracer.emit(
            "fusion_plan",
            {
                "model": graph.name,
                "batch": graph.batch,
                "groups": [g.describe() for g in state.groups],
                "num_fused_ops": state.num_fused_ops,
            },
        )
    compiled: list[CompiledGroup] = []
    for group in state.groups:
        kwargs = {}
        if measurer is not None:
            kwargs["measurer"] = measurer
        if tracer is not None:
            kwargs["tracer"] = tracer
        result = compiler.compile(
            group.anchor, epilogues=group.epilogues, **kwargs
        )
        best = result.best
        pending = pending_penalty_s(best, compiler.hw)
        compiled.append(
            CompiledGroup(
                anchor_name=group.anchor.name,
                epilogue_names=tuple(ep.name for ep in group.epilogues),
                fused=best.fused,
                count=group.count,
                kernel_latency_s=result.best_metrics.latency_s,
                pending_cost_s=pending,
                compile_seconds=result.compile_seconds,
                best_config=(
                    best.config.tiles,
                    best.config.vthreads,
                    best.cur_level,
                ),
                anchor_label=ModelGraph.op_label(group.anchor),
            )
        )
    return CompiledProgram(
        model=graph.name, batch=graph.batch, groups=compiled, method=method
    )
