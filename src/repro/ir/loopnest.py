"""Lowered imperative loop-nest IR.

This is the form code generation consumes: a tree of typed loops (serial /
unrolled / GPU-bound) over statements (buffer allocation, staged loads,
compute, synchronization, stores).  It is deliberately simple — just enough
structure to print faithful CUDA-like kernels and to let tests assert on
the lowered shape of a schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Loop",
    "LoopKind",
    "Alloc",
    "LoadStage",
    "ComputeStmt",
    "StoreStmt",
    "Sync",
    "Kernel",
]


class LoopKind:
    """Loop annotation tags (a closed string enum)."""

    SERIAL = "serial"
    UNROLL = "unroll"
    VECTORIZE = "vectorize"
    BLOCK = "blockIdx"
    THREAD = "threadIdx"
    VTHREAD = "vthread"

    ALL = (SERIAL, UNROLL, VECTORIZE, BLOCK, THREAD, VTHREAD)


@dataclass
class Alloc:
    """Buffer allocation in a named memory scope (``shared``/``local``)."""

    buffer: str
    scope: str
    num_elems: int
    dtype: str = "float32"


@dataclass
class LoadStage:
    """Cooperative staged copy of a tensor slab into an on-chip buffer.

    ``base_expr`` is the slab's base offset into the source tensor in
    terms of the bound block/reduce loop variables (filled by lowering).
    """

    src_tensor: str
    dst_buffer: str
    num_elems: int
    scope: str
    base_expr: str = "0"


@dataclass
class ComputeStmt:
    """The innermost computation statement, rendered from the ComputeDef."""

    text: str


@dataclass
class StoreStmt:
    """Writeback of accumulators to the output tensor."""

    dst_tensor: str
    src_buffer: str
    num_elems: int


@dataclass
class Sync:
    """Block-level barrier (``__syncthreads()``)."""


Stmt = "Loop | Alloc | LoadStage | ComputeStmt | StoreStmt | Sync"


@dataclass
class Loop:
    """One loop level: ``for var in range(extent)`` with an annotation."""

    var: str
    extent: int
    kind: str = LoopKind.SERIAL
    body: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in LoopKind.ALL:
            raise ValueError(f"unknown loop kind {self.kind!r}")
        if self.extent <= 0:
            raise ValueError(f"loop {self.var!r} extent must be positive")

    def walk(self) -> Iterator["Loop"]:
        """Yield this loop and all nested loops, depth-first."""
        yield self
        for stmt in self.body:
            if isinstance(stmt, Loop):
                yield from stmt.walk()


@dataclass
class Kernel:
    """A lowered kernel: launch configuration plus the loop-nest body."""

    name: str
    grid_dim: int
    block_dim: int
    body: list = field(default_factory=list)

    def all_loops(self) -> list[Loop]:
        loops: list[Loop] = []

        def visit(stmts: list) -> None:
            for stmt in stmts:
                if isinstance(stmt, Loop):
                    loops.append(stmt)
                    visit(stmt.body)

        visit(self.body)
        return loops

    def loops_of_kind(self, kind: str) -> list[Loop]:
        return [lp for lp in self.all_loops() if lp.kind == kind]

    def render(self, indent: str = "  ") -> str:
        """Pretty-print the nest (used by tests and ``--dump-ir``)."""
        lines = [f"kernel {self.name} <<<{self.grid_dim}, {self.block_dim}>>>"]

        def visit(stmts: list, depth: int) -> None:
            pad = indent * depth
            for stmt in stmts:
                if isinstance(stmt, Loop):
                    tag = "" if stmt.kind == LoopKind.SERIAL else f" [{stmt.kind}]"
                    lines.append(f"{pad}for {stmt.var} in 0..{stmt.extent}{tag}:")
                    visit(stmt.body, depth + 1)
                elif isinstance(stmt, Alloc):
                    lines.append(
                        f"{pad}alloc {stmt.buffer}[{stmt.num_elems}] @{stmt.scope}"
                    )
                elif isinstance(stmt, LoadStage):
                    lines.append(
                        f"{pad}stage {stmt.src_tensor} -> {stmt.dst_buffer} "
                        f"({stmt.num_elems} elems, {stmt.scope})"
                    )
                elif isinstance(stmt, ComputeStmt):
                    lines.append(f"{pad}{stmt.text}")
                elif isinstance(stmt, StoreStmt):
                    lines.append(
                        f"{pad}store {stmt.src_buffer} -> {stmt.dst_tensor} "
                        f"({stmt.num_elems} elems)"
                    )
                elif isinstance(stmt, Sync):
                    lines.append(f"{pad}__syncthreads()")
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown statement {stmt!r}")

        visit(self.body, 1)
        return "\n".join(lines)
