"""Footprint and traffic arithmetic over affine tensor accesses.

These three functions are the shared analytical core of the whole
reproduction: Roller's single objective (memory-reuse ratio), Gensor's
tiling benefit (paper Formula 1, ``Q(T)F(T') / Q(T')F(T)``), and the
simulator's memory-traffic terms are all built from them.

The model is the standard tile-reuse model: when the iteration space is
tiled with per-axis tile sizes ``T``, each tile stages the exact affine
footprint of every input once into the target memory level, and each
spatial tile writes its output once (reductions accumulate in registers).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.ir.compute import ComputeDef, TensorAccess
from repro.utils.caching import HOT_PATH_CACHING

__all__ = [
    "access_footprint_elems",
    "tile_footprint_bytes",
    "tile_traffic_bytes",
    "num_tiles",
    "reuse_ratio",
]

#: per-ComputeDef tile-keyed memo cap; the cache lives in the compute's
#: ``__dict__`` and dies with it, this just bounds pathological streams.
_TILE_CACHE_CAP = 65_536


def _tile_cache(compute: ComputeDef) -> dict:
    """Per-compute memo for tile-keyed derived values.

    Stored straight in the (frozen) dataclass's ``__dict__`` — frozen only
    intercepts ``__setattr__``, and the cache is semantically invisible.
    Results depend only on the per-axis tile sizes, so the canonical key
    is the tile tuple in axis order; equal states priced as distinct
    instances (the polish sweep's bread and butter) hit the same slot.
    """
    cache = compute.__dict__.get("_tile_cache")
    if cache is None:
        cache = compute.__dict__["_tile_cache"] = {}
    elif len(cache) > _TILE_CACHE_CAP:
        cache.clear()
    return cache


def _tile_key(compute: ComputeDef, tile_sizes: Mapping[str, int]) -> tuple:
    return tuple(tile_sizes.get(ax.name, 1) for ax in compute.axes)


def _unique_inputs(compute: ComputeDef) -> list[TensorAccess]:
    """Inputs deduplicated by (tensor, index expressions) — repeated reads
    of the same slab share storage.  Computed once per compute."""
    uniq = compute.__dict__.get("_unique_inputs")
    if uniq is None:
        seen: set[tuple[str, tuple]] = set()
        uniq = []
        for acc in compute.inputs:
            key = (acc.tensor.name, acc.indices)
            if key in seen:
                continue
            seen.add(key)
            uniq.append(acc)
        compute.__dict__["_unique_inputs"] = uniq
    return uniq


def access_footprint_elems(
    access: TensorAccess, tile_sizes: Mapping[str, int]
) -> int:
    """Distinct elements of ``access.tensor`` touched by one tile.

    Each tensor dimension's index is affine in the iteration variables, so
    its value range over a tile is ``sum(|c_i| (t_i - 1)) + 1``, clipped to
    the tensor extent.  The footprint is the product over dimensions —
    exact for the stride patterns in the operator zoo.
    """
    footprint = 1
    for dim_extent, expr in zip(access.tensor.shape, access.indices):
        span = expr.extent_under_tiles(tile_sizes)
        footprint *= min(span, dim_extent)
    return footprint


def tile_footprint_bytes(
    compute: ComputeDef,
    tile_sizes: Mapping[str, int],
    include_output: bool = True,
) -> int:
    """Bytes one tile occupies in the staging memory level.

    This is ``F(T)`` in the paper's Formula 1, and the quantity the memory
    check compares against the level capacity.  Repeated reads of the same
    tensor with identical index expressions share storage.
    """
    if not HOT_PATH_CACHING.enabled:
        total = 0
        seen: set[tuple[str, tuple]] = set()
        for acc in compute.inputs:
            key = (acc.tensor.name, acc.indices)
            if key in seen:
                continue
            seen.add(key)
            total += (
                access_footprint_elems(acc, tile_sizes) * acc.tensor.dtype_bytes
            )
        if include_output:
            out_elems = 1
            for ax in compute.spatial_axes:
                out_elems *= min(tile_sizes.get(ax.name, 1), ax.extent)
            total += out_elems * compute.output.dtype_bytes
        return total
    cache = _tile_cache(compute)
    key = ("fp", _tile_key(compute, tile_sizes), include_output)
    total = cache.get(key)
    if total is None:
        total = 0
        for acc in _unique_inputs(compute):
            total += (
                access_footprint_elems(acc, tile_sizes) * acc.tensor.dtype_bytes
            )
        if include_output:
            out_elems = 1
            for ax in compute.spatial_axes:
                out_elems *= min(tile_sizes.get(ax.name, 1), ax.extent)
            total += out_elems * compute.output.dtype_bytes
        cache[key] = total
    return total


def num_tiles(compute: ComputeDef, tile_sizes: Mapping[str, int]) -> int:
    """Number of tiles covering the full iteration space."""
    n = 1
    for ax in compute.axes:
        t = min(tile_sizes.get(ax.name, 1), ax.extent)
        n *= math.ceil(ax.extent / t)
    return n


def tile_traffic_bytes(
    compute: ComputeDef, tile_sizes: Mapping[str, int]
) -> int:
    """Total bytes moved through the staging level for one operator run.

    ``Q(T)`` in the paper's Formula 1: every tile loads its input footprint
    once; every *spatial* tile writes its output slab once (reduce tiles
    accumulate in place and do not multiply output traffic).
    """
    if HOT_PATH_CACHING.enabled:
        cache = _tile_cache(compute)
        key = ("q", _tile_key(compute, tile_sizes))
        cached = cache.get(key)
        if cached is None:
            cached = cache[key] = _tile_traffic_bytes(compute, tile_sizes)
        return cached
    return _tile_traffic_bytes(compute, tile_sizes)


def _tile_traffic_bytes(
    compute: ComputeDef, tile_sizes: Mapping[str, int]
) -> int:
    spatial_tiles = 1
    reduce_tiles = 1
    out_tile_elems = 1
    for ax in compute.axes:
        t = min(tile_sizes.get(ax.name, 1), ax.extent)
        count = math.ceil(ax.extent / t)
        if ax.is_reduce:
            reduce_tiles *= count
        else:
            spatial_tiles *= count
            out_tile_elems *= t
    input_bytes_per_tile = tile_footprint_bytes(
        compute, tile_sizes, include_output=False
    )
    input_traffic = spatial_tiles * reduce_tiles * input_bytes_per_tile
    output_traffic = spatial_tiles * out_tile_elems * compute.output.dtype_bytes
    return input_traffic + output_traffic


def reuse_ratio(compute: ComputeDef, tile_sizes: Mapping[str, int]) -> float:
    """FLOPs per byte moved under this tiling — Roller's single objective."""
    traffic = tile_traffic_bytes(compute, tile_sizes)
    return compute.total_flops / max(1, traffic)
