"""Scheduling primitives (the paper's Table I) over a loop structure.

A :class:`Schedule` owns an ordered list of loop axes derived from a
:class:`~repro.ir.compute.ComputeDef` and mutates it with the classic
primitive set: ``split``, ``fuse``, ``reorder``, ``unroll``, ``vectorize``,
``bind``, ``cache_read`` / ``cache_write``, and Gensor's added
``set_vthread``.  Every primitive is validated and appended to a replayable
log, so tests can assert on the exact primitive sequence a method emitted.

:meth:`Schedule.from_etir` derives the canonical GPU schedule from an ETIR
state — the bridge between Gensor's graph nodes and code generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.ir.loopnest import LoopKind

__all__ = ["LoopAxis", "Schedule", "CacheStage", "ScheduleError"]


class ScheduleError(ValueError):
    """Raised when a primitive is applied illegally."""


@dataclass
class LoopAxis:
    """One loop axis in the current schedule state."""

    name: str
    extent: int
    kind: str = LoopKind.SERIAL
    #: the original ComputeDef axis this one derives from (for codegen).
    origin: str = ""
    is_reduce: bool = False

    def __post_init__(self) -> None:
        if not self.origin:
            self.origin = self.name


@dataclass
class CacheStage:
    """A staged copy of a tensor into an on-chip scope, anchored at an axis."""

    tensor: str
    scope: str  # "shared" or "local"
    at_axis: str


class Schedule:
    """Mutable schedule state for one operator."""

    def __init__(self, compute: ComputeDef) -> None:
        self.compute = compute
        self.axes: list[LoopAxis] = [
            LoopAxis(ax.name, ax.extent, is_reduce=ax.is_reduce)
            for ax in compute.axes
        ]
        self.cache_stages: list[CacheStage] = []
        #: elementwise ops computed in this kernel's innermost scope after
        #: the anchor's accumulation (program fusion; see fuse_epilogue).
        self.epilogue_ops: list[ComputeDef] = []
        self.log: list[tuple] = []

    # -- lookup ------------------------------------------------------------------

    def axis(self, name: str) -> LoopAxis:
        for ax in self.axes:
            if ax.name == name:
                return ax
        raise ScheduleError(f"no axis named {name!r}")

    def axis_names(self) -> list[str]:
        return [ax.name for ax in self.axes]

    def _index(self, name: str) -> int:
        for i, ax in enumerate(self.axes):
            if ax.name == name:
                return i
        raise ScheduleError(f"no axis named {name!r}")

    # -- primitives (Table I) --------------------------------------------------------

    def split(self, name: str, factor: int) -> tuple[str, str]:
        """``L -> (L.o, L.i)`` with inner extent ``factor`` (ceil division).

        Returns the new (outer, inner) axis names.
        """
        if factor < 1:
            raise ScheduleError(f"split factor must be >= 1, got {factor}")
        i = self._index(name)
        ax = self.axes[i]
        if factor > ax.extent:
            factor = ax.extent
        outer = LoopAxis(
            f"{name}.o",
            math.ceil(ax.extent / factor),
            origin=ax.origin,
            is_reduce=ax.is_reduce,
        )
        inner = LoopAxis(f"{name}.i", factor, origin=ax.origin, is_reduce=ax.is_reduce)
        self.axes[i : i + 1] = [outer, inner]
        self.log.append(("split", name, factor))
        return outer.name, inner.name

    def fuse(self, first: str, second: str) -> str:
        """``(L1, L2) -> L`` — the two axes must be adjacent, first outer."""
        i = self._index(first)
        j = self._index(second)
        if j != i + 1:
            raise ScheduleError(
                f"fuse requires adjacent axes, got positions {i} and {j}"
            )
        a, b = self.axes[i], self.axes[j]
        if a.is_reduce != b.is_reduce:
            raise ScheduleError("cannot fuse a spatial axis with a reduce axis")
        fused = LoopAxis(
            f"{first}.{second}.f",
            a.extent * b.extent,
            origin=a.origin,
            is_reduce=a.is_reduce,
        )
        self.axes[i : j + 1] = [fused]
        self.log.append(("fuse", first, second))
        return fused.name

    def tile(
        self, name_x: str, name_y: str, factor_x: int, factor_y: int
    ) -> tuple[str, str, str, str]:
        """Classic 2-D tiling: split both axes and interchange the middles.

        ``(x, y) -> (x.o, y.o, x.i, y.i)``; returns the four axis names.
        """
        xo, xi = self.split(name_x, factor_x)
        yo, yi = self.split(name_y, factor_y)
        self.reorder(xo, yo, xi, yi)
        self.log.append(("tile", name_x, name_y, factor_x, factor_y))
        return xo, yo, xi, yi

    def reorder(self, *names: str) -> None:
        """Reorder the named axes (in the given outer→inner order) in place,
        keeping unnamed axes in their current slots."""
        idxs = sorted(self._index(n) for n in names)
        if len(set(idxs)) != len(names):
            raise ScheduleError("reorder got duplicate axes")
        picked = [self.axis(n) for n in names]
        for slot, ax in zip(idxs, picked):
            self.axes[slot] = ax
        self.log.append(("reorder", *names))

    def unroll(self, name: str) -> None:
        self._annotate(name, LoopKind.UNROLL)
        self.log.append(("unroll", name))

    def vectorize(self, name: str) -> None:
        self._annotate(name, LoopKind.VECTORIZE)
        self.log.append(("vectorize", name))

    def bind(self, name: str, kind: str) -> None:
        """Bind an axis to a GPU index dimension (block/thread/vthread)."""
        if kind not in (LoopKind.BLOCK, LoopKind.THREAD, LoopKind.VTHREAD):
            raise ScheduleError(f"cannot bind to {kind!r}")
        ax = self.axis(name)
        if ax.is_reduce:
            raise ScheduleError(f"cannot bind reduce axis {name!r} to {kind}")
        self._annotate(name, kind)
        self.log.append(("bind", name, kind))

    def set_vthread(self, name: str) -> None:
        """Gensor's added primitive: mark an axis as a virtual-thread axis."""
        self.bind(name, LoopKind.VTHREAD)
        self.log[-1] = ("set_vthread", name)

    def cache_read(self, tensor: str, scope: str, at_axis: str) -> None:
        """Stage ``tensor`` into ``scope`` ("shared"/"local") under ``at_axis``."""
        if scope not in ("shared", "local"):
            raise ScheduleError(f"unknown cache scope {scope!r}")
        self.axis(at_axis)  # validate anchor exists
        if not any(acc.tensor.name == tensor for acc in self.compute.inputs):
            raise ScheduleError(f"{tensor!r} is not an input of {self.compute.name!r}")
        self.cache_stages.append(CacheStage(tensor, scope, at_axis))
        self.log.append(("cache_read", tensor, scope, at_axis))

    def cache_write(self, scope: str, at_axis: str) -> None:
        """Accumulate the output in ``scope`` and write back at ``at_axis``."""
        if scope not in ("shared", "local"):
            raise ScheduleError(f"unknown cache scope {scope!r}")
        self.axis(at_axis)
        self.cache_stages.append(CacheStage(self.compute.output.name, scope, at_axis))
        self.log.append(("cache_write", scope, at_axis))

    def fuse_epilogue(self, ep: ComputeDef) -> None:
        """Compute ``ep`` in-kernel on the anchor's result (program fusion).

        The epilogue consumes the anchor's output while it is still in
        registers, so only epilogues over the anchor's *spatial* iteration
        space are legal — an epilogue with reduce axes would need the full
        intermediate materialized (the same spatial/reduce guard
        :meth:`fuse` enforces for loop axes).
        """
        if ep.reduce_axes:
            raise ScheduleError(
                f"cannot fuse epilogue {ep.name!r}: it has reduce axes"
            )
        self.epilogue_ops.append(ep)
        self.log.append(("fuse_epilogue", ep.name))

    def _annotate(self, name: str, kind: str) -> None:
        ax = self.axis(name)
        if ax.kind != LoopKind.SERIAL:
            raise ScheduleError(
                f"axis {name!r} already annotated as {ax.kind!r}"
            )
        ax.kind = kind

    # -- derived info ------------------------------------------------------------------

    def block_dim(self) -> int:
        return math.prod(
            ax.extent for ax in self.axes if ax.kind == LoopKind.THREAD
        )

    def grid_dim(self) -> int:
        return math.prod(
            ax.extent for ax in self.axes if ax.kind == LoopKind.BLOCK
        )

    def num_vthreads(self) -> int:
        return math.prod(
            ax.extent for ax in self.axes if ax.kind == LoopKind.VTHREAD
        )

    # -- the ETIR bridge -----------------------------------------------------------------

    @classmethod
    def from_etir(cls, state: ETIR) -> "Schedule":
        """Derive the canonical GPU schedule from an ETIR tile configuration.

        For every spatial axis ``d`` with tiles ``(T_1, T_L)`` and vThread
        count ``V``::

            d -> [block d.o] [vthread d.i.o.o] [thread d.i.o.i] [unroll d.i.i]

        with extents ``ceil(E/T_L)``, ``V``, ``ceil(T_L/T_1)``, ``T_1/V``.
        Reduce axes become two serial chunk loops with the innermost
        unrolled.  Inputs are staged in shared memory at the outermost
        reduce chunk loop; the output accumulates in registers.
        """
        sched = cls(state.compute)
        L = state.num_levels
        outer_reduce_anchor: str | None = None
        block_axes: list[str] = []
        vthread_axes: list[str] = []
        thread_axes: list[str] = []
        inner_axes: list[str] = []
        reduce_outer: list[str] = []
        reduce_rest: list[str] = []
        for idx, ax in enumerate(state.compute.axes):
            t_block = state.tile(idx, L)
            t_thread = state.tile(idx, 1)
            if ax.is_reduce:
                ro, ri = sched.split(ax.name, t_block)
                r1, r2 = sched.split(ri, t_thread)
                sched.unroll(r2)
                reduce_outer.append(ro)
                reduce_rest += [r1, r2]
                if outer_reduce_anchor is None:
                    outer_reduce_anchor = ro
            else:
                v = state.vthreads(idx)
                bo, bi = sched.split(ax.name, t_block)
                if v > 1:
                    vo, vi = sched.split(bi, max(1, t_block // v))
                    sched.set_vthread(vo)
                    to, ti = sched.split(vi, state.thread_stride(idx))
                    vthread_axes.append(vo)
                else:
                    to, ti = sched.split(bi, t_thread)
                sched.bind(bo, LoopKind.BLOCK)
                sched.bind(to, LoopKind.THREAD)
                sched.unroll(ti)
                block_axes.append(bo)
                thread_axes.append(to)
                inner_axes.append(ti)
        order = (
            block_axes
            + vthread_axes
            + thread_axes
            + reduce_outer
            + reduce_rest
            + inner_axes
        )
        sched.reorder(*order)
        anchor = outer_reduce_anchor or (thread_axes[-1] if thread_axes else sched.axes[0].name)
        staged: set[str] = set()
        for acc in state.compute.inputs:
            if acc.tensor.name not in staged:
                sched.cache_read(acc.tensor.name, "shared", anchor)
                staged.add(acc.tensor.name)
        if inner_axes:
            sched.cache_write("local", inner_axes[0])
        for ep in state.epilogues:
            sched.fuse_epilogue(ep)
        return sched
