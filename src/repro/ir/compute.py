"""Declarative tensor computations (the TE layer).

A :class:`ComputeDef` describes one operator as

``out[spatial...] = fn( scale * sum_{reduce...} prod_i in_i[affine(spatial, reduce)] )``

This contraction form covers the whole operator zoo the paper evaluates
(GEMM, GEMV, Conv2d, AvgPool2d) plus the elementwise/auxiliary ops the
end-to-end models need.  Keeping the body this structured lets the library
provide an exact generic NumPy evaluator (the correctness oracle for
scheduling) and exact affine footprint analysis (the fuel for every cost
formula) without a full expression-tree IR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.ir.expr import AffineExpr, IterVar
from repro.ir.tensor import TensorSpec

__all__ = ["TensorAccess", "ComputeDef", "UNARY_FNS"]

#: Unary post-ops supported by the contraction body.
UNARY_FNS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "identity": lambda x: x,
    "relu": lambda x: np.maximum(x, 0.0),
    "relu6": lambda x: np.clip(x, 0.0, 6.0),
    "exp": np.exp,
    "tanh": np.tanh,
    "gelu": lambda x: 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3))),
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
}


@dataclass(frozen=True)
class TensorAccess:
    """An affine read of one input tensor: ``tensor[indices...]``."""

    tensor: TensorSpec
    indices: tuple[AffineExpr, ...]

    def __post_init__(self) -> None:
        if len(self.indices) != self.tensor.ndim:
            raise ValueError(
                f"access to {self.tensor.name!r} has {len(self.indices)} indices "
                f"for a {self.tensor.ndim}-d tensor"
            )
        object.__setattr__(
            self, "indices", tuple(AffineExpr.of(ix) for ix in self.indices)
        )

    def render(self) -> str:
        return f"{self.tensor.name}[{', '.join(ix.render() for ix in self.indices)}]"


@dataclass(frozen=True)
class ComputeDef:
    """One operator in contraction normal form.

    Attributes:
        name: unique operator instance name (e.g. ``"gemm_M1"``).
        kind: operator family tag (``"gemm"``, ``"conv2d"``, ...) used by
            vendor-template lookup and workload tables.
        axes: all iteration axes, spatial axes first (in output order),
            reduce axes after.
        inputs: the tensors multiplied together at each iteration point.
        output: the produced tensor; indexed by the spatial axes in order.
        flops_per_point: FLOPs per iteration-space point (2 for
            multiply-accumulate contractions, 1 for elementwise).
        scale: constant multiplier applied after reduction (e.g.
            ``1/F**2`` for average pooling).
        unary_fn: name of the post-op from :data:`UNARY_FNS`.
    """

    name: str
    kind: str
    axes: tuple[IterVar, ...]
    inputs: tuple[TensorAccess, ...]
    output: TensorSpec
    flops_per_point: float = 2.0
    scale: float = 1.0
    unary_fn: str = "identity"

    def __post_init__(self) -> None:
        names = [ax.name for ax in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {self.name!r}: {names}")
        sp = self.spatial_axes
        seen_reduce = False
        for ax in self.axes:
            if ax.is_reduce:
                seen_reduce = True
            elif seen_reduce:
                raise ValueError(
                    f"{self.name!r}: spatial axis {ax.name!r} after a reduce axis; "
                    "order spatial axes first"
                )
        if tuple(self.output.shape) != tuple(ax.extent for ax in sp):
            raise ValueError(
                f"{self.name!r}: output shape {self.output.shape} does not match "
                f"spatial extents {tuple(ax.extent for ax in sp)}"
            )
        if self.unary_fn not in UNARY_FNS:
            raise ValueError(f"unknown unary_fn {self.unary_fn!r}")
        for acc in self.inputs:
            for expr in acc.indices:
                for vn in expr.var_names():
                    if vn not in names:
                        raise ValueError(
                            f"{self.name!r}: access {acc.render()} references "
                            f"unknown axis {vn!r}"
                        )

    # -- axis views -----------------------------------------------------------

    @property
    def spatial_axes(self) -> tuple[IterVar, ...]:
        return tuple(ax for ax in self.axes if not ax.is_reduce)

    @property
    def reduce_axes(self) -> tuple[IterVar, ...]:
        return tuple(ax for ax in self.axes if ax.is_reduce)

    @property
    def ndim(self) -> int:
        return len(self.axes)

    def axis(self, name: str) -> IterVar:
        for ax in self.axes:
            if ax.name == name:
                return ax
        raise KeyError(f"{self.name!r} has no axis {name!r}")

    def extents(self) -> dict[str, int]:
        return {ax.name: ax.extent for ax in self.axes}

    # -- workload statistics ---------------------------------------------------

    @property
    def iteration_points(self) -> int:
        return math.prod(ax.extent for ax in self.axes)

    @property
    def total_flops(self) -> float:
        """Total floating-point work of one execution of the operator."""
        return self.flops_per_point * self.iteration_points

    def total_input_bytes(self) -> int:
        """Compulsory input traffic: each distinct input tensor read once."""
        seen: dict[str, int] = {}
        for acc in self.inputs:
            seen[acc.tensor.name] = acc.tensor.nbytes
        return sum(seen.values())

    def total_io_bytes(self) -> int:
        return self.total_input_bytes() + self.output.nbytes

    def arithmetic_intensity(self) -> float:
        """FLOPs per compulsory byte — classifies compute- vs memory-bound."""
        return self.total_flops / max(1, self.total_io_bytes())

    # -- functional semantics ---------------------------------------------------

    def evaluate(self, inputs: Mapping[str, np.ndarray]) -> np.ndarray:
        """Reference evaluation of the contraction (the correctness oracle).

        Vectorized over the spatial axes; loops over the reduce space, so it
        is intended for the modest shapes used in tests, not benchmarks.
        """
        for acc in self.inputs:
            arr = inputs.get(acc.tensor.name)
            if arr is None:
                raise KeyError(f"missing input tensor {acc.tensor.name!r}")
            if tuple(arr.shape) != acc.tensor.shape:
                raise ValueError(
                    f"input {acc.tensor.name!r} has shape {arr.shape}, "
                    f"expected {acc.tensor.shape}"
                )
        sp = self.spatial_axes
        rd = self.reduce_axes
        grids = np.ogrid[tuple(slice(0, ax.extent) for ax in sp)] if sp else []
        env: dict[str, np.ndarray | int] = {
            ax.name: grid for ax, grid in zip(sp, grids)
        }
        out = np.zeros(self.output.shape, dtype=np.float64)
        for rpoint in iter_product(*(range(ax.extent) for ax in rd)):
            for ax, val in zip(rd, rpoint):
                env[ax.name] = val
            term: np.ndarray | float = 1.0
            for acc in self.inputs:
                idx = tuple(expr.evaluate(env) for expr in acc.indices)
                term = term * inputs[acc.tensor.name][idx]
            out = out + term
        out = out * self.scale
        return UNARY_FNS[self.unary_fn](out)

    def random_inputs(
        self, rng: np.random.Generator | None = None
    ) -> dict[str, np.ndarray]:
        """Generate well-conditioned random inputs for every input tensor."""
        rng = rng or np.random.default_rng(0)
        out: dict[str, np.ndarray] = {}
        for acc in self.inputs:
            if acc.tensor.name not in out:
                out[acc.tensor.name] = rng.standard_normal(acc.tensor.shape).astype(
                    np.float64
                )
        return out

    def render(self) -> str:
        """Human-readable one-line summary of the computation."""
        sp = ", ".join(f"{ax.name}<{ax.extent}" for ax in self.spatial_axes)
        rd = ", ".join(f"{ax.name}<{ax.extent}" for ax in self.reduce_axes)
        body = " * ".join(acc.render() for acc in self.inputs) or "1"
        if self.scale != 1.0:
            body = f"{self.scale:g} * ({body})"
        if rd:
            body = f"sum[{rd}] {body}"
        if self.unary_fn != "identity":
            body = f"{self.unary_fn}({body})"
        return f"{self.output.name}[{sp}] = {body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComputeDef({self.name}: {self.render()})"
