"""Tensor-program intermediate representation.

The IR has three layers, mirroring the paper's stack:

1. **Tensor expressions** (:mod:`repro.ir.compute`) — a TVM-TE-like
   declarative description of an operator: spatial/reduce iteration axes
   plus affine tensor accesses.  Built by the operator zoo in
   :mod:`repro.ir.operators`.
2. **ETIR** (:mod:`repro.ir.etir`) — the paper's enhanced tile-based IR: a
   per-dimension, per-memory-level tile matrix ``D = [T_L, ..., T_1, T_0]``
   plus the current scheduling memory level and the virtual-thread
   configuration.  ETIR states are the *nodes* of Gensor's construction
   graph.
3. **Loop nests** (:mod:`repro.ir.loopnest`) — the lowered imperative form
   consumed by code generation.

:mod:`repro.ir.access` provides the footprint/traffic arithmetic shared by
the cost model, Roller, and Gensor's benefit formulas.
"""

from repro.ir.expr import AffineExpr, IterVar
from repro.ir.tensor import TensorSpec
from repro.ir.compute import ComputeDef, TensorAccess
from repro.ir.access import (
    access_footprint_elems,
    tile_footprint_bytes,
    tile_traffic_bytes,
)
from repro.ir.etir import ETIR, TileConfig, VTHREAD_LEVEL
from repro.ir import operators

__all__ = [
    "AffineExpr",
    "IterVar",
    "TensorSpec",
    "ComputeDef",
    "TensorAccess",
    "ETIR",
    "TileConfig",
    "VTHREAD_LEVEL",
    "operators",
    "access_footprint_elems",
    "tile_footprint_bytes",
    "tile_traffic_bytes",
]
