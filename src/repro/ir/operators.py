"""Operator zoo: builders for every computation the paper evaluates.

Each builder returns a :class:`~repro.ir.compute.ComputeDef` in contraction
normal form.  Convolutions take *pre-padded* inputs (the Table IV shapes,
e.g. ``I=[128,128,58,58]`` for a 3x3/stride-2 kernel, are already padded),
so no boundary handling is needed anywhere in the stack.
"""

from __future__ import annotations

import math

from repro.ir.compute import ComputeDef, TensorAccess
from repro.ir.expr import AffineExpr, IterVar
from repro.ir.tensor import TensorSpec

__all__ = [
    "matmul",
    "gemv",
    "batched_matmul",
    "conv2d",
    "depthwise_conv2d",
    "avgpool2d",
    "elementwise",
    "add",
    "softmax_proxy",
    "layernorm_proxy",
    "conv_out_size",
]


def conv_out_size(in_size: int, kernel: int, stride: int) -> int:
    """Output spatial size of a valid (pre-padded) convolution/pool."""
    if in_size < kernel:
        raise ValueError(f"input size {in_size} smaller than kernel {kernel}")
    return (in_size - kernel) // stride + 1


def matmul(m: int, k: int, n: int, name: str = "gemm", dtype: str = "float32") -> ComputeDef:
    """GEMM: ``C[i, j] = sum_k A[i, k] * B[k, j]``."""
    i = IterVar("i", m)
    j = IterVar("j", n)
    kk = IterVar("k", k, "reduce")
    a = TensorSpec("A", (m, k), dtype)
    b = TensorSpec("B", (k, n), dtype)
    c = TensorSpec("C", (m, n), dtype)
    return ComputeDef(
        name=name,
        kind="gemm",
        axes=(i, j, kk),
        inputs=(
            TensorAccess(a, (i.as_expr(), kk.as_expr())),
            TensorAccess(b, (kk.as_expr(), j.as_expr())),
        ),
        output=c,
        flops_per_point=2.0,
    )


def gemv(m: int, n: int, name: str = "gemv", dtype: str = "float32") -> ComputeDef:
    """GEMV: ``y[i] = sum_n A[i, n] * x[n]``."""
    i = IterVar("i", m)
    nn = IterVar("n", n, "reduce")
    a = TensorSpec("A", (m, n), dtype)
    x = TensorSpec("x", (n,), dtype)
    y = TensorSpec("y", (m,), dtype)
    return ComputeDef(
        name=name,
        kind="gemv",
        axes=(i, nn),
        inputs=(
            TensorAccess(a, (i.as_expr(), nn.as_expr())),
            TensorAccess(x, (nn.as_expr(),)),
        ),
        output=y,
        flops_per_point=2.0,
    )


def batched_matmul(
    b: int, m: int, k: int, n: int, name: str = "bmm", dtype: str = "float32"
) -> ComputeDef:
    """Batched GEMM: ``C[b, i, j] = sum_k A[b, i, k] * B[b, k, j]``."""
    bb = IterVar("b", b)
    i = IterVar("i", m)
    j = IterVar("j", n)
    kk = IterVar("k", k, "reduce")
    a = TensorSpec("A", (b, m, k), dtype)
    w = TensorSpec("B", (b, k, n), dtype)
    c = TensorSpec("C", (b, m, n), dtype)
    return ComputeDef(
        name=name,
        kind="bmm",
        axes=(bb, i, j, kk),
        inputs=(
            TensorAccess(a, (bb.as_expr(), i.as_expr(), kk.as_expr())),
            TensorAccess(w, (bb.as_expr(), kk.as_expr(), j.as_expr())),
        ),
        output=c,
        flops_per_point=2.0,
    )


def conv2d(
    n: int,
    c_in: int,
    h: int,
    w: int,
    c_out: int,
    r: int,
    s: int,
    stride: int = 1,
    name: str = "conv2d",
    dtype: str = "float32",
) -> ComputeDef:
    """Direct convolution over a pre-padded NCHW input.

    ``O[n, f, oh, ow] = sum_{c, r, s} I[n, c, oh*stride + r, ow*stride + s]
    * K[f, c, r, s]``
    """
    oh_ext = conv_out_size(h, r, stride)
    ow_ext = conv_out_size(w, s, stride)
    vn = IterVar("n", n)
    vf = IterVar("f", c_out)
    voh = IterVar("oh", oh_ext)
    vow = IterVar("ow", ow_ext)
    vc = IterVar("c", c_in, "reduce")
    vr = IterVar("r", r, "reduce")
    vs = IterVar("s", s, "reduce")
    inp = TensorSpec("I", (n, c_in, h, w), dtype)
    ker = TensorSpec("K", (c_out, c_in, r, s), dtype)
    out = TensorSpec("O", (n, c_out, oh_ext, ow_ext), dtype)
    return ComputeDef(
        name=name,
        kind="conv2d",
        axes=(vn, vf, voh, vow, vc, vr, vs),
        inputs=(
            TensorAccess(
                inp,
                (
                    vn.as_expr(),
                    vc.as_expr(),
                    voh * stride + vr,
                    vow * stride + vs,
                ),
            ),
            TensorAccess(ker, (vf.as_expr(), vc.as_expr(), vr.as_expr(), vs.as_expr())),
        ),
        output=out,
        flops_per_point=2.0,
    )


def depthwise_conv2d(
    n: int,
    c: int,
    h: int,
    w: int,
    r: int,
    s: int,
    stride: int = 1,
    name: str = "dwconv2d",
    dtype: str = "float32",
) -> ComputeDef:
    """Depthwise convolution (MobileNetV2's workhorse), pre-padded input."""
    oh_ext = conv_out_size(h, r, stride)
    ow_ext = conv_out_size(w, s, stride)
    vn = IterVar("n", n)
    vc = IterVar("c", c)
    voh = IterVar("oh", oh_ext)
    vow = IterVar("ow", ow_ext)
    vr = IterVar("r", r, "reduce")
    vs = IterVar("s", s, "reduce")
    inp = TensorSpec("I", (n, c, h, w), dtype)
    ker = TensorSpec("K", (c, r, s), dtype)
    out = TensorSpec("O", (n, c, oh_ext, ow_ext), dtype)
    return ComputeDef(
        name=name,
        kind="dwconv2d",
        axes=(vn, vc, voh, vow, vr, vs),
        inputs=(
            TensorAccess(
                inp,
                (vn.as_expr(), vc.as_expr(), voh * stride + vr, vow * stride + vs),
            ),
            TensorAccess(ker, (vc.as_expr(), vr.as_expr(), vs.as_expr())),
        ),
        output=out,
        flops_per_point=2.0,
    )


def avgpool2d(
    n: int,
    c: int,
    h: int,
    w: int,
    f: int,
    stride: int,
    name: str = "avgpool2d",
    dtype: str = "float32",
) -> ComputeDef:
    """Average pooling: windowed mean, expressed as a scaled contraction."""
    oh_ext = conv_out_size(h, f, stride)
    ow_ext = conv_out_size(w, f, stride)
    vn = IterVar("n", n)
    vc = IterVar("c", c)
    voh = IterVar("oh", oh_ext)
    vow = IterVar("ow", ow_ext)
    vi = IterVar("fi", f, "reduce")
    vj = IterVar("fj", f, "reduce")
    inp = TensorSpec("I", (n, c, h, w), dtype)
    out = TensorSpec("O", (n, c, oh_ext, ow_ext), dtype)
    return ComputeDef(
        name=name,
        kind="avgpool2d",
        axes=(vn, vc, voh, vow, vi, vj),
        inputs=(
            TensorAccess(
                inp,
                (vn.as_expr(), vc.as_expr(), voh * stride + vi, vow * stride + vj),
            ),
        ),
        output=out,
        flops_per_point=1.0,
        scale=1.0 / (f * f),
    )


def elementwise(
    shape: tuple[int, ...],
    fn: str = "relu",
    name: str = "elementwise",
    dtype: str = "float32",
) -> ComputeDef:
    """Unary elementwise op, e.g. ReLU / GELU activations in model graphs."""
    axes = tuple(IterVar(f"d{idx}", ext) for idx, ext in enumerate(shape))
    inp = TensorSpec("X", shape, dtype)
    out = TensorSpec("Y", shape, dtype)
    return ComputeDef(
        name=name,
        kind="elementwise",
        axes=axes,
        inputs=(TensorAccess(inp, tuple(ax.as_expr() for ax in axes)),),
        output=out,
        flops_per_point=1.0,
        unary_fn=fn,
    )


def add(
    shape: tuple[int, ...], name: str = "add", dtype: str = "float32"
) -> ComputeDef:
    """Elementwise product-free addition is not a contraction of two reads
    of *different* tensors multiplied together; residual adds are modeled as
    a 2-read elementwise op with 1 FLOP/point for cost purposes.

    Numerically this ComputeDef computes ``X * Z`` (the contraction form
    multiplies its inputs); end-to-end experiments use it only for its cost
    profile (2 reads, 1 write, 1 FLOP per point), which matches an add
    exactly.
    """
    axes = tuple(IterVar(f"d{idx}", ext) for idx, ext in enumerate(shape))
    x = TensorSpec("X", shape, dtype)
    z = TensorSpec("Z", shape, dtype)
    out = TensorSpec("Y", shape, dtype)
    idxs = tuple(ax.as_expr() for ax in axes)
    return ComputeDef(
        name=name,
        kind="add",
        axes=axes,
        inputs=(TensorAccess(x, idxs), TensorAccess(z, idxs)),
        output=out,
        flops_per_point=1.0,
    )


def softmax_proxy(
    rows: int, cols: int, name: str = "softmax", dtype: str = "float32"
) -> ComputeDef:
    """Cost proxy for row softmax.

    Softmax is a short composite (max, sub, exp, sum, div) that no single
    contraction expresses; end-to-end model graphs only need its *cost*
    profile: ~5 FLOPs and ~2 passes per element, memory-bound.  The proxy
    is an elementwise exp over the matrix with ``flops_per_point=5``.
    """
    i = IterVar("i", rows)
    j = IterVar("j", cols)
    x = TensorSpec("X", (rows, cols), dtype)
    y = TensorSpec("Y", (rows, cols), dtype)
    return ComputeDef(
        name=name,
        kind="softmax",
        axes=(i, j),
        inputs=(TensorAccess(x, (i.as_expr(), j.as_expr())),),
        output=y,
        flops_per_point=5.0,
        unary_fn="exp",
    )


def layernorm_proxy(
    rows: int, cols: int, name: str = "layernorm", dtype: str = "float32"
) -> ComputeDef:
    """Cost proxy for LayerNorm (mean/var/normalize ≈ 6 FLOPs, 2 passes)."""
    i = IterVar("i", rows)
    j = IterVar("j", cols)
    x = TensorSpec("X", (rows, cols), dtype)
    y = TensorSpec("Y", (rows, cols), dtype)
    return ComputeDef(
        name=name,
        kind="layernorm",
        axes=(i, j),
        inputs=(TensorAccess(x, (i.as_expr(), j.as_expr())),),
        output=y,
        flops_per_point=6.0,
    )
