"""ETIR: the paper's enhanced tile-based tensor-program IR.

An :class:`ETIR` instance is one *node* of Gensor's construction graph: a
complete description of how an operator is tiled onto the device memory
hierarchy, plus the virtual-thread configuration.  Following the paper
(§IV.C), the tiling of each iteration axis ``d`` is a vector
``D = [T_L, ..., T_1, T_0]``:

* ``T_L`` (here ``level == L``, the *block tile*) — the slab one thread
  block stages from DRAM into shared memory,
* ``T_1`` (the *thread tile*) — the fragment one thread keeps in
  registers,
* ``T_0`` — the per-thread computational stride, i.e. the virtual-thread
  interleaving; we store it as the vThread count ``V_d`` with
  ``T_0 = T_1 / V_d``.

ETIR instances are immutable; scheduling actions return new instances, so
states can be hashed, memoized, and backtracked — exactly what
distinguishes graph traversal from Roller's one-way tree descent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator, Mapping

import numpy as np

from repro.hardware.spec import HardwareSpec
from repro.ir.access import tile_footprint_bytes, tile_traffic_bytes
from repro.ir.compute import ComputeDef
from repro.utils.caching import HOT_PATH_CACHING

__all__ = ["ETIR", "TileConfig", "VTHREAD_LEVEL"]

#: Pseudo-level index used by actions that adjust T_0 (the vThread stride).
VTHREAD_LEVEL = 0

#: cap on the per-compute pool of shared derived-value dicts (see __init__).
_DERIVED_POOL_CAP = 65_536


@dataclass(frozen=True)
class TileConfig:
    """Per-axis tile sizes for levels ``1..L`` plus the vThread counts.

    ``tiles[d]`` is ``(T_1, ..., T_L)`` for axis ``d`` (innermost first).
    Invariant: ``1 <= T_1 <= ... <= T_L <= extent_d`` and
    ``1 <= V_d <= T_1`` (``V_d == 1`` for reduce axes).
    """

    tiles: tuple[tuple[int, ...], ...]
    vthreads: tuple[int, ...]

    def tile(self, axis_idx: int, level: int) -> int:
        """Tile size of ``axis_idx`` at memory level ``level`` (1-based)."""
        return self.tiles[axis_idx][level - 1]

    @property
    def num_levels(self) -> int:
        return len(self.tiles[0]) if self.tiles else 0


class ETIR:
    """An immutable scheduled-tensor-program state.

    Mirrors the paper's ETIR class: the tensor program (``compute``), its
    axes and shapes, the number of memory levels, the *current scheduling
    memory level*, the per-level tiles, and the vThread configuration.
    """

    __slots__ = (
        "compute",
        "num_levels",
        "cur_level",
        "config",
        "epilogue_pool",
        "fused",
        "_key",
        "_hash",
        "_derived",
    )

    def __init__(
        self,
        compute: ComputeDef,
        config: TileConfig,
        cur_level: int,
        num_levels: int,
        epilogue_pool: tuple[ComputeDef, ...] = (),
        fused: int = 0,
    ) -> None:
        if not (0 <= fused <= len(epilogue_pool)):
            raise ValueError(
                f"fused must be in [0, {len(epilogue_pool)}], got {fused}"
            )
        for ep in epilogue_pool:
            if ep.reduce_axes:
                raise ValueError(
                    f"epilogue {ep.name!r} has reduce axes and cannot fuse"
                )
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1, got {num_levels}")
        if not (1 <= cur_level <= num_levels):
            raise ValueError(
                f"cur_level must be in [1, {num_levels}], got {cur_level}"
            )
        if len(config.tiles) != len(compute.axes):
            raise ValueError(
                f"tile config covers {len(config.tiles)} axes, "
                f"compute has {len(compute.axes)}"
            )
        for ax, per_level, v in zip(compute.axes, config.tiles, config.vthreads):
            if len(per_level) != num_levels:
                raise ValueError(
                    f"axis {ax.name!r}: expected {num_levels} tile levels, "
                    f"got {len(per_level)}"
                )
            prev = 1
            for lvl, t in enumerate(per_level, start=1):
                if t < prev:
                    raise ValueError(
                        f"axis {ax.name!r}: tile at level {lvl} ({t}) smaller "
                        f"than inner level ({prev})"
                    )
                prev = t
            if per_level[-1] > ax.extent:
                raise ValueError(
                    f"axis {ax.name!r}: block tile {per_level[-1]} exceeds "
                    f"extent {ax.extent}"
                )
            if v < 1 or v > per_level[0]:
                raise ValueError(
                    f"axis {ax.name!r}: vthreads {v} must be in [1, T_1={per_level[0]}]"
                )
            if ax.is_reduce and v != 1:
                raise ValueError(f"reduce axis {ax.name!r} cannot have vThreads")
        self._bind(compute, config, cur_level, num_levels, epilogue_pool, fused)

    @classmethod
    def _trusted(
        cls,
        compute: ComputeDef,
        config: TileConfig,
        cur_level: int,
        num_levels: int,
        epilogue_pool: tuple[ComputeDef, ...] = (),
        fused: int = 0,
    ) -> "ETIR":
        """Construct without re-validating invariants.

        Used by the functional mutators (``with_tile`` & co.), whose guard
        logic already established every invariant ``__init__`` would check;
        action application is the hottest allocation site in the walk.
        """
        obj = object.__new__(cls)
        obj._bind(compute, config, cur_level, num_levels, epilogue_pool, fused)
        return obj

    def _bind(
        self,
        compute: ComputeDef,
        config: TileConfig,
        cur_level: int,
        num_levels: int,
        epilogue_pool: tuple[ComputeDef, ...],
        fused: int,
    ) -> None:
        self.compute = compute
        self.num_levels = num_levels
        self.cur_level = cur_level
        self.config = config
        self.epilogue_pool = epilogue_pool
        self.fused = fused
        # Single-op states keep the historical 4-tuple key byte-for-byte
        # (golden traces and checkpoints serialize it); fused-capable
        # states append an epilogue element so fused/unfused never collide
        # in any key-addressed cache.
        if not epilogue_pool:
            self._key = (
                compute.name,
                config.tiles,
                config.vthreads,
                cur_level,
            )
        else:
            self._key = (
                compute.name,
                config.tiles,
                config.vthreads,
                cur_level,
                ("epi", tuple(ep.name for ep in epilogue_pool), fused),
            )
        self._hash = hash(self._key)
        #: lazily memoized derived quantities.  ETIR is immutable, but the
        #: construction hot path re-derives footprints, traffic, and memory
        #: checks for the same state dozens of times (expansion legality,
        #: benefit formulas, the cost model, polish sweeps) — caching them
        #: changes no value, only the cost of asking twice.  Equal states
        #: are constantly re-instantiated (every action application builds
        #: a fresh object), so the memo dict itself is shared across equal
        #: instances through a per-compute pool keyed by the state key; the
        #: pool lives in the compute's ``__dict__`` and is cleared (not
        #: trimmed — entries are tiny) past a cap to bound pathological
        #: shape streams.
        if HOT_PATH_CACHING.enabled:
            pool = compute.__dict__.get("_derived_pool")
            if pool is None:
                pool = compute.__dict__["_derived_pool"] = {}
            elif len(pool) > _DERIVED_POOL_CAP:
                pool.clear()
            # Keyed by the state itself: the cached _hash makes lookups
            # O(1), where a raw nested-tuple key would be rehashed from
            # scratch on every construction.
            derived = pool.get(self)
            if derived is None:
                derived = pool[self] = {}
            self._derived = derived
        else:
            self._derived = {}

    # -- construction -----------------------------------------------------------

    @classmethod
    def initial(
        cls,
        compute: ComputeDef,
        num_levels: int = 2,
        epilogues: tuple[ComputeDef, ...] = (),
    ) -> "ETIR":
        """The unscheduled state: all tiles 1, no vThreads, at level L.

        ``epilogues`` seeds the fusable-epilogue pool (all initially
        unfused); the walk toggles membership via fuse/unfuse actions.
        """
        n = len(compute.axes)
        config = TileConfig(
            tiles=tuple((1,) * num_levels for _ in range(n)),
            vthreads=(1,) * n,
        )
        return cls(
            compute,
            config,
            cur_level=num_levels,
            num_levels=num_levels,
            epilogue_pool=tuple(epilogues),
        )

    @classmethod
    def from_tiles(
        cls,
        compute: ComputeDef,
        block_tiles: Mapping[str, int],
        thread_tiles: Mapping[str, int] | None = None,
        vthreads: Mapping[str, int] | None = None,
        num_levels: int = 2,
    ) -> "ETIR":
        """Build a fully specified state by axis name (used by baselines).

        Tile values are clipped to each axis extent and the nesting
        invariant is enforced by raising if violated.
        """
        thread_tiles = thread_tiles or {}
        vthreads = vthreads or {}
        tiles: list[tuple[int, ...]] = []
        vts: list[int] = []
        for ax in compute.axes:
            bt = min(int(block_tiles.get(ax.name, 1)), ax.extent)
            tt = min(int(thread_tiles.get(ax.name, 1)), bt)
            inner = [tt] + [tt] * (num_levels - 2) + [bt] if num_levels >= 2 else [bt]
            tiles.append(tuple(inner))
            vts.append(1 if ax.is_reduce else int(vthreads.get(ax.name, 1)))
        config = TileConfig(tiles=tuple(tiles), vthreads=tuple(vts))
        return cls(compute, config, cur_level=1, num_levels=num_levels)

    # -- SoA packing boundary (repro.perf.soa) -----------------------------------

    def config_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Stable packed view of the tile config for the SoA walk core.

        Returns ``(tiles, vthreads)`` where ``tiles`` is an ``(A, L)`` int64
        array — ``tiles[a, l - 1]`` is axis ``a``'s tile at level ``l``,
        innermost first, matching :class:`TileConfig` — and ``vthreads`` is
        an ``(A,)`` int64 array.  Fresh arrays every call; callers own them.
        """
        return (
            np.array(self.config.tiles, dtype=np.int64),
            np.array(self.config.vthreads, dtype=np.int64),
        )

    @classmethod
    def from_arrays(
        cls,
        compute: ComputeDef,
        tiles: np.ndarray,
        vthreads: np.ndarray,
        cur_level: int,
        num_levels: int,
    ) -> "ETIR":
        """Inverse of :meth:`config_arrays` — the SoA decode boundary.

        Array entries are converted back to plain Python ints (state keys
        and golden fixtures are JSON-serialized, so ``np.int64`` must never
        leak into configs) and every ETIR invariant is re-validated.
        """
        config = TileConfig(
            tiles=tuple(
                tuple(row) for row in np.asarray(tiles, dtype=np.int64).tolist()
            ),
            vthreads=tuple(np.asarray(vthreads, dtype=np.int64).tolist()),
        )
        return cls(compute, config, cur_level=int(cur_level), num_levels=int(num_levels))

    # -- identity -----------------------------------------------------------------

    def key(self) -> tuple:
        """Hashable identity of this state (the graph-node key)."""
        return self._key

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ETIR) and self._key == other._key

    # -- epilogue fusion state ---------------------------------------------------

    @property
    def epilogues(self) -> tuple[ComputeDef, ...]:
        """Epilogue ops currently fused into this kernel (pool prefix)."""
        return self.epilogue_pool[: self.fused]

    @property
    def pending_epilogues(self) -> tuple[ComputeDef, ...]:
        """Pool members not yet fused — each still costs its own kernel."""
        return self.epilogue_pool[self.fused :]

    def with_fuse(self) -> "ETIR | None":
        """Fusion action: absorb the next pending epilogue into the kernel.

        Returns ``None`` when the pool is exhausted.  Fusion order is the
        pool order (the model's dataflow order), so fuse/unfuse form an
        exactly reversible pair.
        """
        if self.fused >= len(self.epilogue_pool):
            return None
        return ETIR._trusted(
            self.compute,
            self.config,
            self.cur_level,
            self.num_levels,
            self.epilogue_pool,
            self.fused + 1,
        )

    def with_unfuse(self) -> "ETIR | None":
        """Inverse fusion action: release the last fused epilogue."""
        if self.fused <= 0:
            return None
        return ETIR._trusted(
            self.compute,
            self.config,
            self.cur_level,
            self.num_levels,
            self.epilogue_pool,
            self.fused - 1,
        )

    # -- tile views -----------------------------------------------------------------

    def tile(self, axis_idx: int, level: int) -> int:
        return self.config.tile(axis_idx, level)

    def tile_sizes(self, level: int) -> dict[str, int]:
        """Axis-name → tile-size mapping at ``level`` (1..L).

        Callers treat the result as read-only; the hot path memoizes it.
        """
        cached = (
            self._derived.get(("ts", level))
            if HOT_PATH_CACHING.enabled
            else None
        )
        if cached is None:
            cached = {
                ax.name: self.config.tile(idx, level)
                for idx, ax in enumerate(self.compute.axes)
            }
            if HOT_PATH_CACHING.enabled:
                self._derived[("ts", level)] = cached
        return cached

    def block_tiles(self) -> dict[str, int]:
        return self.tile_sizes(self.num_levels)

    def thread_tiles(self) -> dict[str, int]:
        return self.tile_sizes(1)

    def vthreads(self, axis_idx: int) -> int:
        return self.config.vthreads[axis_idx]

    def total_vthreads(self) -> int:
        return math.prod(self.config.vthreads)

    def thread_stride(self, axis_idx: int) -> int:
        """The paper's ``T_0``: per-thread computational stride."""
        return max(1, self.tile(axis_idx, 1) // self.vthreads(axis_idx))

    # -- derived launch/resource quantities -------------------------------------------

    def threads_per_block(self) -> int:
        """Physical threads per block: block tile over thread tile, spatial axes."""
        cached = (
            self._derived.get("tpb") if HOT_PATH_CACHING.enabled else None
        )
        if cached is None:
            threads = 1
            for idx, ax in enumerate(self.compute.axes):
                if ax.is_reduce:
                    continue
                threads *= math.ceil(
                    self.tile(idx, self.num_levels) / self.tile(idx, 1)
                )
            if HOT_PATH_CACHING.enabled:
                self._derived["tpb"] = threads
            cached = threads
        return cached

    def num_blocks(self) -> int:
        """Grid size: spatial iteration space over block tiles."""
        cached = (
            self._derived.get("blocks") if HOT_PATH_CACHING.enabled else None
        )
        if cached is None:
            blocks = 1
            for idx, ax in enumerate(self.compute.axes):
                if ax.is_reduce:
                    continue
                blocks *= math.ceil(ax.extent / self.tile(idx, self.num_levels))
            if HOT_PATH_CACHING.enabled:
                self._derived["blocks"] = blocks
            cached = blocks
        return cached

    def smem_footprint_bytes(self) -> int:
        """Shared memory one block stages (inputs at the block tile)."""
        cached = (
            self._derived.get("smem_fp") if HOT_PATH_CACHING.enabled else None
        )
        if cached is None:
            cached = tile_footprint_bytes(
                self.compute, self.block_tiles(), include_output=False
            )
            if HOT_PATH_CACHING.enabled:
                self._derived["smem_fp"] = cached
        return cached

    def regs_per_thread(self) -> int:
        """Register (4-byte word) demand of one thread's tile.

        Fused epilogues keep the anchor's intermediate in registers for
        free, but any *extra* epilogue inputs (the residual of an ``add``)
        must also live in registers at the spatial thread tile.
        """
        cached = (
            self._derived.get("regs") if HOT_PATH_CACHING.enabled else None
        )
        if cached is None:
            nbytes = tile_footprint_bytes(
                self.compute, self.thread_tiles(), include_output=True
            )
            nbytes += self._epilogue_extra_bytes(self._spatial_tile_points(1))
            cached = max(1, math.ceil(nbytes / 4))
            if HOT_PATH_CACHING.enabled:
                self._derived["regs"] = cached
        return cached

    def dram_traffic_bytes(self) -> int:
        """Q at the DRAM level: traffic under the block tiling.

        Fused epilogues skip their own round-trip of the intermediate, but
        their extra inputs are streamed once per block at the spatial
        block tile.
        """
        cached = (
            self._derived.get("dram_q") if HOT_PATH_CACHING.enabled else None
        )
        if cached is None:
            cached = tile_traffic_bytes(self.compute, self.block_tiles())
            if self.fused:
                cached += self.num_blocks() * self._epilogue_extra_bytes(
                    self._spatial_tile_points(self.num_levels)
                )
            if HOT_PATH_CACHING.enabled:
                self._derived["dram_q"] = cached
        return cached

    # -- fused-program aggregates -------------------------------------------------

    def _spatial_tile_points(self, level: int) -> int:
        """Points of the spatial tile at ``level`` (epilogues iterate these)."""
        pts = 1
        for idx, ax in enumerate(self.compute.axes):
            if ax.is_reduce:
                continue
            pts *= self.tile(idx, level)
        return pts

    def _epilogue_extra_bytes(self, spatial_points: int) -> int:
        """Bytes of *extra* epilogue inputs over ``spatial_points`` points.

        The first input of every epilogue is the fused intermediate (never
        materialized); remaining inputs are real tensors read alongside it.
        """
        if not self.fused:
            return 0
        extra = 0
        for ep in self.epilogues:
            for inp in ep.inputs[1:]:
                extra += spatial_points * inp.tensor.dtype_bytes
        return extra

    def epilogue_flops_per_point(self) -> float:
        """FLOPs the fused epilogues add per spatial iteration point."""
        return float(sum(ep.flops_per_point for ep in self.epilogues))

    def program_flops(self) -> float:
        """Useful FLOPs of the whole fused kernel (anchor + fused epilogues)."""
        flops = self.compute.total_flops
        for ep in self.epilogues:
            flops += ep.total_flops
        return flops

    def program_io_bytes(self) -> float:
        """Unique DRAM bytes the fused kernel must move.

        The anchor's IO plus fused epilogues' extra inputs; each fused
        intermediate stays on chip (the fusion saving), and the final
        epilogue output stands in for the anchor output at equal size.
        """
        nbytes = float(self.compute.total_io_bytes())
        for ep in self.epilogues:
            for inp in ep.inputs[1:]:
                nbytes += inp.tensor.nbytes
        return nbytes

    def smem_traffic_bytes(self) -> int:
        """Q between shared memory and registers: traffic under thread tiling."""
        cached = (
            self._derived.get("smem_q") if HOT_PATH_CACHING.enabled else None
        )
        if cached is None:
            cached = tile_traffic_bytes(self.compute, self.thread_tiles())
            if HOT_PATH_CACHING.enabled:
                self._derived["smem_q"] = cached
        return cached

    def memory_ok(self, hw: HardwareSpec, strict: bool = True) -> bool:
        """The paper's per-transition memory check.

        A configuration is infeasible (transition probability forced to 0)
        when its shared-memory slab, register demand, or thread count
        exceeds the device limits.

        ``strict=False`` is the *traversal-time* variant: while the walk is
        still scheduling outer levels, the thread-block shape is not yet
        committed (thread tiles are all 1), so only the constraints that are
        already determined — the shared-memory slab and the per-thread
        register budget — are enforced.  Final candidates are always
        re-checked strictly before ranking and measurement.
        """
        if not HOT_PATH_CACHING.enabled:
            return self._memory_ok(hw, strict)
        # Fast path: this state already answered for this spec/strictness
        # (the expansion legality check, the quick roofline, and the cost
        # model all ask).  id(hw) is safe in the key because every id that
        # reaches the slow path below belongs to a spec retained in the
        # bucket — a live different spec can never reuse it.
        fast_key = ("mo", id(hw), strict)
        cached = self._derived.get(fast_key)
        if cached is not None:
            return cached
        # The check depends only on the tile config (not vThreads or the
        # current level), so it is memoized per compute, keyed by tiles.
        # Specs are bucketed by identity — the object is retained in the
        # bucket so its id cannot be recycled — which avoids hashing the
        # whole (nested, frozen) HardwareSpec on every call.
        per_hw = self.compute.__dict__.get("_memok_cache")
        if per_hw is None:
            per_hw = self.compute.__dict__["_memok_cache"] = {}
        bucket = per_hw.get(id(hw))
        if bucket is None:
            bucket = per_hw[id(hw)] = (hw, {})
        cache = bucket[1]
        if len(cache) > _DERIVED_POOL_CAP:
            cache.clear()
        # Fused epilogues change register demand, so fused states must not
        # share memok entries with the plain kernel of the same tiles.
        if self.fused:
            key = (self.config.tiles, strict, self._key[4])
        else:
            key = (self.config.tiles, strict)
        cached = cache.get(key)
        if cached is None:
            cached = cache[key] = self._memory_ok(hw, strict)
        self._derived[fast_key] = cached
        return cached

    def _memory_ok(self, hw: HardwareSpec, strict: bool) -> bool:
        if self.smem_footprint_bytes() > hw.smem.capacity_bytes:
            return False
        # CUDA caps a single thread at 255 registers regardless of block shape.
        if self.regs_per_thread() > 255:
            return False
        if not strict:
            return True
        threads = self.threads_per_block()
        if threads > hw.max_threads_per_block:
            return False
        if threads * self.regs_per_thread() > hw.registers_per_sm:
            return False
        return True

    # -- functional mutation (the graph's edges land on these) -----------------------

    def with_tile(self, axis_idx: int, level: int, new_size: int) -> "ETIR":
        """Return a copy with axis ``axis_idx``'s tile at ``level`` replaced.

        Raises ``ValueError`` if the nesting invariant would break.
        """
        return ETIR(
            self.compute,
            self._tile_replaced(axis_idx, level, new_size),
            self.cur_level,
            self.num_levels,
            self.epilogue_pool,
            self.fused,
        )

    def _tile_replaced(self, axis_idx: int, level: int, new_size: int) -> TileConfig:
        tiles = [list(t) for t in self.config.tiles]
        tiles[axis_idx][level - 1] = int(new_size)
        return TileConfig(
            tiles=tuple(tuple(t) for t in tiles), vthreads=self.config.vthreads
        )

    def scaled_tile(self, axis_idx: int, up: bool) -> "ETIR | None":
        """Tiling / inverse-tiling action: double or halve the current-level
        tile of one axis.

        Returns ``None`` when the move is impossible (would exceed the axis
        extent, break level nesting, or drop below the vThread count).
        """
        return self.scaled_tile_at(axis_idx, self.cur_level, up)

    def scaled_tile_at(self, axis_idx: int, lvl: int, up: bool) -> "ETIR | None":
        """Double/halve one axis's tile at an explicit level (1..L).

        Used by the post-construction refinement pass, which may adjust any
        level; the Markov walk itself always passes the current level.
        """
        cur = self.tile(axis_idx, lvl)
        ax = self.compute.axes[axis_idx]
        if up:
            new = cur * 2
            upper = (
                ax.extent
                if lvl == self.num_levels
                else self.tile(axis_idx, lvl + 1)
            )
            if new > upper:
                if cur < upper:
                    new = upper  # allow reaching a non-power-of-two extent
                else:
                    return None
        else:
            new = cur // 2
            lower = 1 if lvl == 1 else self.tile(axis_idx, lvl - 1)
            lower = max(lower, self.vthreads(axis_idx) if lvl == 1 else 1)
            if new < lower:
                return None
        # The guards above established the nesting invariant.
        return ETIR._trusted(
            self.compute,
            self._tile_replaced(axis_idx, lvl, new),
            self.cur_level,
            self.num_levels,
            self.epilogue_pool,
            self.fused,
        )

    def with_cache_advance(self) -> "ETIR | None":
        """Caching action: move scheduling to the next (faster) memory level.

        When entering a faster level its tiles start equal to 1 (they are
        already initialized that way and are nested below the outer level).
        Returns ``None`` at the innermost level.
        """
        if self.cur_level <= 1:
            return None
        return ETIR._trusted(
            self.compute,
            self.config,
            self.cur_level - 1,
            self.num_levels,
            self.epilogue_pool,
            self.fused,
        )

    def with_vthread(self, axis_idx: int, count: int) -> "ETIR | None":
        """setVthread primitive: set axis ``axis_idx``'s vThread count.

        Only valid for spatial axes with ``count <= T_1``.
        """
        ax = self.compute.axes[axis_idx]
        if ax.is_reduce:
            return None
        if count < 1 or count > self.tile(axis_idx, 1):
            return None
        vts = list(self.config.vthreads)
        vts[axis_idx] = int(count)
        config = TileConfig(tiles=self.config.tiles, vthreads=tuple(vts))
        return ETIR._trusted(
            self.compute,
            config,
            self.cur_level,
            self.num_levels,
            self.epilogue_pool,
            self.fused,
        )

    # -- presentation -----------------------------------------------------------------

    def describe(self) -> str:
        """Compact human-readable schedule description."""
        parts = []
        for idx, ax in enumerate(self.compute.axes):
            levels = "/".join(str(t) for t in reversed(self.config.tiles[idx]))
            v = self.vthreads(idx)
            tag = f" v{v}" if v > 1 else ""
            parts.append(f"{ax.name}:[{levels}]{tag}")
        fused = (
            f" fused[{'+'.join(ep.name for ep in self.epilogues)}]"
            if self.fused
            else ""
        )
        return (
            f"<ETIR {self.compute.name} L{self.cur_level} "
            f"{' '.join(parts)} threads={self.threads_per_block()} "
            f"blocks={self.num_blocks()}{fused}>"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
