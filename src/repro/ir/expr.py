"""Iteration variables and affine index expressions.

Every tensor access in the operator zoo is affine in the iteration
variables (this covers GEMM, GEMV, convolution, pooling, elementwise and
normalization ops).  Restricting to affine indices keeps footprint and
traffic computation exact and cheap, which the construction methods query
thousands of times per compilation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["IterVar", "AffineExpr"]

SPATIAL = "spatial"
REDUCE = "reduce"


@dataclass(frozen=True)
class IterVar:
    """An iteration axis of a tensor computation.

    ``kind`` is ``"spatial"`` for axes that index the output tensor and
    ``"reduce"`` for reduction axes (e.g. GEMM's ``k``).
    """

    name: str
    extent: int
    kind: str = SPATIAL

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise ValueError(f"axis {self.name!r} extent must be positive, got {self.extent}")
        if self.kind not in (SPATIAL, REDUCE):
            raise ValueError(f"axis kind must be 'spatial' or 'reduce', got {self.kind!r}")

    @property
    def is_reduce(self) -> bool:
        return self.kind == REDUCE

    def __mul__(self, coef: int) -> "AffineExpr":
        return AffineExpr({self.name: int(coef)})

    __rmul__ = __mul__

    def __add__(self, other: "IterVar | AffineExpr | int") -> "AffineExpr":
        return AffineExpr({self.name: 1}) + other

    __radd__ = __add__

    def as_expr(self) -> "AffineExpr":
        return AffineExpr({self.name: 1})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "r" if self.is_reduce else "s"
        return f"IterVar({self.name}:{self.extent}{tag})"


@dataclass(frozen=True)
class AffineExpr:
    """A linear combination of iteration variables plus a constant.

    Immutable; arithmetic returns new expressions.  Variables are referenced
    by name — the owning :class:`~repro.ir.compute.ComputeDef` maps names
    back to :class:`IterVar` objects.
    """

    terms: Mapping[str, int] = field(default_factory=dict)
    const: int = 0

    def __post_init__(self) -> None:
        # Normalize: drop zero coefficients, freeze the mapping.
        cleaned = {k: int(v) for k, v in self.terms.items() if v != 0}
        object.__setattr__(self, "terms", _FrozenDict(cleaned))
        object.__setattr__(self, "const", int(self.const))

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def of(var: "IterVar | AffineExpr | int") -> "AffineExpr":
        if isinstance(var, AffineExpr):
            return var
        if isinstance(var, IterVar):
            return var.as_expr()
        return AffineExpr({}, int(var))

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "AffineExpr | IterVar | int") -> "AffineExpr":
        o = AffineExpr.of(other)
        terms = dict(self.terms)
        for name, coef in o.terms.items():
            terms[name] = terms.get(name, 0) + coef
        return AffineExpr(terms, self.const + o.const)

    __radd__ = __add__

    def __mul__(self, coef: int) -> "AffineExpr":
        return AffineExpr(
            {name: c * int(coef) for name, c in self.terms.items()},
            self.const * int(coef),
        )

    __rmul__ = __mul__

    # -- analysis -------------------------------------------------------------

    def var_names(self) -> tuple[str, ...]:
        return tuple(self.terms.keys())

    def coefficient(self, name: str) -> int:
        return self.terms.get(name, 0)

    def evaluate(self, values: Mapping[str, int]) -> int:
        """Evaluate with concrete values for every referenced variable."""
        total = self.const
        for name, coef in self.terms.items():
            total += coef * values[name]
        return total

    def extent_under_tiles(self, tile_sizes: Mapping[str, int]) -> int:
        """Number of distinct values this index takes over a tile.

        For an affine index ``sum(c_i * x_i) + k`` with ``x_i`` ranging over
        a tile of size ``t_i``, the value range spans
        ``sum(|c_i| * (t_i - 1)) + 1`` points; for the stride patterns in
        the operator zoo (all positive coefficients) that span is also the
        exact count used by footprint computation.
        """
        span = 1
        for name, coef in self.terms.items():
            t = tile_sizes.get(name, 1)
            span += abs(coef) * (t - 1)
        return span

    def render(self) -> str:
        """Human-readable form used by the code generator, e.g. ``2*h + r``."""
        parts: list[str] = []
        for name, coef in sorted(self.terms.items()):
            if coef == 1:
                parts.append(name)
            else:
                parts.append(f"{coef}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AffineExpr({self.render()})"


class _FrozenDict(dict):
    """A hashable dict so AffineExpr stays usable as a dataclass field."""

    _hash: int | None = None

    def __hash__(self) -> int:  # type: ignore[override]
        # Index expressions are hashed constantly on the construction hot
        # path; the dict is immutable after __post_init__, so memoize.
        h = self._hash
        if h is None:
            h = self._hash = hash(tuple(sorted(self.items())))
        return h

    def __reduce__(self) -> tuple[object, ...]:
        # dict subclass pickling reconstructs via __setitem__/update, which
        # the read-only guards below block; rebuild from a plain dict instead
        # (dict.__init__ bypasses the overrides).  Needed to ship ComputeDefs
        # across process boundaries (the fleet's shard pipes).
        return (_FrozenDict, (dict(self),))

    def _readonly(self, *args: object, **kwargs: object) -> None:
        raise TypeError("AffineExpr terms are immutable")

    __setitem__ = _readonly  # type: ignore[assignment]
    __delitem__ = _readonly  # type: ignore[assignment]
    clear = _readonly  # type: ignore[assignment]
    pop = _readonly  # type: ignore[assignment]
    popitem = _readonly  # type: ignore[assignment]
    setdefault = _readonly  # type: ignore[assignment]
    update = _readonly  # type: ignore[assignment]
