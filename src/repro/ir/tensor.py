"""Tensor declarations."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["TensorSpec", "DTYPE_BYTES"]

DTYPE_BYTES = {
    "float32": 4,
    "float16": 2,
    "int32": 4,
    "int8": 1,
}


@dataclass(frozen=True)
class TensorSpec:
    """A named, shaped, typed tensor (input, output, or staged buffer)."""

    name: str
    shape: tuple[int, ...]
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError(f"tensor {self.name!r} must have at least one dim")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"tensor {self.name!r} has non-positive dim: {self.shape}")
        if self.dtype not in DTYPE_BYTES:
            raise ValueError(f"unsupported dtype {self.dtype!r}")
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_elems(self) -> int:
        return math.prod(self.shape)

    @property
    def dtype_bytes(self) -> int:
        return DTYPE_BYTES[self.dtype]

    @property
    def nbytes(self) -> int:
        return self.num_elems * self.dtype_bytes
