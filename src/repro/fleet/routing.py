"""Family-sticky request routing across shard processes.

The fleet shards by **operator-family fingerprint** (kind + axis set, any
extents — see :func:`repro.core.cache.family_fingerprint`): every shape of
one family lands on the same shard.  Stickiness is what makes the fleet
correct and fast at once:

* the shard's :class:`~repro.core.cache.ScheduleCache` accumulates every
  winner of the family, so ``nearest``-neighbor warm starts keep working
  exactly as in the single-process service;
* schedule outcomes depend only on the *within-family* request order
  (families never warm-start each other), so pinning a family to one
  FIFO pipe preserves single-process determinism;
* the per-family cold-stampede locks and circuit breakers stay local to
  one process.

Two assignment policies:

* ``"hash"`` — stable CRC-32 of the family fingerprint modulo shard
  count.  Fully deterministic across runs and dispatcher instances (the
  builtin :func:`hash` is salted per process, so it is *not* used).
* ``"least-loaded"`` — first sight of a family picks the shard with the
  fewest outstanding requests (ties break toward the stable hash shard);
  the assignment then sticks.  Balances coarse family-cost skew that a
  pure hash cannot see.
"""

from __future__ import annotations

import threading
import zlib
from typing import Sequence

__all__ = ["FamilyRouter", "stable_shard"]


def stable_shard(family: str, shards: int) -> int:
    """Process-stable hash placement of a family (CRC-32, not ``hash``)."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return zlib.crc32(family.encode()) % shards


class FamilyRouter:
    """Sticky family -> shard map with pluggable first-sight placement."""

    POLICIES = ("hash", "least-loaded")

    def __init__(self, shards: int, policy: str = "hash") -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; choices: {self.POLICIES}"
            )
        self.shards = shards
        self.policy = policy
        self._assigned: dict[str, int] = {}
        self._lock = threading.Lock()

    def route(self, family: str, loads: Sequence[int] | None = None) -> int:
        """Shard index for ``family`` (assigning it on first sight).

        ``loads`` is the per-shard outstanding-request count consulted by
        the ``least-loaded`` policy; omitted or under the ``hash`` policy
        it is ignored.
        """
        with self._lock:
            shard = self._assigned.get(family)
            if shard is not None:
                return shard
            anchor = stable_shard(family, self.shards)
            if self.policy == "hash" or loads is None:
                shard = anchor
            else:
                if len(loads) != self.shards:
                    raise ValueError(
                        f"expected {self.shards} loads, got {len(loads)}"
                    )
                low = min(loads)
                candidates = [i for i, n in enumerate(loads) if n == low]
                shard = anchor if anchor in candidates else candidates[0]
            self._assigned[family] = shard
            return shard

    def assignments(self) -> dict[str, int]:
        """Copy of the current family -> shard map."""
        with self._lock:
            return dict(self._assigned)
