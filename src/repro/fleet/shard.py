"""Shard process: one CompileService behind a request pipe.

A shard is a whole single-process serving stack —
:class:`~repro.serve.service.CompileService` over
:class:`~repro.core.dynamic.DynamicGensor` with its supervised thread
pool, breakers, and retries — wrapped in a process whose only interface
is two ``multiprocessing`` queues:

* the **request queue** carries :class:`WireRequest` /
  :class:`WireControl` messages from the dispatcher (FIFO, which is what
  preserves per-family determinism under family-sticky routing);
* the **response queue** carries :class:`WireResponse` completions plus
  lifecycle/telemetry messages (:class:`ShardReady`, :class:`ShardStats`,
  :class:`ShardBye`).

Everything on the wire is plain picklable data: schedules travel as
:class:`~repro.core.cache.CachedSchedule` (shape-independent tile
configuration), never as live ETIR states.

The shard also runs the two fleet-local control loops: a **replicator**
thread that periodically :meth:`~repro.core.cache.ScheduleCache.sync`'s
the in-memory cache with the shared on-disk database (publishing this
shard's winners, pulling in siblings') and ships a metrics export to the
dispatcher, and an optional :class:`~repro.fleet.autoscale.Autoscaler`
that grows/shrinks the worker-thread roster from queue-wait signals.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import cast

from repro.core.cache import CachedSchedule, ScheduleCache, shape_fingerprint
from repro.core.constructor import GensorConfig
from repro.fleet.autoscale import AutoscalePolicy, Autoscaler
from repro.hardware import generic_gpu, orin_nano, rtx4090
from repro.ir.compute import ComputeDef
from repro.obs.metrics import MetricsRegistry
from repro.resilience.checkpoint import (
    CheckpointPolicy,
    CheckpointStore,
    WalkCheckpoint,
)
from repro.serve.service import CompileService
from repro.sim.measure import MICROBENCH_SECONDS, Measurer

__all__ = [
    "ShardOptions",
    "WireRequest",
    "WireControl",
    "WireResponse",
    "ShardReady",
    "ShardStats",
    "ShardBye",
    "run_shard",
]

_DEVICES = {
    "rtx4090": rtx4090,
    "orin_nano": orin_nano,
    "generic_gpu": generic_gpu,
}

#: how long a stopping shard waits for its in-flight requests to land.
_DRAIN_TIMEOUT_S = 60.0


@dataclass(frozen=True)
class ShardOptions:
    """Picklable construction recipe for one shard's serving stack."""

    device: str
    config: GensorConfig = field(default_factory=GensorConfig)
    workers: int = 4
    queue_capacity: int = 128
    warm_polish_steps: int = 40
    warm_pool: int = 3
    #: fraction of simulated profiling cost slept in real time (benchmarks
    #: pass 1.0 so process scaling is wall-clock real).
    time_scale: float = 0.0
    #: shared on-disk ScheduleCache path; ``None`` disables replication.
    cache_path: str | None = None
    #: period of the cache sync + metrics publication loop.
    sync_interval_s: float = 1.0
    #: worker autoscaling policy; ``None`` keeps the roster fixed.
    autoscale: AutoscalePolicy | None = None
    #: shared on-disk CheckpointStore directory; shards persist mid-walk
    #: checkpoints here so the dispatcher can resume a crashed shard's
    #: in-flight walks in its replacement.  ``None`` disables persistence
    #: (in-process crash requeues still resume from memory).
    checkpoint_path: str | None = None
    #: walk-step cadence of mid-walk checkpoints; ``None`` keeps the
    #: service default.  Tests and short construction budgets tighten it
    #: so snapshots actually fire within a tiny walk.
    checkpoint_every: int | None = None


@dataclass(frozen=True)
class WireRequest:
    """One compile ask on the wire (dispatcher -> shard)."""

    request_id: int
    compute: object  # ComputeDef; typed loosely to keep the wire layer thin
    deadline_s: float | None = None
    priority: int = 0
    #: times the dispatcher re-sent this request after a shard crash.
    resends: int = 0
    #: WalkCheckpoint from a crashed incarnation (typed loosely like
    #: ``compute``); the receiving shard's service resumes the walk from
    #: it after validation.
    checkpoint: object | None = None
    #: program fusion: epilogue-pool ComputeDefs the construction walk may
    #: fuse into this operator's kernel (plain picklable IR, like
    #: ``compute``).  Fused requests bypass cache and checkpointing.
    epilogues: tuple = ()


@dataclass(frozen=True)
class WireControl:
    """Out-of-band shard control.

    ``stop``  — drain in-flight work, publish the cache, exit cleanly.
    ``sync``  — run one cache sync + stats publication now.
    ``crash`` — die immediately via ``os._exit`` (chaos hook for the
    crashed-shard respawn tests, in the spirit of
    :meth:`ScheduleCache.corrupt`).
    """

    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("stop", "sync", "crash"):
            raise ValueError(f"unknown control kind {self.kind!r}")


@dataclass(frozen=True)
class WireResponse:
    """One completion on the wire (shard -> dispatcher)."""

    shard: int
    request_id: int
    tier: str
    ok: bool
    reason: str | None = None
    #: the served schedule as a portable tile configuration (``None`` for
    #: rejected/failed responses); re-instantiable against the ComputeDef.
    schedule: CachedSchedule | None = None
    #: predicted kernel latency of the served schedule.
    kernel_latency_s: float | None = None
    #: wall time the request spent inside the shard's service.
    shard_latency_s: float = 0.0
    #: program fusion: pool epilogues the winning schedule fused (0 for
    #: plain kernel requests).
    fused: int = 0
    #: standalone cost of the pool epilogues the winner left unfused.
    pending_cost_s: float = 0.0
    #: compile cost (wall + simulated profiling) of the serving walk.
    compile_seconds: float = 0.0


@dataclass(frozen=True)
class ShardReady:
    shard: int
    pid: int


@dataclass(frozen=True)
class ShardStats:
    """Periodic telemetry: a lossless metrics export plus vitals."""

    shard: int
    metrics: dict
    cache_size: int
    workers: int


@dataclass(frozen=True)
class ShardBye:
    shard: int


def _encode(shard: int, request_id: int, response, hw=None) -> WireResponse:
    """Flatten a CompileResponse into plain wire data.

    ``request_id`` is the *dispatcher's* id from the WireRequest — the
    shard's CompileService mints its own local ids, which mean nothing
    across the process boundary.  ``hw`` prices the unfused-epilogue
    penalty of program (fused) responses; plain responses never need it.
    """
    schedule = None
    kernel_latency_s = None
    fused = 0
    pending_cost_s = 0.0
    compile_seconds = 0.0
    if response.result is not None:
        best = response.result.best
        kernel_latency_s = response.result.best_metrics.latency_s
        schedule = CachedSchedule.from_state(best, kernel_latency_s)
        compile_seconds = response.result.compile_seconds
        if getattr(best, "epilogue_pool", ()) and hw is not None:
            from repro.core.score import pending_penalty_s

            fused = best.fused
            pending_cost_s = pending_penalty_s(best, hw)
    return WireResponse(
        shard=shard,
        request_id=request_id,
        tier=response.tier,
        ok=response.ok,
        reason=response.reason,
        schedule=schedule,
        kernel_latency_s=kernel_latency_s,
        shard_latency_s=response.service_latency_s,
        fused=fused,
        pending_cost_s=pending_cost_s,
        compile_seconds=compile_seconds,
    )


def run_shard(shard_index: int, options: ShardOptions, req_q, resp_q) -> None:
    """Process entry point: serve ``req_q`` until a ``stop`` control.

    Module-level and fed only picklable arguments so it works under the
    ``spawn`` start method (the fleet's default — safe to use from the
    dispatcher's multi-threaded process, unlike ``fork``).
    """
    hw = _DEVICES[options.device]()
    registry = MetricsRegistry()
    cache = ScheduleCache(hw)
    if options.cache_path:
        # Warm boot: adopt whatever siblings (or a previous life of this
        # shard) already published.
        cache.refresh(options.cache_path)
    ckpt_store: CheckpointStore | None = None
    if options.checkpoint_path:
        ckpt_store = CheckpointStore(options.checkpoint_path, registry=registry)

    def persist_checkpoint(request, checkpoint: WalkCheckpoint) -> None:
        # Persisting is best-effort: a full disk must degrade resume back
        # to restart-from-scratch, never kill the walk it snapshots.
        assert ckpt_store is not None
        try:
            ckpt_store.save(options.device, checkpoint)
        except OSError as exc:
            registry.counter(
                "fleet_checkpoint_errors_total", kind=type(exc).__name__
            ).inc()

    service = CompileService(
        hw,
        options.config,
        workers=options.workers,
        queue_capacity=options.queue_capacity,
        cache=cache,
        warm_polish_steps=options.warm_polish_steps,
        warm_pool=options.warm_pool,
        registry=registry,
        measurer_factory=lambda: Measurer(
            hw,
            seed=options.config.seed,
            noise_sigma=0.0,
            seconds_per_measurement=MICROBENCH_SECONDS,
            time_scale=options.time_scale,
        ),
        checkpoint_sink=persist_checkpoint if ckpt_store is not None else None,
        checkpoint_policy=(
            CheckpointPolicy(every_steps=options.checkpoint_every)
            if options.checkpoint_every is not None
            else None
        ),
    )

    outstanding: set[int] = set()
    drained = threading.Condition()

    def publish() -> None:
        if options.cache_path:
            cache.sync(options.cache_path)
        resp_q.put(
            ShardStats(
                shard=shard_index,
                metrics=registry.export_state(),
                cache_size=len(cache),
                workers=service.pool.num_workers,
            )
        )

    stop_replicator = threading.Event()

    def replicate() -> None:
        while not stop_replicator.wait(options.sync_interval_s):
            try:
                publish()
            except Exception as exc:  # repro: ignore[broad-except] - telemetry must never kill the shard
                registry.counter(
                    "fleet_sync_errors_total", kind=type(exc).__name__
                ).inc()

    replicator = threading.Thread(
        target=replicate, name=f"shard-{shard_index}-replicator", daemon=True
    )
    replicator.start()
    autoscaler = None
    if options.autoscale is not None:
        autoscaler = Autoscaler(
            service.pool, registry, options.autoscale
        ).start()

    def forward(message: WireRequest, ticket) -> None:
        wire_id = message.request_id

        def on_done(response) -> None:
            if response.ok and ckpt_store is not None:
                # The walk landed: its persisted checkpoint is spent.
                # Dropping it keeps a later crash of the *same shape* from
                # resuming a finished walk's stale snapshot.
                try:
                    ckpt_store.discard(
                        options.device,
                        shape_fingerprint(cast("ComputeDef", message.compute)),
                    )
                except OSError as exc:
                    registry.counter(
                        "fleet_checkpoint_errors_total",
                        kind=type(exc).__name__,
                    ).inc()
            resp_q.put(_encode(shard_index, wire_id, response, hw))
            with drained:
                outstanding.discard(wire_id)
                drained.notify_all()

        ticket.add_done_callback(on_done)

    resp_q.put(ShardReady(shard=shard_index, pid=os.getpid()))
    try:
        while True:
            message = req_q.get()
            if isinstance(message, WireControl):
                if message.kind == "crash":
                    os._exit(13)  # die like a SIGKILL: no cleanup, no flush
                if message.kind == "sync":
                    publish()
                    continue
                break  # stop
            registry.counter("fleet_shard_requests_total").inc()
            with drained:
                outstanding.add(message.request_id)
            forward(
                message,
                service.submit(
                    message.compute,
                    deadline_s=message.deadline_s,
                    priority=message.priority,
                    checkpoint=cast(
                        "WalkCheckpoint | None", message.checkpoint
                    ),
                    epilogues=message.epilogues,
                ),
            )
    finally:
        deadline = time.monotonic() + _DRAIN_TIMEOUT_S
        with drained:
            while outstanding and time.monotonic() < deadline:
                drained.wait(timeout=0.25)
        if autoscaler is not None:
            autoscaler.stop()
        stop_replicator.set()
        replicator.join(timeout=5.0)
        service.close()
        try:
            publish()  # final cache publication + stats
        except (OSError, ValueError) as exc:
            # Best-effort on the way out: a failed final publish (cache
            # path gone, queue closed) must not block the goodbye below.
            registry.counter(
                "fleet_sync_errors_total", kind=type(exc).__name__
            ).inc()
        resp_q.put(ShardBye(shard=shard_index))
