"""Queue-wait-driven autoscaling of a shard's worker-thread count.

The policy is a pure function of three :class:`~repro.obs.metrics.
MetricsRegistry`-backed signals — queue depth, roster size, and the queue
wait p95 — so scaling decisions are unit-testable without threads.  The
:class:`Autoscaler` thread samples those signals inside a shard process
and drives :meth:`~repro.resilience.supervisor.SupervisedWorkerPool.
resize`; every decision is published back to the registry
(``fleet_autoscale_total{direction=...}``, ``fleet_workers``) so the
dispatcher's merged metrics show the whole fleet breathing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry

__all__ = ["AutoscalePolicy", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Hysteresis band over backlog-per-worker and queue-wait p95.

    Grow when either signal says workers are scarce (backlog above
    ``depth_high`` per worker, or waits above ``wait_high_s``); shrink
    only when *both* say workers are idle.  The asymmetric band plus
    one-step moves keeps the roster from oscillating on bursty traffic.
    """

    min_workers: int = 1
    max_workers: int = 8
    #: queued items per worker beyond which the pool grows.
    depth_high: float = 2.0
    #: queue-wait p95 (seconds) beyond which the pool grows.
    wait_high_s: float = 0.5
    #: queued items per worker below which the pool may shrink.
    depth_low: float = 0.25
    #: queue-wait p95 (seconds) below which the pool may shrink.
    wait_low_s: float = 0.05
    #: workers added/removed per decision tick.
    step: int = 1

    def __post_init__(self) -> None:
        if not (1 <= self.min_workers <= self.max_workers):
            raise ValueError(
                f"need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers}..{self.max_workers}"
            )
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")

    def decide(self, workers: int, depth: int, wait_p95_s: float) -> int:
        """Target worker count given the current signals (clamped)."""
        per_worker = depth / max(1, workers)
        if per_worker > self.depth_high or wait_p95_s > self.wait_high_s:
            target = workers + self.step
        elif per_worker < self.depth_low and wait_p95_s < self.wait_low_s:
            target = workers - self.step
        else:
            target = workers
        return max(self.min_workers, min(self.max_workers, target))


class Autoscaler:
    """Samples pool/queue signals on an interval and resizes the pool."""

    def __init__(
        self,
        pool,
        registry: MetricsRegistry,
        policy: AutoscalePolicy | None = None,
        interval_s: float = 0.25,
        #: registry histogram holding queue-wait observations.
        wait_metric: str = "serve_queue_wait_seconds",
    ) -> None:
        self.pool = pool
        self.registry = registry
        self.policy = policy or AutoscalePolicy()
        self.interval_s = interval_s
        self.wait_metric = wait_metric
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="fleet-autoscaler", daemon=True
        )

    def start(self) -> "Autoscaler":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def tick(self) -> int:
        """One decision cycle (also called directly by tests): sample,
        decide, resize if the target moved, publish.  Returns the target."""
        workers = self.pool.num_workers
        depth = self.pool.depth()
        wait_p95 = self.registry.histogram(self.wait_metric).percentile(95)
        target = self.policy.decide(workers, depth, wait_p95)
        if target != workers:
            direction = "up" if target > workers else "down"
            self.pool.resize(target)
            self.registry.counter(
                "fleet_autoscale_total", direction=direction
            ).inc()
        self.registry.gauge("fleet_workers").set(self.pool.num_workers)
        return target

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.tick()
