"""repro.fleet: sharded multi-process compile fleet.

The scale-out layer over :mod:`repro.serve`: a
:class:`~repro.fleet.dispatcher.FleetDispatcher` routes compile requests
family-sticky across shard processes (each a full CompileService), with
fleet-wide single-flight dedup, a shared crash-safe on-disk
ScheduleCache with cross-process locking and warm replication,
queue-wait-driven worker autoscaling inside each shard, and supervised
respawn of dead shard processes.  ``python -m repro fleet-bench``
measures throughput vs process count and writes ``BENCH_fleet.json``.
"""

from repro.fleet.autoscale import AutoscalePolicy, Autoscaler
from repro.fleet.bench import FleetBenchReport, run_fleet_bench
from repro.fleet.dispatcher import (
    MAX_SHARD_RESENDS,
    FleetDispatcher,
    FleetResponse,
)
from repro.fleet.routing import FamilyRouter, stable_shard
from repro.fleet.shard import (
    ShardOptions,
    ShardStats,
    WireControl,
    WireRequest,
    WireResponse,
)

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "FamilyRouter",
    "FleetBenchReport",
    "FleetDispatcher",
    "FleetResponse",
    "MAX_SHARD_RESENDS",
    "ShardOptions",
    "ShardStats",
    "WireControl",
    "WireRequest",
    "WireResponse",
    "run_fleet_bench",
    "stable_shard",
]
