"""FleetDispatcher: the multi-process front-end over shard processes.

Scale-out layer of the serving stack (DESIGN §11).  One dispatcher owns
``processes`` shard processes (:mod:`repro.fleet.shard`), each a full
single-process CompileService; requests are routed family-sticky
(:mod:`repro.fleet.routing`) over per-shard FIFO queues and completions
come back on a per-shard response queue, one per process incarnation.

The dispatcher reuses the serving layer's semantics wholesale:

* **fleet-wide single-flight** — the same
  :class:`~repro.serve.singleflight.SingleFlight` keyed by
  ``(device, shape_fingerprint)`` guards admission, so duplicate
  in-flight shapes are deduped *before* they cross a process boundary;
  followers share the leader's wire response.
* **tickets** — :meth:`submit` returns the familiar
  :class:`~repro.serve.request.ServeTicket`; results are
  :class:`FleetResponse` objects carrying portable
  :class:`~repro.core.cache.CachedSchedule` payloads.
* **supervision** — a supervisor thread watches shard processes the way
  :class:`~repro.resilience.supervisor.SupervisedWorkerPool` watches its
  threads.  A dead shard is respawned on *fresh* queues: a process that
  dies mid-``put`` can leave a partial frame in its pipe, so the old
  incarnation's queues are abandoned wholesale rather than reused, and
  every unanswered request routed to the shard is re-sent on the new
  pipe, bounded by ``max_resends``.  Late duplicate responses from the
  old incarnation are dropped by request id.
* **shared cache** — every shard syncs its ScheduleCache against one
  on-disk database under an advisory file lock, so a family compiled on
  one shard warms its siblings after the next replication tick (and
  respawned shards boot warm).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, replace
from typing import cast

from repro.core.cache import (
    CachedSchedule,
    family_fingerprint,
    shape_fingerprint,
)
from repro.fleet.routing import FamilyRouter
from repro.fleet.shard import (
    ShardBye,
    ShardOptions,
    ShardReady,
    ShardStats,
    WireControl,
    WireRequest,
    WireResponse,
    run_shard,
)
from repro.ir.compute import ComputeDef
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.resilience.checkpoint import CheckpointStore
from repro.serve.request import CompileRequest, ServeTicket
from repro.serve.singleflight import SingleFlight

__all__ = ["FleetDispatcher", "FleetResponse", "MAX_SHARD_RESENDS"]

#: a request is re-sent after at most this many shard crashes before the
#: dispatcher fails it (mirrors the in-process MAX_CRASH_REQUEUES).
MAX_SHARD_RESENDS = 3


@dataclass
class FleetResponse:
    """The fleet's answer: a serve-tier-tagged portable schedule."""

    request_id: int
    tier: str
    ok: bool
    shard: int = -1
    #: portable tile configuration of the served schedule (``None`` for
    #: rejected/failed); ``schedule.instantiate(compute)`` rebuilds ETIR.
    schedule: CachedSchedule | None = None
    #: predicted kernel latency of the served schedule.
    kernel_latency_s: float | None = None
    reason: str | None = None
    coalesced: bool = False
    #: submission-to-completion wall clock for *this* request.
    service_latency_s: float = 0.0
    deadline_s: float | None = None
    #: program fusion: pool epilogues the winning schedule fused.
    fused: int = 0
    #: standalone cost of the pool epilogues the winner left unfused.
    pending_cost_s: float = 0.0
    #: compile cost (wall + simulated profiling) inside the shard.
    compile_seconds: float = 0.0

    @property
    def degraded(self) -> bool:
        return self.tier.startswith("degraded")

    def schedule_key(self) -> tuple | None:
        """Canonical comparable summary (the serve-bench parity key)."""
        if self.schedule is None:
            return None
        return (
            tuple(sorted(self.schedule.block_tiles.items())),
            tuple(sorted(self.schedule.thread_tiles.items())),
        )


@dataclass
class _InFlight:
    key: str
    wire: WireRequest
    shard: int
    ticket: ServeTicket
    deadline_s: float | None


class FleetDispatcher:
    """Sharded multi-process compile fleet behind one submit() surface.

    Args:
        options: per-shard serving recipe (device, construction config,
            worker threads, shared cache path, autoscale policy, ...).
        processes: shard process count.
        routing: family placement policy (``"hash"`` or ``"least-loaded"``).
        registry: dispatcher-side metrics sink (process-wide by default).
        max_resends: crash-requeue bound per request.
        start_timeout_s: budget for all shards to report ready at boot.
        supervise_interval_s: dead-shard poll period.
    """

    def __init__(
        self,
        options: ShardOptions,
        processes: int = 4,
        *,
        routing: str = "hash",
        registry: MetricsRegistry | None = None,
        max_resends: int = MAX_SHARD_RESENDS,
        start_timeout_s: float = 120.0,
        supervise_interval_s: float = 0.2,
    ) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self.options = options
        self.processes = processes
        self.registry = registry if registry is not None else get_registry()
        self.max_resends = max_resends
        self.supervise_interval_s = supervise_interval_s
        # spawn, not fork: the dispatcher is multi-threaded by the time a
        # crashed shard is respawned, and forking a threaded process can
        # deadlock the child on inherited lock state.
        self._ctx = mp.get_context("spawn")
        # Dispatcher-side view of the shards' shared checkpoint store: a
        # crashed shard's replacement resumes stranded walks from here.
        self._ckpt_store: CheckpointStore | None = (
            CheckpointStore(options.checkpoint_path, registry=self.registry)
            if options.checkpoint_path
            else None
        )
        self._router = FamilyRouter(processes, routing)
        self._flight = SingleFlight()
        self._lock = threading.Lock()
        self._inflight: dict[int, _InFlight] = {}
        self._loads = [0] * processes
        self._shard_stats: dict[int, ShardStats] = {}
        self._ready = threading.Semaphore(0)
        self._closed = False
        self._stopping = threading.Event()
        self.respawns = 0
        # Per-shard, per-incarnation plumbing: queues belong to exactly one
        # process generation and are abandoned (never reused) on respawn —
        # a process dying mid-put can leave a torn frame in its pipe, so
        # crossing incarnations on one pipe risks wedging the reader.
        self._req_qs: list = [None] * processes
        self._collectors: list[tuple[threading.Thread, threading.Event]] = []
        self._procs: list = [None] * processes
        for i in range(processes):
            self._procs[i] = self._spawn(i)
        self._supervisor = threading.Thread(
            target=self._supervise, name="fleet-supervisor", daemon=True
        )
        self._supervisor.start()
        deadline = time.monotonic() + start_timeout_s
        for _ in range(processes):
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._ready.acquire(timeout=remaining):
                self.close()
                raise TimeoutError(
                    f"fleet shards not ready within {start_timeout_s}s"
                )

    # -- public surface ----------------------------------------------------------

    @property
    def router(self) -> FamilyRouter:
        return self._router

    def shard_loads(self) -> list[int]:
        """Outstanding (sent, unanswered) request count per shard."""
        with self._lock:
            return list(self._loads)

    def shard_stats(self) -> dict[int, ShardStats]:
        """Latest telemetry message per shard."""
        with self._lock:
            return dict(self._shard_stats)

    def fleet_metrics(self) -> MetricsRegistry:
        """Fresh registry holding the merged view of every shard's metrics
        plus the dispatcher's own (satellite: plain-dict export/merge —
        nothing here pickles a lock)."""
        merged = MetricsRegistry()
        for stats in self.shard_stats().values():
            merged.merge_state(stats.metrics)
        merged.merge_state(self.registry.export_state())
        return merged

    def submit(
        self,
        compute: ComputeDef,
        deadline_s: float | None = None,
        priority: int = 0,
        epilogues: tuple = (),
    ) -> ServeTicket:
        """Admit one request; always returns a ticket.

        ``epilogues`` (a program fusion group's pool) travels on the wire
        with the anchor and widens the single-flight key — a fused
        compilation must never coalesce with the bare kernel's.
        """
        epilogues = tuple(epilogues)
        request = CompileRequest(
            compute=compute, deadline_s=deadline_s, priority=priority,
            epilogues=epilogues,
        )
        ticket = ServeTicket(request)
        if self._closed:
            self._resolve_refused(ticket, "shutting_down")
            return ticket
        key = f"{self.options.device}/{shape_fingerprint(compute)}"
        if epilogues:
            key += "".join(f"+{shape_fingerprint(ep)}" for ep in epilogues)
        if self._flight.attach_or_lead(key, ticket):
            self.registry.counter("fleet_coalesced_total").inc()
            return ticket  # follower: the leader's wire response is shared
        wire = WireRequest(
            request_id=request.request_id,
            compute=compute,
            deadline_s=deadline_s,
            priority=priority,
            epilogues=epilogues,
        )
        shard = self._router.route(
            family_fingerprint(compute), self.shard_loads()
        )
        with self._lock:
            self._inflight[request.request_id] = _InFlight(
                key=key, wire=wire, shard=shard, ticket=ticket,
                deadline_s=deadline_s,
            )
            self._loads[shard] += 1
        self.registry.counter(
            "fleet_requests_total", shard=str(shard)
        ).inc()
        self._req_qs[shard].put(wire)
        return ticket

    def serve(
        self,
        compute: ComputeDef,
        deadline_s: float | None = None,
        priority: int = 0,
        timeout: float | None = None,
    ) -> FleetResponse:
        """Synchronous convenience: submit and wait."""
        return self.submit(compute, deadline_s, priority).result(timeout)

    def serve_program(
        self,
        graph,
        fusion: bool = True,
        deadline_s: float | None = None,
        priority: int = 0,
        timeout: float | None = None,
    ):
        """Compile a whole ModelGraph as one program across the fleet.

        Fusion groups are planned dispatcher-side, every group's anchor +
        epilogue pool goes on the wire as an ordinary (family-routed,
        coalescable) request, and the program is reassembled from the
        shards' wire responses.  ``best_config`` per group is left empty:
        schedules travel as :class:`CachedSchedule`, available on each
        ticket's :class:`FleetResponse`.
        """
        import time as time_mod

        from repro.models.program import CompiledProgram
        from repro.serve.program import (
            ProgramRequest,
            ProgramResponse,
            build_group,
        )

        request = ProgramRequest.from_graph(
            graph, fusion=fusion, deadline_s=deadline_s, priority=priority
        )
        t0 = time_mod.perf_counter()
        tickets = [
            self.submit(
                group.anchor,
                deadline_s=deadline_s,
                priority=priority,
                epilogues=group.epilogues,
            )
            for group in request.groups
        ]
        compiled = []
        tiers = []
        for group, ticket in zip(request.groups, tickets):
            response = ticket.result(timeout)
            if not response.ok or response.kernel_latency_s is None:
                return ProgramResponse(
                    request_id=request.request_id,
                    ok=False,
                    reason=f"group {group.anchor.name!r}: "
                           f"{response.reason or response.tier}",
                    service_latency_s=time_mod.perf_counter() - t0,
                )
            compiled.append(
                build_group(
                    group,
                    fused=response.fused,
                    kernel_latency_s=response.kernel_latency_s,
                    pending_cost_s=response.pending_cost_s,
                    compile_seconds=response.compile_seconds,
                )
            )
            tiers.append(response.tier)
        program = CompiledProgram(
            model=request.model,
            batch=request.batch,
            groups=compiled,
            method="gensor",
        )
        return ProgramResponse(
            request_id=request.request_id,
            ok=True,
            program=program,
            tiers=tuple(tiers),
            service_latency_s=time_mod.perf_counter() - t0,
        )

    def sync(self) -> None:
        """Ask every shard for an immediate cache sync + stats publication."""
        for q in self._req_qs:
            q.put(WireControl("sync"))

    def close(self, join_timeout_s: float = 60.0) -> None:
        """Stop admission, drain shards, reap processes.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for q in self._req_qs:
            try:
                q.put(WireControl("stop"))
            except (OSError, ValueError):  # pragma: no cover - dead queue
                pass
        # The collectors keep consuming while shards drain — a shard
        # blocked putting its last responses must never deadlock shutdown.
        deadline = time.monotonic() + join_timeout_s
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self._stopping.set()
        self._supervisor.join(timeout=5.0)
        for thread, stop in self._collectors:
            stop.set()
            thread.join(timeout=5.0)
        # Anything still unanswered is refused, never left hanging.
        with self._lock:
            leftovers = list(self._inflight.values())
            self._inflight.clear()
        for flight in leftovers:
            self._fulfill(
                flight,
                FleetResponse(
                    request_id=flight.wire.request_id,
                    tier="failed",
                    ok=False,
                    reason="shutting_down",
                    deadline_s=flight.deadline_s,
                ),
            )
        for q in self._req_qs:
            q.close()
            q.cancel_join_thread()

    def __enter__(self) -> "FleetDispatcher":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- shard lifecycle ---------------------------------------------------------

    def _spawn(self, shard: int) -> None:
        """Start a fresh incarnation: new queues, new collector, new process."""
        req_q = self._ctx.Queue()
        resp_q = self._ctx.Queue()
        self._req_qs[shard] = req_q
        stop = threading.Event()
        collector = threading.Thread(
            target=self._collect,
            args=(resp_q, stop),
            name=f"fleet-collector-{shard}",
            daemon=True,
        )
        collector.start()
        self._collectors.append((collector, stop))
        proc = self._ctx.Process(
            target=run_shard,
            args=(shard, self.options, req_q, resp_q),
            name=f"fleet-shard-{shard}",
            daemon=True,
        )
        proc.start()
        return proc

    def _supervise(self) -> None:
        while not self._stopping.wait(self.supervise_interval_s):
            if self._closed:
                continue
            for shard, proc in enumerate(self._procs):
                if proc is not None and not proc.is_alive() and not self._closed:
                    self._respawn(shard)

    def _respawn(self, shard: int) -> None:
        self.respawns += 1
        self.registry.counter(
            "fleet_shard_respawns_total", shard=str(shard)
        ).inc()
        # Fresh queues: anything still in the old pipes (including frames
        # torn by the crash) is abandoned.  Every unanswered request for
        # this shard sits in _inflight, so it is re-sent below; a late
        # duplicate answer from the old incarnation is dropped by id.
        self._procs[shard] = self._spawn(shard)
        with self._lock:
            stranded = [
                f for f in self._inflight.values() if f.shard == shard
            ]
        for flight in stranded:
            wire = flight.wire
            if wire.resends >= self.max_resends:
                with self._lock:
                    self._inflight.pop(wire.request_id, None)
                    self._loads[shard] = max(0, self._loads[shard] - 1)
                self._fulfill_with_followers(
                    flight,
                    FleetResponse(
                        request_id=wire.request_id,
                        tier="failed",
                        ok=False,
                        shard=shard,
                        reason="shard_crash",
                        deadline_s=flight.deadline_s,
                    ),
                )
                continue
            resent = replace(wire, resends=wire.resends + 1)
            if self._ckpt_store is not None:
                # Resume, don't restart: attach the crashed incarnation's
                # last persisted checkpoint so the replacement shard
                # continues the walk (wasted recompute is bounded by one
                # checkpoint interval instead of the whole walk so far).
                checkpoint = self._ckpt_store.load(
                    self.options.device,
                    shape_fingerprint(cast(ComputeDef, wire.compute)),
                )
                if checkpoint is not None:
                    resent = replace(resent, checkpoint=checkpoint)
                    self.registry.counter(
                        "fleet_checkpoint_resumes_total"
                    ).inc()
            with self._lock:
                if wire.request_id in self._inflight:
                    self._inflight[wire.request_id] = replace(
                        flight, wire=resent
                    )
            self._req_qs[shard].put(resent)

    # -- response path -----------------------------------------------------------

    def _collect(self, resp_q, stop: threading.Event) -> None:
        """Drain one incarnation's response queue until told to stop."""
        while True:
            try:
                message = resp_q.get(timeout=0.2)
            except queue_mod.Empty:
                if stop.is_set() or self._stopping.is_set():
                    return
                continue
            except (OSError, ValueError, EOFError):  # pragma: no cover
                return  # queue torn down during shutdown
            if isinstance(message, WireResponse):
                self._on_response(message)
            elif isinstance(message, ShardStats):
                with self._lock:
                    self._shard_stats[message.shard] = message
            elif isinstance(message, ShardReady):
                self._ready.release()
            elif isinstance(message, ShardBye):
                pass

    def _on_response(self, wire: WireResponse) -> None:
        with self._lock:
            flight = self._inflight.pop(wire.request_id, None)
            if flight is not None:
                self._loads[flight.shard] = max(
                    0, self._loads[flight.shard] - 1
                )
        if flight is None:
            # A request resolved twice: a crash-resend answered by both the
            # old and new shard incarnations.  First answer won; drop this.
            self.registry.counter("fleet_duplicate_responses_total").inc()
            return
        response = FleetResponse(
            request_id=wire.request_id,
            tier=wire.tier,
            ok=wire.ok,
            shard=wire.shard,
            schedule=wire.schedule,
            kernel_latency_s=wire.kernel_latency_s,
            reason=wire.reason,
            deadline_s=flight.deadline_s,
            fused=wire.fused,
            pending_cost_s=wire.pending_cost_s,
            compile_seconds=wire.compile_seconds,
        )
        self._fulfill_with_followers(flight, response)

    def _fulfill_with_followers(
        self, flight: _InFlight, response: FleetResponse
    ) -> None:
        followers = self._flight.complete(flight.key)
        self._fulfill(flight, response)
        now = time.perf_counter()
        for follower in followers:
            shared = replace(
                response,
                request_id=follower.request.request_id,
                coalesced=True,
                deadline_s=follower.request.deadline_s,
                service_latency_s=now - follower.request.submitted_at,
            )
            follower.fulfill(shared)
            self._record(shared)

    def _fulfill(self, flight: _InFlight, response: FleetResponse) -> None:
        response.service_latency_s = (
            time.perf_counter() - flight.ticket.request.submitted_at
        )
        flight.ticket.fulfill(response)
        self._record(response)

    def _resolve_refused(self, ticket: ServeTicket, reason: str) -> None:
        response = FleetResponse(
            request_id=ticket.request.request_id,
            tier="rejected",
            ok=False,
            reason=reason,
            deadline_s=ticket.request.deadline_s,
        )
        ticket.fulfill(response)
        self._record(response)

    def _record(self, response: FleetResponse) -> None:
        self.registry.counter(
            "fleet_responses_total", tier=response.tier
        ).inc()
        self.registry.histogram("fleet_latency_seconds").observe(
            response.service_latency_s
        )
