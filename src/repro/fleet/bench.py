"""fleet-bench: throughput vs shard-process count on the replay traces.

``python -m repro fleet-bench`` replays the synthetic BERT/GPT-2 dynamic
shape stream (:mod:`repro.models.trace`) through
:class:`~repro.fleet.dispatcher.FleetDispatcher` at increasing process
counts and writes ``BENCH_fleet.json`` — throughput, p50/p95 latency and
tier mix per process count, process-scaling ratios (4v1, 8v1), routing
balance, plus two correctness sections:

* **parity** — a sequential (window=1) replay through the fleet must
  produce request-for-request identical schedules to the single-process
  CompileService on the same trace.  Family-sticky routing pins each
  operator family's request order to one FIFO shard pipe, and families
  never warm-start each other, so the fleet preserves the single-process
  determinism exactly; ``parity.mismatches`` must be 0.
* **autoscale** — a short bursty run with the queue-wait autoscaler
  enabled, reporting scale-up/down event counts and the worker peak.

Scaling here is wall-clock real: each shard's simulated profiling cost
elapses in real time (``time_scale=1.0``) and the construction walks are
CPU-bound Python, so added processes buy both GIL-free CPU parallelism
(on multi-core runners) and deeper profiling overlap.  The CI gate
(``--min-process-scaling``) runs on the quick suite like the
walker-scaling gate of ``bench walk``.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.cache import shape_fingerprint
from repro.core.constructor import GensorConfig
from repro.fleet.autoscale import AutoscalePolicy
from repro.fleet.dispatcher import FleetDispatcher
from repro.fleet.shard import ShardOptions
from repro.models.trace import shape_stream, trace_summary
from repro.obs.metrics import MetricsRegistry
from repro.serve.stats import percentile

__all__ = ["FleetBenchReport", "fleet_quick_config", "run_fleet_bench"]

#: per-ticket wait cap — generous; a stuck fleet should fail loudly.
_RESULT_TIMEOUT_S = 600.0


def fleet_quick_config(seed: int = 0) -> GensorConfig:
    """CI-grade construction budget: one short chain, minimal polish.

    Small enough that a quick fleet-bench run is profiling-sleep-dominated
    (which is what process scaling overlaps) while still exercising the
    full cold -> warm -> hit tier ladder.
    """
    return GensorConfig(
        seed=seed,
        num_chains=1,
        top_k=2,
        polish_steps=2,
        max_iterations_per_chain=12,
    )


@dataclass
class FleetBenchReport:
    """Outcome of one fleet-bench invocation (the BENCH_fleet payload)."""

    model: str
    device: str
    requests: int
    unique_shapes: int
    workers_per_shard: int
    window: int
    time_scale: float
    quick: bool
    #: str(process_count) -> per-run measurements.
    runs: dict = field(default_factory=dict)
    #: e.g. ``{"4v1": 2.8, "8v1": 4.9}``.
    scaling: dict = field(default_factory=dict)
    parity: dict = field(default_factory=dict)
    autoscale: dict = field(default_factory=dict)
    total_wall_s: float = 0.0

    def to_json(self) -> dict:
        return {
            "bench": "fleet",
            "model": self.model,
            "device": self.device,
            "requests": self.requests,
            "unique_shapes": self.unique_shapes,
            "workers_per_shard": self.workers_per_shard,
            "window": self.window,
            "time_scale": self.time_scale,
            "quick": self.quick,
            "runs": self.runs,
            "process_scaling": self.scaling,
            "parity": self.parity,
            "autoscale": self.autoscale,
            "total_wall_s": self.total_wall_s,
        }

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"fleet-bench — {self.model} x{self.requests} "
            f"({self.unique_shapes} unique shapes), "
            f"{self.workers_per_shard} workers/shard on {self.device}",
            f"{'procs':>5} {'wall_s':>8} {'req/s':>8} "
            f"{'p50_ms':>8} {'p95_ms':>8} {'failed':>6}",
        ]
        for label, run in sorted(
            self.runs.items(), key=lambda kv: int(kv[0])
        ):
            lines.append(
                f"{label:>5} {run['wall_s']:>8.2f} "
                f"{run['requests_per_s']:>8.2f} "
                f"{run['p50_latency_s'] * 1e3:>8.1f} "
                f"{run['p95_latency_s'] * 1e3:>8.1f} "
                f"{run['failed']:>6}"
            )
        for label, ratio in sorted(self.scaling.items()):
            lines.append(f"scaling {label}: {ratio:.2f}x")
        if self.parity:
            lines.append(
                f"parity: {self.parity['mismatches']} mismatches over "
                f"{self.parity['compared']} requests "
                f"({self.parity['processes']} processes vs 1)"
            )
        if self.autoscale:
            lines.append(
                f"autoscale: {self.autoscale['scale_ups']} up / "
                f"{self.autoscale['scale_downs']} down, "
                f"peak {self.autoscale['peak_workers']} workers"
            )
        return "\n".join(lines)


def _replay(
    trace,
    options: ShardOptions,
    processes: int,
    window: int,
    routing: str = "least-loaded",
    on_wait=None,
) -> tuple[dict, list]:
    """One closed-loop replay; returns (measurements, responses).

    ``on_wait(fleet)`` is invoked between completions (telemetry probes).
    """
    registry = MetricsRegistry()
    responses = []
    outstanding: deque = deque()

    def drain_one(fleet) -> None:
        responses.append(
            outstanding.popleft().result(timeout=_RESULT_TIMEOUT_S)
        )
        if on_wait is not None:
            on_wait(fleet)

    boot0 = time.perf_counter()
    with FleetDispatcher(
        options, processes, routing=routing, registry=registry
    ) as fleet:
        # Steady-state wall only: spawn-booting N interpreters is a fixed
        # one-time cost (reported separately), not serving throughput.
        t0 = time.perf_counter()
        boot_s = t0 - boot0
        for compute in trace:
            if len(outstanding) >= window:
                drain_one(fleet)
            outstanding.append(fleet.submit(compute))
        while outstanding:
            drain_one(fleet)
        wall = time.perf_counter() - t0
        respawns = fleet.respawns
        assignments = fleet.router.assignments()
        merged = fleet.fleet_metrics()
    latencies = [r.service_latency_s for r in responses]
    tiers: dict[str, int] = {}
    for r in responses:
        tiers[r.tier] = tiers.get(r.tier, 0) + 1
    shard_requests = {
        dict(labels).get("shard", "?"): counter.value
        for labels, counter in registry.series("fleet_requests_total").items()
    }
    run = {
        "processes": processes,
        "boot_s": boot_s,
        "wall_s": wall,
        "requests_per_s": len(responses) / wall if wall > 0 else 0.0,
        "p50_latency_s": percentile(latencies, 50),
        "p95_latency_s": percentile(latencies, 95),
        "tiers": tiers,
        "failed": sum(1 for r in responses if not r.ok),
        "coalesced": sum(1 for r in responses if r.coalesced),
        "shard_requests": shard_requests,
        "families": dict(sorted(assignments.items())),
        "shard_respawns": respawns,
        # Resilience telemetry merged across shard processes: walk steps
        # re-done past the last checkpoint, checkpoints taken, and
        # dispatcher-side checkpoint resumes after shard crashes.
        "resilience": {
            "wasted_states": merged.total("resilience_wasted_states_total"),
            "checkpoints": merged.total("resilience_checkpoints_total"),
            "checkpoint_resumes": merged.total(
                "fleet_checkpoint_resumes_total"
            ),
        },
    }
    return run, responses


def _parity_check(
    trace,
    options: ShardOptions,
    processes: int,
    model: str,
    num_requests: int,
    seed: int,
) -> dict:
    """Sequential fleet replay vs sequential single-process serve.

    Both sides run window=1 (one outstanding request fleet-wide), the
    regime where schedules are order-deterministic; every request must
    then be identical between a 1-process CompileService and an
    N-process fleet.  time_scale=0 on both sides — parity is about
    schedules, not wall clock.
    """
    from repro.serve.bench import run_serve_bench

    fast = replace(
        options, workers=1, time_scale=0.0, cache_path=None, autoscale=None
    )
    _, responses = _replay(trace, fast, processes, window=1)
    fleet_schedules = [
        (shape_fingerprint(c), r.schedule_key())
        for c, r in zip(
            trace, sorted(responses, key=lambda r: r.request_id)
        )
    ]
    single = run_serve_bench(
        model=model,
        num_requests=num_requests,
        workers=1,
        device_name=options.device,
        seed=seed,
        window=1,
        time_scale=0.0,
        config=options.config,
    )
    mismatches = [
        {"shape": fp_fleet, "fleet": key_fleet, "single": key_single}
        for (fp_fleet, key_fleet), (fp_single, key_single) in zip(
            fleet_schedules, single.schedules
        )
        if fp_fleet != fp_single or key_fleet != key_single
    ]
    return {
        "processes": processes,
        "compared": len(fleet_schedules),
        "mismatches": len(mismatches),
        "first_mismatches": mismatches[:5],
    }


def _autoscale_demo(trace, options: ShardOptions, window: int) -> dict:
    """Bursty single-shard run with the queue-wait autoscaler enabled."""
    policy = AutoscalePolicy(
        min_workers=1,
        max_workers=max(4, options.workers),
        depth_high=1.0,
        wait_high_s=0.02,
        depth_low=0.25,
        wait_low_s=0.005,
    )
    demo = replace(
        options,
        workers=1,  # start minimal; the backlog should grow the roster
        autoscale=policy,
        sync_interval_s=0.2,
    )
    peak = demo.workers
    outstanding: deque = deque()
    done = 0
    t0 = time.perf_counter()
    fleet = FleetDispatcher(demo, 1, registry=MetricsRegistry())
    try:
        for compute in trace:
            if len(outstanding) >= window:
                outstanding.popleft().result(timeout=_RESULT_TIMEOUT_S)
                done += 1
                for stats in fleet.shard_stats().values():
                    peak = max(peak, stats.workers)
            outstanding.append(fleet.submit(compute))
        while outstanding:
            outstanding.popleft().result(timeout=_RESULT_TIMEOUT_S)
            done += 1
        wall = time.perf_counter() - t0
    finally:
        fleet.close()
    # The shard publishes one final metrics export while draining, so the
    # post-close merged view carries the full autoscale event history.
    merged = fleet.fleet_metrics()
    events = {
        dict(labels).get("direction", "?"): counter.value
        for labels, counter in merged.series("fleet_autoscale_total").items()
    }
    return {
        "policy": {
            "min_workers": policy.min_workers,
            "max_workers": policy.max_workers,
            "depth_high": policy.depth_high,
            "wait_high_s": policy.wait_high_s,
        },
        "start_workers": demo.workers,
        "peak_workers": peak,
        "scale_ups": events.get("up", 0),
        "scale_downs": events.get("down", 0),
        "requests_per_s": done / wall if wall > 0 else 0.0,
    }


def run_fleet_bench(
    model: str = "bert",
    num_requests: int | None = None,
    process_counts: tuple[int, ...] | None = None,
    workers_per_shard: int = 1,
    device_name: str = "rtx4090",
    seed: int = 0,
    window: int = 32,
    time_scale: float = 1.0,
    quick: bool = False,
    config: GensorConfig | None = None,
    routing: str = "least-loaded",
    check_parity: bool = True,
    autoscale_demo: bool = True,
    cache_dir: str | None = None,
) -> FleetBenchReport:
    """Sweep shard-process counts over one replay trace.

    Each process count gets a *fresh* shared cache directory so every run
    pays the same cold-compile bill — scaling ratios compare equal work.
    ``quick`` shrinks the trace and construction budget to CI size and
    drops the 8-process point.

    ``workers_per_shard`` defaults to 1 — one serving lane per process —
    so the process count is the only concurrency knob the scaling ratios
    measure.  Raising it trades process scaling for per-shard thread
    overlap (a single 4-worker shard already overlaps most profiling
    sleeps, which flattens the curve).
    """
    if num_requests is None:
        num_requests = 48 if quick else 160
    if process_counts is None:
        process_counts = (1, 4) if quick else (1, 4, 8)
    if config is None:
        config = fleet_quick_config(seed) if quick else None
    if config is None:
        from repro.serve.bench import bench_config

        config = bench_config(seed)
    trace = shape_stream(model, num_requests=num_requests, seed=seed)
    summary = trace_summary(trace)
    # Mirror serve-bench's warm parameters so the sequential parity replay
    # compares like against like.
    options = ShardOptions(
        device=device_name,
        config=config,
        workers=workers_per_shard,
        queue_capacity=max(2 * window, 64),
        warm_polish_steps=4,
        warm_pool=2,
        time_scale=time_scale,
        sync_interval_s=0.5,
    )
    report = FleetBenchReport(
        model=model,
        device=device_name,
        requests=num_requests,
        unique_shapes=summary.unique_shapes,
        workers_per_shard=workers_per_shard,
        window=window,
        time_scale=time_scale,
        quick=quick,
    )
    t0 = time.perf_counter()
    scratch = Path(cache_dir) if cache_dir else Path(tempfile.mkdtemp())
    try:
        for processes in process_counts:
            run_dir = scratch / f"p{processes}"
            run_dir.mkdir(parents=True, exist_ok=True)
            run_opts = replace(
                options,
                cache_path=str(run_dir / "fleet_cache.json"),
                checkpoint_path=str(run_dir / "checkpoints"),
            )
            run, _ = _replay(
                trace, run_opts, processes, window, routing=routing
            )
            report.runs[str(processes)] = run
        base = report.runs.get("1")
        if base and base["requests_per_s"] > 0:
            for processes in process_counts:
                if processes == 1:
                    continue
                run = report.runs[str(processes)]
                report.scaling[f"{processes}v1"] = (
                    run["requests_per_s"] / base["requests_per_s"]
                )
        if check_parity:
            parity_procs = max(p for p in process_counts)
            report.parity = _parity_check(
                trace, options, parity_procs, model, num_requests, seed
            )
        if autoscale_demo:
            report.autoscale = _autoscale_demo(trace, options, window)
    finally:
        if cache_dir is None:
            shutil.rmtree(scratch, ignore_errors=True)
    report.total_wall_s = time.perf_counter() - t0
    return report
