"""Gensor reproduction: graph-based construction tensor compilation.

A full-stack reproduction of *"Gensor: A Graph-Based Construction Tensor
Compilation Method for Deep Learning"* (IPPS 2025) on a simulated GPU
substrate:

* :mod:`repro.ir` — tensor-expression IR, the ETIR tile representation,
  scheduling primitives, and loop nests;
* :mod:`repro.hardware` — analytical device models (RTX 4090, Orin Nano);
* :mod:`repro.sim` — the GPU performance simulator and correctness oracle;
* :mod:`repro.core` — Gensor itself: the construction graph, Markov
  analysis, and the annealed constructor;
* :mod:`repro.baselines` — Roller, Ansor, cuBLAS-like templates, PyTorch
  eager, and DietCode;
* :mod:`repro.codegen` — lowering and CUDA-like source emission;
* :mod:`repro.models` — end-to-end networks (ResNet, BERT, MobileNetV2,
  GPT-2) and the model runner;
* :mod:`repro.workloads` — the paper's benchmark operator tables;
* :mod:`repro.experiments` — one module per reproduced table/figure.

Quickstart::

    from repro import Gensor, rtx4090, operators
    gensor = Gensor(rtx4090())
    result = gensor.compile(operators.matmul(4096, 4096, 4096))
    print(result.best_metrics.summary())
"""

from repro.core import Gensor, GensorConfig, GensorResult
from repro.hardware import HardwareSpec, generic_gpu, orin_nano, rtx4090
from repro.ir import ETIR, ComputeDef, operators
from repro.sim import CostModel, Measurer

__version__ = "0.1.0"

__all__ = [
    "Gensor",
    "GensorConfig",
    "GensorResult",
    "HardwareSpec",
    "rtx4090",
    "orin_nano",
    "generic_gpu",
    "ETIR",
    "ComputeDef",
    "operators",
    "CostModel",
    "Measurer",
    "__version__",
]
