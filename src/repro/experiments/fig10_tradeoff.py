"""Fig. 10 reproduction: inference performance vs optimization time.

ResNet-34 with input [128, 3, 224, 224] on the RTX 4090.  Each method is a
point: (total optimization time, end-to-end inference throughput).  The
paper's reading: Gensor sits near Ansor's performance at roughly Roller's
optimization time — the top-left corner of the scatter.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    device,
    make_methods,
    resolve_quick,
)
from repro.models import compile_and_time, resnet34
from repro.utils.tables import Table

_METHODS = ("pytorch", "roller", "gensor", "ansor")


def run(device_name: str = "rtx4090", quick: bool | None = None) -> ExperimentResult:
    quick = resolve_quick(quick)
    hw = device(device_name)
    methods = make_methods(hw, quick)
    graph = resnet34(batch=128)
    table = Table(
        "Method", "Opt time (s)", "Throughput (inf/s)", "Relative perf",
        title=f"Fig. 10 — perf vs optimization time, ResNet-34 ({hw.name})",
    )
    rows: dict[str, dict[str, float]] = {}
    results = {}
    for m in _METHODS:
        results[m] = compile_and_time(graph, methods[m], m)
    best = max(r.throughput for r in results.values())
    for m in _METHODS:
        res = results[m]
        rows[m] = {
            "opt_seconds": res.compile_seconds,
            "throughput": res.throughput,
            "relative": res.throughput / best,
        }
        table.add_row(
            m,
            f"{res.compile_seconds:.2f}",
            f"{res.throughput:.1f}",
            f"{res.throughput / best:.2f}",
        )
    notes = [
        "expected corner: Gensor ~ Ansor performance at ~Roller optimization time",
    ]
    return ExperimentResult(name="fig10_tradeoff", table=table, rows=rows, notes=notes)


if __name__ == "__main__":  # pragma: no cover
    run().print()
