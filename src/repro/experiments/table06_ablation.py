"""Table VI reproduction: graph construction and vThread ablation.

Three method variants on one operator per family (C1, G1=M1, V1, P1):

* Roller — the tree baseline,
* Gensor w/o vThread — graph construction only,
* Gensor — graph construction + vThreads.

Reported per cell: FLOPS, SM occupancy, memory busy.  The paper attributes
~79% of Gensor's total gain to the graph construction and ~21% to vThreads;
the experiment computes the same attribution from the measured FLOPS.
"""

from __future__ import annotations

from repro.baselines import Roller
from repro.core import Gensor, GensorConfig
from repro.experiments.common import (
    ExperimentResult,
    SEED,
    device,
    resolve_quick,
)
from repro.utils.tables import Table
from repro.workloads.ablation import build_ablation


def run(device_name: str = "rtx4090", quick: bool | None = None) -> ExperimentResult:
    quick = resolve_quick(quick)
    hw = device(device_name)
    # Stochastic variants take the best schedule across a few seeds (more
    # chains is exactly what a production run would use); Roller is
    # deterministic.
    seeds = (SEED, SEED + 1) if quick else (SEED, SEED + 1, SEED + 2)
    variants = {
        "Roller": [Roller(hw)],
        "Gensor w/o vThread": [
            Gensor(hw, GensorConfig(seed=s, enable_vthread=False)) for s in seeds
        ],
        "Gensor": [Gensor(hw, GensorConfig(seed=s)) for s in seeds],
    }
    table = Table(
        "Op", "Method", "FLOPS", "SM Occ.", "MemBusy",
        title=f"Table VI — graph construction & vThread ablation ({hw.name})",
    )
    rows: dict[str, dict[str, dict[str, float]]] = {}
    graph_share_total = 0.0
    vthread_share_total = 0.0
    counted = 0
    for title, compute in build_ablation():
        rows[title] = {}
        for vname, compilers in variants.items():
            results = [c.compile(compute) for c in compilers]
            res = min(results, key=lambda r: r.best_metrics.latency_s)
            met = res.best_metrics
            rows[title][vname] = {
                "flops": met.achieved_flops,
                "sm_occ": met.sm_occupancy,
                "mem_busy": met.mem_busy,
            }
            table.add_row(
                title,
                vname,
                f"{met.achieved_flops / 1e12:.2f}T",
                f"{met.sm_occupancy:.1%}",
                f"{met.mem_busy:.1%}",
            )
        base = rows[title]["Roller"]["flops"]
        no_vt = rows[title]["Gensor w/o vThread"]["flops"]
        full = rows[title]["Gensor"]["flops"]
        total_gain = full - base
        if total_gain > 0:
            graph_share_total += (no_vt - base) / total_gain
            vthread_share_total += (full - no_vt) / total_gain
            counted += 1
    notes = []
    if counted:
        notes.append(
            f"gain attribution: graph construction {graph_share_total / counted:.1%}, "
            f"vThread {vthread_share_total / counted:.1%} "
            "(paper: 79.24% / 20.76%)"
        )
    return ExperimentResult(
        name="table06_ablation", table=table, rows=rows, notes=notes
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
