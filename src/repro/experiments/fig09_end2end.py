"""Fig. 9 reproduction: end-to-end model performance on both devices.

RTX 4090 (Fig. 9a): PyTorch / Roller / Gensor relative to Ansor (= 1.0) on
BERT-small, ResNet-50, MobileNetV2, GPT-2.

Orin Nano (Fig. 9b): Ansor cannot search on the edge device (out of
memory) and GPT-2 does not fit, so the baseline switches to Roller and the
model set drops GPT-2 — both exactly as the paper does.

Expected shape: Gensor ~1.2x Roller on the 4090 (~1.19x on Orin), PyTorch
far behind (7.2x / 2.6x slower), Gensor comparable to Ansor.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.common import (
    ExperimentResult,
    device,
    make_methods,
    resolve_quick,
)
from repro.models import (
    ModelGraph,
    bert_small,
    compile_and_time,
    gpt2,
    mobilenet_v2,
    resnet50,
)
from repro.utils.tables import Table


def _models(batch_scale: int = 1) -> dict[str, Callable[[], ModelGraph]]:
    return {
        "bert_small": lambda: bert_small(batch=32 // batch_scale, seq=128),
        "resnet50": lambda: resnet50(batch=128 // batch_scale),
        "mobilenetv2": lambda: mobilenet_v2(batch=128 // batch_scale),
        "gpt2": lambda: gpt2(batch=8, seq=512),
    }


def run(
    device_name: str = "rtx4090",
    quick: bool | None = None,
    models: list[str] | None = None,
) -> ExperimentResult:
    quick = resolve_quick(quick)
    hw = device(device_name)
    methods = make_methods(hw, quick)
    edge = device_name == "orin_nano"
    if edge:
        # Ansor cannot search on the edge device; GPT-2 does not fit in 8 GB.
        baseline_name = "roller"
        method_names = ["pytorch", "gensor"]
        model_set = {
            k: v for k, v in _models(batch_scale=4).items() if k != "gpt2"
        }
    else:
        baseline_name = "ansor"
        method_names = ["pytorch", "roller", "gensor"]
        model_set = _models()
    if models is not None:
        model_set = {k: v for k, v in model_set.items() if k in models}

    table = Table(
        "Model",
        f"{baseline_name} (inf/s)",
        *(f"{m}/{baseline_name}" for m in method_names),
        title=f"Fig. 9 — end-to-end performance on {hw.name} (baseline {baseline_name})",
    )
    rows: dict[str, dict[str, float]] = {}
    for model_name, factory in model_set.items():
        graph = factory()
        baseline = compile_and_time(graph, methods[baseline_name], baseline_name)
        rows[model_name] = {baseline_name: 1.0, "_baseline_throughput": baseline.throughput}
        cells = [f"{baseline.throughput:.1f}"]
        for m in method_names:
            # Gensor compiles the whole graph as one fusion-aware program
            # (whole-graph compilation); baselines stay per-op.
            res = compile_and_time(
                graph, methods[m], m, program=(m == "gensor")
            )
            rel = res.throughput / baseline.throughput
            rows[model_name][m] = rel
            cells.append(f"{rel:.2f}")
        table.add_row(model_name, *cells)

    gensor_rel = [rows[m]["gensor"] for m in rows]
    pytorch_rel = [rows[m]["pytorch"] for m in rows]
    notes = []
    if edge:
        notes.append(
            f"Gensor is {sum(gensor_rel) / len(gensor_rel):.2f}x Roller on average "
            "(paper: 1.19x); PyTorch at "
            f"{sum(pytorch_rel) / len(pytorch_rel):.2f}x Roller "
            "(paper: Gensor = 2.6x PyTorch)"
        )
    else:
        roller_rel = [rows[m]["roller"] for m in rows]
        notes.append(
            f"Gensor / Roller avg: "
            f"{sum(g / r for g, r in zip(gensor_rel, roller_rel)) / len(gensor_rel):.2f}x "
            "(paper: 1.2x)"
        )
        notes.append(
            f"Gensor / PyTorch avg: "
            f"{sum(g / p for g, p in zip(gensor_rel, pytorch_rel)) / len(gensor_rel):.2f}x "
            "(paper: 7.2x)"
        )
    return ExperimentResult(name=f"fig09_{device_name}", table=table, rows=rows, notes=notes)


if __name__ == "__main__":  # pragma: no cover
    run().print()
    run("orin_nano").print()
