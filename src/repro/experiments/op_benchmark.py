"""Shared engine for the per-operator figures (Figs. 6 and 7).

Runs cuBLAS, Roller, Gensor, and Ansor over the Table IV suite on one
device and reports FLOPS relative to Ansor (the paper's normalization).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentResult,
    SEED,
    device,
    make_methods,
    resolve_quick,
)
from repro.utils.tables import Table
from repro.workloads import TABLE4_CONFIGS

__all__ = ["run_op_benchmark", "OpRow"]

_METHODS = ("cublas", "roller", "gensor")


@dataclass
class OpRow:
    label: str
    family: str
    ansor_flops: float
    relative: dict[str, float]


def run_op_benchmark(
    device_name: str,
    quick: bool | None = None,
    labels: list[str] | None = None,
    seed: int = SEED,
) -> ExperimentResult:
    quick = resolve_quick(quick)
    hw = device(device_name)
    methods = make_methods(hw, quick, seed)
    configs = [
        c for c in TABLE4_CONFIGS if labels is None or c.label in labels
    ]
    rows: list[OpRow] = []
    for cfg in configs:
        compute = cfg.build()
        ansor_res = methods["ansor"].compile(compute)
        ansor_flops = ansor_res.best_metrics.achieved_flops
        rel: dict[str, float] = {}
        for m in _METHODS:
            res = methods[m].compile(compute)
            rel[m] = res.best_metrics.achieved_flops / ansor_flops
        rows.append(OpRow(cfg.label, cfg.family, ansor_flops, rel))

    table = Table(
        "Op", "Ansor (T)", *(f"{m}/ansor" for m in _METHODS),
        title=(
            f"Operator FLOPS on {hw.name} relative to Ansor "
            f"({'quick' if quick else 'full'} budgets)"
        ),
    )
    for row in rows:
        table.add_row(
            row.label,
            f"{row.ansor_flops / 1e12:.3f}",
            *(f"{row.relative[m]:.2f}" for m in _METHODS),
        )

    gensor_vs_roller = [
        row.relative["gensor"] / row.relative["roller"] for row in rows
    ]
    avg_gain = sum(gensor_vs_roller) / len(gensor_vs_roller)
    max_gain = max(gensor_vs_roller)
    gensor_vs_cublas = [
        row.relative["gensor"] / row.relative["cublas"] for row in rows
    ]
    avg_vs_cublas = sum(gensor_vs_cublas) / len(gensor_vs_cublas)
    notes = [
        f"Gensor over Roller: avg {avg_gain:.2f}x, max {max_gain:.2f}x "
        "(paper: avg 1.18x, max 1.30x)",
        f"Gensor relative to cuBLAS: avg {avg_vs_cublas:.2f}x "
        "(paper: 81.2% of cuBLAS on average)",
    ]
    return ExperimentResult(
        name=f"ops_{device_name}",
        table=table,
        rows={
            "rows": rows,
            "gensor_over_roller_avg": avg_gain,
            "gensor_over_roller_max": max_gain,
            "gensor_over_cublas_avg": avg_vs_cublas,
        },
        notes=notes,
    )
