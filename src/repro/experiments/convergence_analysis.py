"""§IV-D reproduction: executable Markov convergence analysis.

Materializes a bounded construction subgraph for a small GEMM, builds its
transition matrix, and verifies the paper's claims: same-level
irreducibility (inverse tiling), aperiodicity, value-iteration convergence
in on the order of 100 iterations, and a stationary distribution
concentrated on high-payoff states.
"""

from __future__ import annotations

from repro.core import convergence
from repro.experiments.common import ExperimentResult, device, resolve_quick
from repro.ir import operators as ops
from repro.utils.tables import Table


def run(device_name: str = "rtx4090", quick: bool | None = None) -> ExperimentResult:
    resolve_quick(quick)
    hw = device(device_name)
    # Non-power-of-two extents give the chain odd return cycles (via the
    # clamp-to-extent tiling move), which is what makes it aperiodic.
    gemm = ops.matmul(12, 12, 4, "gemm_12x12x4")
    report = convergence.analyze(gemm, hw, max_nodes=8000)
    table = Table(
        "Property", "Value",
        title="§IV-D — Markov analysis of the construction chain (GEMM 12x12x4)",
    )
    table.add_row("states materialized", report.num_states)
    table.add_row("edges", report.num_edges)
    for level, ok in sorted(report.irreducible_per_level.items()):
        table.add_row(f"irreducible within level {level}", ok)
    table.add_row("aperiodic", report.aperiodic)
    table.add_row("value-iteration steps to fixpoint", report.value_iterations)
    table.add_row(
        "stationary mass on top-decile states",
        f"{report.stationary_mass_on_top_decile:.1%}",
    )
    return ExperimentResult(
        name="convergence_analysis",
        table=table,
        rows={"report": report},
        notes=["paper: convergence after about 100 iterations"],
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
