"""Shared experiment infrastructure."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.baselines import (
    Ansor,
    AnsorConfig,
    PyTorchEager,
    Roller,
    VendorLibrary,
)
from repro.core import Gensor, GensorConfig
from repro.hardware import HardwareSpec, orin_nano, rtx4090
from repro.sim.measure import Measurer
from repro.utils.tables import Table

__all__ = [
    "ExperimentResult",
    "make_methods",
    "resolve_quick",
    "device",
    "SEED",
]

SEED = 0


def resolve_quick(quick: bool | None) -> bool:
    """Default budget mode: quick unless REPRO_FULL=1 or quick=False."""
    if quick is not None:
        return quick
    return os.environ.get("REPRO_FULL", "0") != "1"


def device(name: str) -> HardwareSpec:
    if name == "rtx4090":
        return rtx4090()
    if name == "orin_nano":
        return orin_nano()
    raise KeyError(f"unknown device {name!r} (rtx4090 | orin_nano)")


def make_methods(
    hw: HardwareSpec, quick: bool, seed: int = SEED
) -> dict[str, Any]:
    """The standard method lineup on one device.

    ``quick`` shrinks Ansor's trial budget (its *simulated* profiling cost
    is unchanged per trial, so compile-time comparisons keep their shape;
    only absolute search quality loses a little).
    """
    ansor_trials = 300 if quick else 2000
    gensor_cfg = (
        GensorConfig(seed=seed, num_chains=3, top_k=6, polish_steps=60)
        if quick
        else GensorConfig(seed=seed)
    )
    return {
        "pytorch": PyTorchEager(hw),
        "cublas": VendorLibrary(hw),
        "roller": Roller(hw),
        "ansor": Ansor(hw, AnsorConfig(num_trials=ansor_trials, seed=seed)),
        "gensor": Gensor(hw, gensor_cfg),
    }


def fresh_measurer(hw: HardwareSpec, seed: int = SEED) -> Measurer:
    return Measurer(hw, seed=seed)


@dataclass
class ExperimentResult:
    """Structured experiment output: named rows plus a rendered table."""

    name: str
    table: Table
    rows: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [self.table.render()]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())
