"""Serving throughput: worker scaling of the concurrent compile service.

Beyond the paper: the ROADMAP's production target needs the compiler to
serve *traffic*, not single requests.  The same dynamic BERT shape trace is
replayed through :class:`repro.serve.CompileService` at increasing worker
counts; because simulated profiling cost elapses in real time, the
requests/sec column reflects genuine overlap of cold constructions across
workers (plus single-flight coalescing and cold-stampede protection).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, SEED, resolve_quick
from repro.serve.bench import run_serve_bench
from repro.utils.tables import Table

WORKER_SWEEP_QUICK = (1, 4)
WORKER_SWEEP_FULL = (1, 2, 4, 8)


def run(device_name: str = "rtx4090", quick: bool | None = None) -> ExperimentResult:
    quick = resolve_quick(quick)
    sweep = WORKER_SWEEP_QUICK if quick else WORKER_SWEEP_FULL
    requests = 60 if quick else 200
    table = Table(
        "Workers", "req/s", "speedup", "hit", "warm", "cold", "coalesced",
        "p95 (ms)",
        title=f"Serving throughput — dynamic BERT trace "
              f"({requests} requests, {device_name})",
    )
    rows: dict[int, dict] = {}
    base_rps = None
    for workers in sweep:
        report = run_serve_bench(
            model="bert",
            num_requests=requests,
            workers=workers,
            device_name=device_name,
            seed=SEED,
        )
        if report.failed:
            raise RuntimeError(
                f"{report.failed} requests failed at {workers} workers"
            )
        stats = report.stats
        rps = report.requests_per_s
        if base_rps is None:
            base_rps = rps
        rows[workers] = {
            "rps": rps,
            "speedup": rps / base_rps,
            **{k: stats[k] for k in ("hit", "warm", "cold", "coalesced")},
            "p95_ms": stats["p95_ms"],
        }
        table.add_row(
            str(workers),
            f"{rps:.1f}",
            f"{rps / base_rps:.2f}x",
            stats["hit"],
            stats["warm"],
            stats["cold"],
            stats["coalesced"],
            f"{stats['p95_ms']:.0f}",
        )
    top = sweep[-1]
    notes = [
        f"{top} workers serve {rows[top]['speedup']:.2f}x the requests/sec "
        f"of 1 worker on the same trace (cold constructions overlap; "
        f"single-flight dedups concurrent duplicates)",
        f"unique shapes in trace: {report.unique_shapes}; "
        f"cold constructions at {top} workers: {rows[top]['cold']} "
        f"(stampede protection keeps this at the sequential level)",
    ]
    return ExperimentResult(
        name="serving_throughput",
        table=table,
        rows={"per_workers": rows},
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
