"""Fig. 6 reproduction: operator performance on the RTX 4090.

32 operator configurations (Table IV), FLOPS relative to Ansor, methods:
cuBLAS, Roller, Gensor.  Headline checks: Gensor beats Roller by ~18% on
average (max ~30%), is comparable to Ansor overall, and wins on some
configurations (paper calls out C5 and M1).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.op_benchmark import run_op_benchmark


def run(
    quick: bool | None = None, labels: list[str] | None = None
) -> ExperimentResult:
    return run_op_benchmark("rtx4090", quick=quick, labels=labels)


if __name__ == "__main__":  # pragma: no cover
    run().print()
