"""Serving resilience: chaos replay vs the fault-free baseline.

Beyond the paper: a production compile service is judged not just on
throughput but on behavior under failure.  The same dynamic BERT shape
trace is replayed twice through :class:`repro.serve.CompileService` —
once clean, once under the standard chaos plan (worker crashes on ~10%
of first attempts plus one poisoned operator family whose compiles always
raise) — and the availability, tail latency, and degraded-tier share are
compared.  The poisoned family trips its circuit breaker and sheds to
the analytical degraded tiers, so the rest of the trace keeps its service
level; crashed workers are respawned by the supervisor with their tickets
requeued.
"""

from __future__ import annotations

from repro.core.cache import family_fingerprint
from repro.experiments.common import ExperimentResult, SEED, resolve_quick
from repro.ir import operators as ops
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy
from repro.serve.bench import run_serve_bench
from repro.utils.tables import Table

#: the family poisoned by the standard chaos plan: BERT's attention
#: score/context batched matmuls.
POISONED_FAMILY = family_fingerprint(ops.batched_matmul(12, 128, 64, 128))

#: retry spacing scaled down so the chaos run's wall clock stays
#: experiment-sized; attempt structure (3 tries, jitter, timeout) is the
#: serving default.
CHAOS_RETRY = RetryPolicy(
    max_attempts=3, base_backoff_s=0.002, max_backoff_s=0.01,
    jitter=0.5, attempt_timeout_s=30.0,
)


def standard_chaos_plan(seed: int = SEED) -> FaultPlan:
    """~10% of first attempts crash their worker; one family always fails."""
    return FaultPlan(
        faults=(
            FaultSpec(kind="raise", family=POISONED_FAMILY, rate=1.0),
            FaultSpec(kind="crash", rate=0.1, attempts=(0,)),
        ),
        seed=seed,
    )


def run(device_name: str = "rtx4090", quick: bool | None = None) -> ExperimentResult:
    quick = resolve_quick(quick)
    requests = 60 if quick else 200
    workers = 4 if quick else 8
    runs = {}
    for label, plan in (
        ("fault-free", None),
        ("chaos", standard_chaos_plan()),
    ):
        runs[label] = run_serve_bench(
            model="bert",
            num_requests=requests,
            workers=workers,
            device_name=device_name,
            seed=SEED,
            time_scale=0.0 if quick else 1.0,
            fault_plan=plan,
            retry=CHAOS_RETRY,
        )
    table = Table(
        "Run", "availability", "p99 (ms)", "degraded share", "retries",
        "respawns", "breaker opens",
        title=f"Serving resilience — dynamic BERT trace "
              f"({requests} requests, {workers} workers, {device_name})",
    )
    rows: dict[str, dict] = {}
    for label, report in runs.items():
        stats = report.stats
        completed = stats["completed"] or 1
        degraded_share = stats["degraded"] / completed
        respawns = sum(report.resilience["worker_respawns"].values())
        rows[label] = {
            "availability": report.availability,
            "p99_ms": stats["p99_ms"],
            "degraded_share": degraded_share,
            "retries": stats["retries"],
            "worker_respawns": respawns,
            "breaker_opens": stats["breaker_opens"],
            "faults_injected": report.resilience["faults_injected"],
        }
        table.add_row(
            label,
            f"{report.availability:.1%}",
            f"{stats['p99_ms']:.0f}",
            f"{degraded_share:.1%}",
            stats["retries"],
            respawns,
            stats["breaker_opens"],
        )
    chaos = rows["chaos"]
    notes = [
        f"chaos injected {chaos['faults_injected']} faults "
        f"({chaos['worker_respawns']} worker respawns) yet availability "
        f"held at {chaos['availability']:.1%} — degraded answers count as "
        f"available because a worse schedule still runs",
        f"the poisoned attention-matmul family tripped its breaker "
        f"({chaos['breaker_opens']} open transitions) and was shed to "
        f"analytical degraded tiers ({chaos['degraded_share']:.1%} of "
        f"responses) instead of burning retries",
    ]
    return ExperimentResult(
        name="serving_resilience",
        table=table,
        rows=rows,
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
