"""Fig. 1 reproduction: the tree's chosen path vs an attainable better path.

The paper's motivating figure shows Roller's single-objective tree descent
settling on a GEMM schedule while at least one path in the same construction
space reaches ~9% higher FLOPS.  The reproduction compiles one GEMM with
Roller (the tree) and with Gensor's graph traversal over the *same* action
space without vThreads (so the only delta is tree vs graph), and reports
both endpoints.
"""

from __future__ import annotations

from repro.baselines import Roller
from repro.core import Gensor, GensorConfig
from repro.experiments.common import (
    ExperimentResult,
    SEED,
    device,
    resolve_quick,
)
from repro.ir import operators as ops
from repro.utils.tables import Table


def run(device_name: str = "rtx4090", quick: bool | None = None) -> ExperimentResult:
    resolve_quick(quick)  # budgets identical in both modes here
    hw = device(device_name)
    gemm = ops.matmul(4096, 4096, 4096, "fig1_gemm")

    roller = Roller(hw).compile(gemm)
    graph = Gensor(
        hw, GensorConfig(seed=SEED, enable_vthread=False)
    ).compile(gemm)

    tree_flops = roller.best_metrics.achieved_flops
    graph_flops = graph.best_metrics.achieved_flops
    gain = (graph_flops / tree_flops - 1.0) * 100.0

    table = Table(
        "Path", "Schedule", "FLOPS (T)", "Latency (ms)",
        title="Fig. 1 — GEMM 4096^3: tree-selected path vs graph-found path",
    )
    table.add_row(
        "tree (Roller)",
        roller.best.describe(),
        f"{tree_flops / 1e12:.2f}",
        f"{roller.best_metrics.latency_s * 1e3:.3f}",
    )
    table.add_row(
        "graph (no vThread)",
        graph.best.describe(),
        f"{graph_flops / 1e12:.2f}",
        f"{graph.best_metrics.latency_s * 1e3:.3f}",
    )
    return ExperimentResult(
        name="fig01_tree_vs_graph",
        table=table,
        rows={
            "tree_flops": tree_flops,
            "graph_flops": graph_flops,
            "gain_pct": gain,
        },
        notes=[
            f"graph traversal finds a path {gain:.1f}% above the tree's "
            "solution (paper reports 9%)",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
