"""Fig. 7 reproduction: operator performance on the Orin Nano.

Same protocol as Fig. 6 on the edge device: 32 Table IV operators, FLOPS
relative to Ansor, methods cuBLAS / Roller / Gensor.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.op_benchmark import run_op_benchmark


def run(
    quick: bool | None = None, labels: list[str] | None = None
) -> ExperimentResult:
    return run_op_benchmark("orin_nano", quick=quick, labels=labels)


if __name__ == "__main__":  # pragma: no cover
    run().print()
