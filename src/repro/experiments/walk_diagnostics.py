"""Walk diagnostics: trace-level view of the Markov construction.

Not a paper figure — an observability experiment over the quantities the
paper's convergence argument (§IV-D, Algorithms 1–2) is made of: per-step
action mix, ``top_results`` acceptance rate, and the step at which each
chain's annealing crossed to the innermost memory level.  Run it with
``python -m repro experiment walk``.
"""

from __future__ import annotations

from repro.core import Gensor, GensorConfig
from repro.experiments.common import (
    ExperimentResult,
    SEED,
    device,
    resolve_quick,
)
from repro.ir import operators as ops
from repro.obs import RecordingTracer, summarize_walk
from repro.utils.tables import Table

__all__ = ["run"]


def _workloads(quick: bool):
    if quick:
        return [
            ops.matmul(512, 256, 512, "walk_gemm"),
            ops.conv2d(1, 8, 14, 14, 16, 3, 3, 1, "walk_conv"),
        ]
    return [
        ops.matmul(4096, 4096, 4096, "walk_gemm"),
        ops.conv2d(8, 64, 28, 28, 128, 3, 3, 1, "walk_conv"),
        ops.batched_matmul(12, 512, 64, 512, "walk_bmm"),
    ]


def run(
    quick: bool | None = None, device_name: str = "rtx4090"
) -> ExperimentResult:
    quick = resolve_quick(quick)
    hw = device(device_name)
    cfg = (
        GensorConfig(seed=SEED, num_chains=3, top_k=6, polish_steps=40)
        if quick
        else GensorConfig(seed=SEED)
    )
    table = Table(
        "workload",
        "steps",
        "chains",
        "accept",
        "conv-step",
        "top action",
        "|sum p - 1|",
        title=f"Markov walk diagnostics on {hw.name}",
    )
    rows: dict[str, dict] = {}
    for compute in _workloads(quick):
        tracer = RecordingTracer()
        Gensor(hw, cfg).compile(compute, tracer=tracer)
        summary = summarize_walk(tracer.events)
        mix = summary["action_mix"]
        top_action = max(mix, key=mix.get) if mix else "-"
        conv = summary["convergence_step_mean"]
        table.add_row(
            compute.name,
            summary["steps"],
            summary["chains"],
            f"{summary['acceptance_rate']:.2f}",
            f"{conv:.1f}" if conv is not None else "-",
            f"{top_action} ({mix.get(top_action, 0)})",
            f"{summary['prob_sum_err_max']:.1e}",
        )
        rows[compute.name] = summary
    notes = [
        "accept = fraction of steps appended to the diverse top_results "
        "pool (paper's append probability)",
        "conv-step = mean step of the final cache action per chain (the "
        "annealing's memory-level convergence)",
    ]
    return ExperimentResult(
        name="walk_diagnostics", table=table, rows=rows, notes=notes
    )
