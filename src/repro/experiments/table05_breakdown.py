"""Table V reproduction: hardware-metric breakdown on unbalanced GEMMs.

For the three unbalanced GEMM shapes the paper profiles, report Gensor vs
Ansor on compute throughput, memory busy, L2 hit rate, and execution time.
The expected shape: Gensor leads every metric on these shapes because the
graph traversal backtracks at dimension boundaries while fixed-budget
search wastes trials on infeasible or quantized configurations.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    device,
    make_methods,
    resolve_quick,
)
from repro.utils.tables import Table
from repro.workloads.unbalanced import build_unbalanced


def run(device_name: str = "rtx4090", quick: bool | None = None) -> ExperimentResult:
    quick = resolve_quick(quick)
    hw = device(device_name)
    methods = make_methods(hw, quick)
    table = Table(
        "Shape", "Method", "Compute Thpt", "Mem Busy", "L2 Hit", "Exec (ms)",
        title=f"Table V — Gensor vs Ansor on unbalanced GEMMs ({hw.name})",
    )
    rows: dict[str, dict[str, dict[str, float]]] = {}
    for label, compute in build_unbalanced():
        rows[label] = {}
        for m in ("gensor", "ansor"):
            res = methods[m].compile(compute)
            met = res.best_metrics
            rows[label][m] = {
                "compute_throughput": met.compute_throughput,
                "mem_busy": met.mem_busy,
                "l2_hit": met.l2_hit_rate,
                "exec_ms": met.latency_s * 1e3,
            }
            table.add_row(
                label,
                m,
                f"{met.compute_throughput:.1%}",
                f"{met.mem_busy:.1%}",
                f"{met.l2_hit_rate:.1%}",
                f"{met.latency_s * 1e3:.3f}",
            )
    wins = sum(
        1
        for label in rows
        if rows[label]["gensor"]["exec_ms"] <= rows[label]["ansor"]["exec_ms"]
    )
    return ExperimentResult(
        name="table05_breakdown",
        table=table,
        rows=rows,
        notes=[
            f"Gensor is faster on {wins}/{len(rows)} unbalanced shapes "
            "(paper: 3/3)",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
