"""Fig. 8 reproduction: compilation time across GEMM shapes.

Measures each compiler's total compile cost (optimization wall clock plus
simulated on-device profiling) over a sweep of GEMM shapes.  Expected
shape: Roller around a second, Gensor a few seconds (within the same order
of magnitude), Ansor three to five orders of magnitude above both.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    device,
    make_methods,
    resolve_quick,
)
from repro.ir import operators as ops
from repro.utils.tables import Table

#: GEMM sweep: balanced sizes plus one unbalanced LLM-ish shape.
GEMM_SHAPES = (
    (1024, 1024, 1024),
    (4096, 4096, 4096),
    (8192, 8192, 8192),
    (65536, 4, 1024),
    (32768, 64, 2048),
)

_METHODS = ("roller", "gensor", "ansor")


def run(device_name: str = "rtx4090", quick: bool | None = None) -> ExperimentResult:
    quick = resolve_quick(quick)
    hw = device(device_name)
    methods = make_methods(hw, quick)
    table = Table(
        "GEMM (MKN)", *(f"{m} (s)" for m in _METHODS),
        title=(
            f"Fig. 8 — compile time by method on {hw.name} "
            f"({'quick' if quick else 'full'} Ansor budget)"
        ),
    )
    rows: dict[str, dict[str, float]] = {}
    for m, k, n in GEMM_SHAPES:
        label = f"[{m},{k},{n}]"
        compute = ops.matmul(m, k, n, f"gemm_{m}_{k}_{n}")
        rows[label] = {}
        cells = []
        for method in _METHODS:
            res = methods[method].compile(compute)
            rows[label][method] = res.compile_seconds
            cells.append(f"{res.compile_seconds:.2f}")
        table.add_row(label, *cells)
    ratios = [
        rows[label]["ansor"] / rows[label]["gensor"] for label in rows
    ]
    notes = [
        "compile cost = optimization wall clock + simulated profiling time",
        f"Ansor / Gensor compile-time ratio: {min(ratios):.0f}x - {max(ratios):.0f}x "
        "(paper: 3-5 orders of magnitude; scale the quick Ansor budget by "
        "~7x for the full-budget figure)",
    ]
    return ExperimentResult(name="fig08_compile_time", table=table, rows=rows, notes=notes)


if __name__ == "__main__":  # pragma: no cover
    run().print()
