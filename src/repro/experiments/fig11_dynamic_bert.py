"""Fig. 11 reproduction: BERT with dynamic sequence lengths.

BERT-small is run over a set of sequence lengths; each method optimizes the
resulting shape family and per-shape throughput is reported relative to
Roller.  DietCode optimizes the family once ahead of time (shared
micro-kernels); Gensor / Roller re-optimize per shape; PyTorch dispatches
library kernels.

Expected shape (paper): Gensor 1.17x Roller and 2.1x PyTorch on average;
DietCode reaches ~83% of Gensor's performance with a smaller one-off
optimization cost.
"""

from __future__ import annotations

from repro.baselines import DietCode, DietCodeConfig
from repro.experiments.common import (
    ExperimentResult,
    SEED,
    device,
    make_methods,
    resolve_quick,
)
from repro.models import bert_small, compile_and_time
from repro.utils.tables import Table

SEQ_LENGTHS = (64, 128, 192, 256, 384, 512)


def run(device_name: str = "rtx4090", quick: bool | None = None) -> ExperimentResult:
    quick = resolve_quick(quick)
    hw = device(device_name)
    methods = make_methods(hw, quick)
    graphs = {s: bert_small(batch=32, seq=s) for s in SEQ_LENGTHS}

    # DietCode: one joint ahead-of-time pass per operator family.
    dietcode = DietCode(hw, DietCodeConfig(seed=SEED))
    families: dict[tuple, list] = {}
    for graph in graphs.values():
        for inst in graph.ops:
            key = (inst.compute.kind, tuple(ax.name for ax in inst.compute.axes))
            families.setdefault(key, []).append(inst.compute)
    diet_lookup: dict[str, float] = {}
    diet_compile = 0.0
    for family in families.values():
        res = dietcode.compile_family(family)
        diet_compile += res.compile_seconds
        for name, r in res.per_shape.items():
            diet_lookup[name] = r.best_metrics.latency_s

    table = Table(
        "Seq", "Roller (ksps)", "pytorch/roller", "dietcode/roller", "gensor/roller",
        title=f"Fig. 11 — dynamic-shape BERT-small ({hw.name}, baseline Roller)",
    )
    rows: dict[int, dict[str, float]] = {}
    opt_time = {"roller": 0.0, "gensor": 0.0, "pytorch": 0.0, "dietcode": diet_compile}
    for seq, graph in graphs.items():
        roller = compile_and_time(graph, methods["roller"], "roller")
        pytorch = compile_and_time(graph, methods["pytorch"], "pytorch")
        # Gensor compiles each shape's graph as one fusion-aware program.
        gensor = compile_and_time(
            graph, methods["gensor"], "gensor", program=True
        )
        opt_time["roller"] += roller.compile_seconds
        opt_time["gensor"] += gensor.compile_seconds
        diet_latency = sum(
            diet_lookup[inst.compute.name] * inst.count for inst in graph.ops
        )
        diet_tp = graph.batch / diet_latency
        rows[seq] = {
            "roller_ksps": roller.throughput / 1e3,
            "pytorch": pytorch.throughput / roller.throughput,
            "dietcode": diet_tp / roller.throughput,
            "gensor": gensor.throughput / roller.throughput,
        }
        table.add_row(
            str(seq),
            f"{roller.throughput / 1e3:.2f}",
            f"{rows[seq]['pytorch']:.2f}",
            f"{rows[seq]['dietcode']:.2f}",
            f"{rows[seq]['gensor']:.2f}",
        )
    n = len(rows)
    gensor_avg = sum(r["gensor"] for r in rows.values()) / n
    pytorch_avg = sum(r["pytorch"] for r in rows.values()) / n
    diet_share = (
        sum(r["dietcode"] / r["gensor"] for r in rows.values()) / n
    )
    notes = [
        f"Gensor vs Roller avg {gensor_avg:.2f}x (paper 1.17x); "
        f"vs PyTorch {gensor_avg / pytorch_avg:.2f}x (paper 2.1x)",
        f"DietCode reaches {diet_share:.0%} of Gensor (paper 83%)",
        f"one-off optimization time: DietCode {opt_time['dietcode']:.0f}s vs "
        f"Gensor {opt_time['gensor']:.0f}s across the shape family "
        "(paper: 50 min vs 75 min)",
    ]
    return ExperimentResult(
        name="fig11_dynamic_bert",
        table=table,
        rows={"per_seq": rows, "opt_time": opt_time},
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
