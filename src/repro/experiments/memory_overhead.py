"""§V-A memory-overhead note: optimizer memory, Roller vs Gensor.

The paper reports that for a [16384, 16384, 16384] GEMM Roller's peak
optimizer memory is 547 MB vs Gensor's 627 MB — the graph's extra
intermediate states cost tens of megabytes, negligible next to workload
memory.  The reproduction measures peak *additional* Python heap during
each method's optimization with ``tracemalloc`` and reports the same
comparison (absolute numbers differ — the authors measured whole-process
RSS of a TVM-based stack).
"""

from __future__ import annotations

import tracemalloc

from repro.baselines import Roller
from repro.core import Gensor
from repro.experiments.common import ExperimentResult, device, resolve_quick
from repro.ir import operators as ops
from repro.utils.tables import Table


def _peak_mb(fn) -> float:
    tracemalloc.start()
    try:
        fn()
        _cur, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 2**20


def run(device_name: str = "rtx4090", quick: bool | None = None) -> ExperimentResult:
    resolve_quick(quick)
    hw = device(device_name)
    gemm = ops.matmul(16384, 16384, 16384, "gemm_16k")
    roller_mb = _peak_mb(lambda: Roller(hw).compile(gemm))
    gensor_mb = _peak_mb(lambda: Gensor(hw).compile(gemm))
    table = Table(
        "Method", "Peak optimizer heap (MB)",
        title="Optimizer memory overhead, GEMM [16384,16384,16384]",
    )
    table.add_row("roller", f"{roller_mb:.1f}")
    table.add_row("gensor", f"{gensor_mb:.1f}")
    overhead = gensor_mb - roller_mb
    return ExperimentResult(
        name="memory_overhead",
        table=table,
        rows={"roller_mb": roller_mb, "gensor_mb": gensor_mb, "overhead_mb": overhead},
        notes=[
            f"Gensor's graph states cost {overhead:.1f} MB over Roller "
            "(paper: 627 MB vs 547 MB whole-process RSS — tens of MB overhead)",
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
