"""Fig. 12 reproduction: dynamic-structure optimize/infer timeline.

MobileNetV2 in an edge-inference setting: the channel width is mutated
three times; after each mutation the model is re-optimized (except for
PyTorch, which just keeps dispatching) and then serves 2000 frames.  The
figure compares each method's total wall-clock across the whole scenario.

Expected shape: PyTorch spends zero time optimizing but every inference
stage is slow; Ansor's re-optimizations dwarf everything; Roller and
Gensor pay seconds per re-optimization, with Gensor's faster inference
making its *total* the shortest.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    device,
    make_methods,
    resolve_quick,
)
from repro.models import DynamicScenario, mobilenet_v2
from repro.utils.tables import Table

#: channel-width multipliers applied at each mutation cycle.
WIDTH_CYCLE = (1.0, 0.75, 1.25)

_METHODS = ("pytorch", "ansor", "roller", "gensor")


def run(device_name: str = "orin_nano", quick: bool | None = None) -> ExperimentResult:
    quick = resolve_quick(quick)
    hw = device(device_name)
    methods = make_methods(hw, quick)
    # Each stage serves 2000 inferences of the [128, ...] input batch
    # (the paper's "2000 times of images with a size of [128, 1, 224, 224]").
    scenario = DynamicScenario(
        model_factory=lambda cycle: mobilenet_v2(
            batch=128, width_mult=WIDTH_CYCLE[cycle % len(WIDTH_CYCLE)]
        ),
        cycles=3,
        frames_per_stage=2000 * 128,
    )
    table = Table(
        "Method", "Optimize (s)", "Inference (s)", "Total (s)",
        title=f"Fig. 12 — dynamic-structure timeline, MobileNetV2 ({hw.name})",
    )
    rows: dict[str, dict[str, float]] = {}
    timelines = {}
    for m in _METHODS:
        segments = scenario.run(
            methods[m], m, reoptimize=(m != "pytorch")
        )
        timelines[m] = segments
        opt = sum(s.duration_s for s in segments if s.kind == "optimize")
        inf = sum(s.duration_s for s in segments if s.kind == "inference")
        rows[m] = {"optimize_s": opt, "inference_s": inf, "total_s": opt + inf}
        table.add_row(m, f"{opt:.1f}", f"{inf:.1f}", f"{opt + inf:.1f}")
    fastest = min(rows, key=lambda m: rows[m]["total_s"])
    notes = [
        f"shortest total time: {fastest} (paper: Gensor)",
        "Ansor's optimization segments dominate its timeline, as in the paper",
    ]
    return ExperimentResult(
        name="fig12_dynamic_timeline",
        table=table,
        rows={"summary": rows, "timelines": timelines},
        notes=notes,
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
