"""Experiment harness: one module per reproduced paper table/figure.

Every module exposes ``run(...) -> ExperimentResult`` (structured rows plus
a rendered ASCII table) and is runnable as a script
(``python -m repro.experiments.fig06_ops_rtx4090``).  ``quick=True`` (the
default) shrinks search budgets so the whole suite regenerates in minutes;
``quick=False`` (or env ``REPRO_FULL=1``) uses paper-scale budgets.

Index (see DESIGN.md for the full mapping):

========================  ====================================================
module                    reproduces
========================  ====================================================
fig01_tree_vs_graph       Fig. 1 — tree-construction path vs attainable path
fig06_ops_rtx4090         Fig. 6 — 32 operators on the RTX 4090 vs Ansor
fig07_ops_orin            Fig. 7 — 32 operators on the Orin Nano vs Ansor
table05_breakdown         Table V — HW counters, Gensor vs Ansor, unbalanced
table06_ablation          Table VI — graph construction and vThread ablation
fig08_compile_time        Fig. 8 — compilation time across GEMM shapes
fig09_end2end             Fig. 9 — end-to-end models on both devices
fig10_tradeoff            Fig. 10 — performance vs optimization time
fig11_dynamic_bert        Fig. 11 — dynamic-shape BERT vs DietCode
fig12_dynamic_timeline    Fig. 12 — dynamic-structure optimize/infer timeline
memory_overhead           §V-A — optimizer memory, Roller vs Gensor
convergence_analysis      §IV-D — Markov-chain convergence properties
========================  ====================================================
"""

from repro.experiments.common import ExperimentResult, make_methods, resolve_quick

__all__ = ["ExperimentResult", "make_methods", "resolve_quick"]
