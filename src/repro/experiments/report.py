"""Full-evaluation report: regenerate every table/figure in one pass.

``python -m repro.experiments.report [output.md]`` (or
``python -m repro experiment all``) runs the complete experiment index and
writes a Markdown report with every rendered table, per-experiment wall
time, and the headline claims checked — the file EXPERIMENTS.md is
distilled from.
"""

from __future__ import annotations

import importlib
import sys
import time
from dataclasses import dataclass, field

__all__ = ["EXPERIMENT_SEQUENCE", "generate_report", "Report"]

#: (module, run kwargs, extra passes) in evaluation-section order.
EXPERIMENT_SEQUENCE: tuple[tuple[str, dict, list[dict]], ...] = (
    ("fig01_tree_vs_graph", {}, []),
    (
        "fig06_ops_rtx4090",
        {"labels": ["C1", "C2", "C3", "M1", "M2", "M3",
                    "V1", "V2", "V3", "P1", "P2", "P3"]},
        [],
    ),
    (
        "fig07_ops_orin",
        {"labels": ["C1", "C2", "M1", "M2", "V1", "V3", "P1", "P3"]},
        [],
    ),
    ("table05_breakdown", {}, []),
    ("table06_ablation", {}, []),
    ("fig08_compile_time", {}, []),
    ("fig09_end2end", {}, [{"device_name": "orin_nano"}]),
    ("fig10_tradeoff", {}, []),
    ("fig11_dynamic_bert", {}, []),
    ("fig12_dynamic_timeline", {}, []),
    ("memory_overhead", {}, []),
    ("convergence_analysis", {}, []),
    ("serving_throughput", {}, []),
)


@dataclass
class Report:
    """The assembled evaluation report."""

    sections: list[tuple[str, str, float]] = field(default_factory=list)

    def add(self, name: str, rendered: str, seconds: float) -> None:
        self.sections.append((name, rendered, seconds))

    @property
    def total_seconds(self) -> float:
        return sum(s for _n, _r, s in self.sections)

    def to_markdown(self) -> str:
        lines = [
            "# Gensor reproduction — full evaluation report",
            "",
            f"{len(self.sections)} experiment passes, "
            f"{self.total_seconds:.0f}s total regeneration time.",
            "",
        ]
        for name, rendered, seconds in self.sections:
            lines.append(f"## {name} ({seconds:.1f}s)")
            lines.append("")
            lines.append("```")
            lines.append(rendered)
            lines.append("```")
            lines.append("")
        return "\n".join(lines)


def generate_report(
    quick: bool | None = None,
    sequence=EXPERIMENT_SEQUENCE,
    echo: bool = False,
) -> Report:
    """Run the whole experiment index and collect the rendered results."""
    report = Report()
    for name, kwargs, extra_passes in sequence:
        module = importlib.import_module(f"repro.experiments.{name}")
        for pass_kwargs in [kwargs, *extra_passes]:
            t0 = time.perf_counter()
            result = module.run(quick=quick, **pass_kwargs)
            elapsed = time.perf_counter() - t0
            label = name
            if pass_kwargs is not kwargs:
                label = f"{name} ({', '.join(map(str, pass_kwargs.values()))})"
            report.add(label, result.render(), elapsed)
            if echo:  # pragma: no cover - console convenience
                print(f"=== {label} ({elapsed:.1f}s)")
                print(result.render())
                print(flush=True)
    return report


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else "evaluation_report.md"
    report = generate_report(echo=True)
    with open(out_path, "w") as fh:
        fh.write(report.to_markdown())
    print(f"report written to {out_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
