"""Performance infrastructure for the construction hot path.

``repro.perf`` holds the pieces that make analytical pricing cheap enough
to match the paper's compile-time claims: the process-wide
:class:`~repro.perf.memo.MetricsMemo` (one bounded LRU over cost-model
evaluations shared by every consumer) and the walk benchmark
(:mod:`repro.perf.bench`) that gives each PR a measured states/sec
trajectory.
"""

from repro.perf.memo import MetricsMemo, get_memo, reset_memo

__all__ = ["MetricsMemo", "get_memo", "reset_memo"]
