"""Performance infrastructure for the construction hot path.

``repro.perf`` holds the pieces that make analytical pricing cheap enough
to match the paper's compile-time claims: the process-wide
:class:`~repro.perf.memo.MetricsMemo` (one bounded LRU over cost-model
evaluations shared by every consumer) and the walk benchmark
(:mod:`repro.perf.bench`) that gives each PR a measured states/sec
trajectory.
"""

from repro.perf.memo import MetricsMemo, get_memo, reset_memo

__all__ = [
    "MetricsMemo",
    "get_memo",
    "reset_memo",
    "SOA_WALK",
    "SoAWalkEngine",
    "DifferentialWalker",
    "soa_walk_enabled",
    "soa_walk_disabled",
    "soa_walk_forced",
]

_SOA_NAMES = frozenset(
    {
        "SOA_WALK",
        "SoAWalkEngine",
        "DifferentialWalker",
        "soa_walk_enabled",
        "soa_walk_disabled",
        "soa_walk_forced",
    }
)


def __getattr__(name: str):
    # Lazy: repro.perf.soa pulls in numpy-heavy machinery the memo-only
    # consumers (serve, fleet) never need.
    if name in _SOA_NAMES:
        from repro.perf import soa

        return getattr(soa, name)
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
