"""The construction-walk benchmark (``python -m repro bench walk``).

Measures the throughput of Gensor's hot path on the Fig. 6 / Table IV
operator suite and writes ``BENCH_walk.json``, so every PR leaves a
comparable perf datapoint:

* **states/sec** of the annealed walk along three bit-identical paths:
  the historical per-edge scalar one (``GensorConfig.batch_scoring=False``
  — scalar scoring, scalar polish sweeps, scalar ranking), the batched
  object-graph one, and the structure-of-arrays core
  (:mod:`repro.perf.soa`).  All three produce bit-identical schedules, so
  the ratios are pure pricing/bookkeeping overhead;
* **expand / evaluate micro-latencies** over a sampled frontier;
* **memo hit rate** of the shared :class:`~repro.perf.memo.MetricsMemo`;
* **walker scaling** — aggregate walk throughput with ``walkers=4`` vs
  ``walkers=1`` on the live (SoA) path.

Every run is fully deterministic given ``seed``: ``--repeats N`` draws
each repeat's walk seed from a ``SeedSequence`` substream of the root
seed (repeat 0 keeps the root seed itself), so repeated runs sample
distinct walks while the whole family stays reproducible.  Speedup and
scaling ratios compare *matched-seed* repeats and report the best pair
(see :func:`_matched_speedup`); section headline throughputs are the
best single repeat of that section.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.constructor import Gensor, GensorConfig
from repro.core.graph import ConstructionGraph
from repro.hardware.spec import HardwareSpec
from repro.perf.memo import MetricsMemo
from repro.sim.costmodel import CostModel
from repro.perf.soa import soa_walk_disabled, soa_walk_forced
from repro.utils.caching import hot_path_caching_disabled
from repro.utils.rng import spawn_seed_ints
from repro.workloads.table4 import TABLE4_CONFIGS

__all__ = ["run_walk_bench", "write_bench", "QUICK_LABELS", "BENCH_SCHEMA"]

#: v2 adds the ``soa`` section (structure-of-arrays walk core),
#: ``soa_speedup_states_per_sec``, per-repeat seed/iteration records, and
#: the ``expand_soa_us`` micro-latency.
BENCH_SCHEMA = "repro.bench.walk/v2"

#: one operator per family — the CI smoke subset.
QUICK_LABELS = ("C1", "M1", "V1", "P1")

#: reduced walk for --quick so the smoke job stays in seconds.  The point
#: of the smoke's walker-scaling gate is that extra walkers must only pay
#: walk time — never re-run the fixed polish/rank/measure pipeline — so
#: the operating point keeps that fixed pipeline prominent relative to
#: the (GIL-serialized) walk.
_QUICK_CONFIG = dict(num_chains=2, max_iterations_per_chain=24, polish_steps=100)


def _suite(quick: bool):
    if quick:
        return [c for c in TABLE4_CONFIGS if c.label in QUICK_LABELS]
    return list(TABLE4_CONFIGS)


def _compile_suite(
    hardware: HardwareSpec,
    configs,
    cfg: GensorConfig,
    walkers: int,
    shared_memo: MetricsMemo,
) -> dict:
    """Compile every operator once; return per-op and aggregate throughput."""
    ops = []
    total_iterations = 0
    total_wall = 0.0
    for op in configs:
        compute = op.build()
        gensor = Gensor(hardware, cfg, memo=shared_memo)
        t0 = time.perf_counter()
        result = gensor.compile(compute, walkers=walkers)
        wall = time.perf_counter() - t0
        total_iterations += result.iterations
        total_wall += wall
        ops.append(
            {
                "label": op.label,
                "iterations": result.iterations,
                "states_visited": result.states_visited,
                "compile_wall_s": wall,
                "states_per_sec": result.iterations / wall if wall > 0 else 0.0,
                "best_latency_s": result.best_metrics.latency_s,
            }
        )
    return {
        "ops": ops,
        "total_iterations": total_iterations,
        "total_wall_s": total_wall,
        "states_per_sec": (
            total_iterations / total_wall if total_wall > 0 else 0.0
        ),
    }


def _micro_latencies(hardware: HardwareSpec, configs, seed: int) -> dict:
    """Expand/evaluate micro-latencies over a sampled walk frontier."""
    from repro.core.policy import TransitionPolicy
    from repro.ir.etir import ETIR
    from repro.utils.rng import spawn_rng

    # Sample ~200 distinct states by walking each operator a few steps.
    states = []
    for op in configs:
        compute = op.build()
        graph = ConstructionGraph(hardware)
        rng = spawn_rng(seed, "bench-micro", compute.name)
        policy = TransitionPolicy(graph, rng)
        state = ETIR.initial(compute, num_levels=hardware.num_cache_levels)
        for step in range(50):
            states.append(state)
            edge = policy.select(state, step * 0.1, frozenset())
            if edge is None:
                break
            state = edge.dst

    model = CostModel(hardware)
    with hot_path_caching_disabled():
        t0 = time.perf_counter()
        for s in states:
            model.evaluate(s)
        scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    model.evaluate_batch(states)
    batch_s = time.perf_counter() - t0

    # Expand timings on fresh graphs (memoized edges would measure a dict hit).
    scalar_graph = ConstructionGraph(hardware, batch_scoring=False)
    with hot_path_caching_disabled():
        t0 = time.perf_counter()
        for s in states:
            scalar_graph.expand(s)
        expand_scalar_s = time.perf_counter() - t0

    batch_graph = ConstructionGraph(hardware, batch_scoring=True)
    t0 = time.perf_counter()
    for s in states:
        batch_graph.expand(s)
    expand_batch_s = time.perf_counter() - t0

    # SoA expand over the same states: one engine per operator (the engine
    # is compute-specific), decoded configs fed straight to the array path.
    from repro.perf.soa import SoAWalkEngine

    engines: dict[int, SoAWalkEngine] = {}
    t0 = time.perf_counter()
    for s in states:
        engine = engines.get(id(s.compute))
        if engine is None:
            engine = engines[id(s.compute)] = SoAWalkEngine(s.compute, hardware)
        tiles, vthreads = s.config_arrays()
        engine.expand(tiles, vthreads, s.cur_level)
    expand_soa_s = time.perf_counter() - t0

    n = max(1, len(states))
    return {
        "sampled_states": len(states),
        "evaluate_scalar_us": scalar_s / n * 1e6,
        "evaluate_batch_us_per_state": batch_s / n * 1e6,
        "expand_scalar_us": expand_scalar_s / n * 1e6,
        "expand_batch_us": expand_batch_s / n * 1e6,
        "expand_soa_us": expand_soa_s / n * 1e6,
    }


def _repeat_seeds(seed: int, repeats: int) -> list[int]:
    """Per-repeat walk seeds for ``--repeats N``.

    Repeat 0 keeps the root seed itself (so ``repeats=1`` is byte-identical
    to a plain run); later repeats draw fresh seed integers from a labeled
    ``SeedSequence`` spawn tree.  Historically every repeat re-ran the same
    seed, which only de-noised wall time; distinct substreams make repeats
    sample distinct walks while the family stays deterministic — the same
    root seed always yields the same per-repeat seeds, iteration counts,
    and states visited.
    """
    n = max(1, repeats)
    if n == 1:
        return [seed]
    return [seed, *spawn_seed_ints(seed, "bench-walk", "repeat", n=n - 1)]


def _best_of(seeds: "list[int]", fn) -> dict:
    """Best throughput over one suite compilation per seed in ``seeds``.

    ``fn(seed)`` runs the suite once with that walk seed.  The
    highest-states/sec payload is kept — with per-repeat seeds the walks
    differ in length, so raw wall time would bias selection toward short
    walks; throughput is the quantity the sections compare.  Every
    repeat's deterministic walk footprint is recorded under
    ``repeat_runs`` — the regression surface for repeat determinism.
    """
    best: dict | None = None
    repeat_runs: list[dict] = []
    for s in seeds:
        run = fn(s)
        repeat_runs.append(
            {
                "seed": int(s),
                "total_iterations": run["total_iterations"],
                "states_visited": sum(
                    op["states_visited"] for op in run["ops"]
                ),
                "total_wall_s": run["total_wall_s"],
                "states_per_sec": run["states_per_sec"],
            }
        )
        if best is None or run["states_per_sec"] > best["states_per_sec"]:
            best = run
    assert best is not None
    best["repeat_runs"] = repeat_runs
    return best


def _matched_speedup(num: dict, den: dict) -> float:
    """Best matched-seed throughput ratio between two ``_best_of`` payloads.

    Repeat ``i`` of every section runs the *same* walk seed, and the
    compared paths replay bit-identical walks — so the per-repeat ratio
    is a pure wall-clock comparison with walk-length differences
    cancelled exactly.  Comparing independently-selected section bests
    instead would let scheduler noise land on opposite sides of the
    ratio (a lucky denominator repeat against an unlucky numerator
    repeat), which made 4x-scale CI gates flake; the best matched pair
    is the de-noised statistic.
    """
    ratios = [
        n["states_per_sec"] / d["states_per_sec"]
        for n, d in zip(num["repeat_runs"], den["repeat_runs"])
        if d["states_per_sec"] > 0
    ]
    return max(ratios, default=0.0)


def run_walk_bench(
    device,
    seed: int = 0,
    quick: bool = False,
    walker_counts: tuple[int, int] = (1, 4),
    repeats: int = 1,
) -> dict:
    """Run the full walk benchmark; returns the ``BENCH_walk.json`` payload.

    ``device`` is a :class:`HardwareSpec`.  ``quick`` restricts the suite
    to one operator per family with a reduced walk (the CI smoke mode).
    ``repeats`` reports the best wall of N runs per measurement, each on
    its own deterministic seed substream (see :func:`_repeat_seeds`).
    """
    configs = _suite(quick)
    extra = _QUICK_CONFIG if quick else {}
    seeds = _repeat_seeds(seed, repeats)

    def _cfg(batch_scoring: bool, s: int) -> GensorConfig:
        return GensorConfig(batch_scoring=batch_scoring, seed=s, **extra)

    # Scalar baseline: per-edge benefit scoring, scalar polish/rank, a
    # private memo standing in for the old per-constructor latency dict,
    # and derived-value caching off — the faithful pre-perf-work path.
    def _scalar_run(s: int) -> dict:
        with soa_walk_disabled(), hot_path_caching_disabled():
            return _compile_suite(
                device, configs, _cfg(False, s), walkers=1,
                shared_memo=MetricsMemo(),
            )

    scalar = _best_of(seeds, _scalar_run)

    # Batched object-graph path: vectorized scoring through one shared
    # memo, SoA pinned off so the section keeps measuring the graph.
    def _batched_run(s: int) -> dict:
        memo = MetricsMemo()
        with soa_walk_disabled():
            run = _compile_suite(
                device, configs, _cfg(True, s), walkers=1, shared_memo=memo
            )
        run["memo_stats"] = memo.stats()
        return run

    batched = _best_of(seeds, _batched_run)
    memo_stats = batched.pop("memo_stats")
    speedup = _matched_speedup(batched, scalar)

    # Structure-of-arrays core: the live default walk path, pinned on so
    # the section is meaningful even when the environment gate is off.
    def _soa_run(s: int) -> dict:
        with soa_walk_forced():
            return _compile_suite(
                device, configs, _cfg(True, s), walkers=1,
                shared_memo=MetricsMemo(),
            )

    soa = _best_of(seeds, _soa_run)
    soa_speedup = _matched_speedup(soa, scalar)

    # Walker scaling: aggregate walk throughput, fresh memo per count so
    # the second run doesn't free-ride on the first run's pricing.  Pinned
    # to the batched graph path: the section (and its CI gate) measures
    # how the walker pool shares the graph and memo, and the SoA core's
    # faster fixed pipeline would shift the ratio without any change to
    # the pool itself.
    low, high = walker_counts
    scaling_runs = {}
    for walkers in (low, high):

        def _scaling_run(s: int, walkers: int = walkers) -> dict:
            with soa_walk_disabled():
                return _compile_suite(
                    device, configs, _cfg(True, s), walkers=walkers,
                    shared_memo=MetricsMemo(),
                )

        run = _best_of(seeds, _scaling_run)
        scaling_runs[str(walkers)] = {
            "total_iterations": run["total_iterations"],
            "total_wall_s": run["total_wall_s"],
            "states_per_sec": run["states_per_sec"],
            "repeat_runs": run["repeat_runs"],
        }
    walker_scaling = _matched_speedup(
        scaling_runs[str(high)], scaling_runs[str(low)]
    )

    return {
        "schema": BENCH_SCHEMA,
        "device": device.name,
        "seed": seed,
        "quick": quick,
        "repeats": max(1, repeats),
        "repeat_seeds": [int(s) for s in seeds],
        "suite": [op.label for op in configs],
        "scalar": scalar,
        "batched": batched,
        "soa": soa,
        "speedup_states_per_sec": speedup,
        "soa_speedup_states_per_sec": soa_speedup,
        "memo": memo_stats,
        "micro": _micro_latencies(device, configs, seed),
        "walker_scaling": {
            "counts": [low, high],
            "runs": scaling_runs,
            "scaling": walker_scaling,
        },
    }


def write_bench(payload: dict, path: str | Path) -> Path:
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out
