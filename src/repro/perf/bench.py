"""The construction-walk benchmark (``python -m repro bench walk``).

Measures the throughput of Gensor's hot path on the Fig. 6 / Table IV
operator suite and writes ``BENCH_walk.json``, so every PR leaves a
comparable perf datapoint:

* **states/sec** of the annealed walk, batched pricing vs the historical
  scalar path (``GensorConfig.batch_scoring=False`` reproduces per-edge
  scalar scoring, scalar polish sweeps, and scalar ranking — the two paths
  produce bit-identical schedules, so the ratio is pure pricing overhead);
* **expand / evaluate micro-latencies** over a sampled frontier;
* **memo hit rate** of the shared :class:`~repro.perf.memo.MetricsMemo`;
* **walker scaling** — aggregate walk throughput with ``walkers=4`` vs
  ``walkers=1`` (shared graph + memo let concurrent walkers reuse each
  other's pricing even under the GIL).

Every run is fully deterministic given ``seed``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.constructor import Gensor, GensorConfig
from repro.core.graph import ConstructionGraph
from repro.hardware.spec import HardwareSpec
from repro.perf.memo import MetricsMemo
from repro.sim.costmodel import CostModel
from repro.utils.caching import hot_path_caching_disabled
from repro.workloads.table4 import TABLE4_CONFIGS

__all__ = ["run_walk_bench", "write_bench", "QUICK_LABELS", "BENCH_SCHEMA"]

BENCH_SCHEMA = "repro.bench.walk/v1"

#: one operator per family — the CI smoke subset.
QUICK_LABELS = ("C1", "M1", "V1", "P1")

#: reduced walk for --quick so the smoke job stays in seconds.  The point
#: of the smoke's walker-scaling gate is that extra walkers must only pay
#: walk time — never re-run the fixed polish/rank/measure pipeline — so
#: the operating point keeps that fixed pipeline prominent relative to
#: the (GIL-serialized) walk.
_QUICK_CONFIG = dict(num_chains=2, max_iterations_per_chain=24, polish_steps=100)


def _suite(quick: bool):
    if quick:
        return [c for c in TABLE4_CONFIGS if c.label in QUICK_LABELS]
    return list(TABLE4_CONFIGS)


def _compile_suite(
    hardware: HardwareSpec,
    configs,
    cfg: GensorConfig,
    walkers: int,
    shared_memo: MetricsMemo,
) -> dict:
    """Compile every operator once; return per-op and aggregate throughput."""
    ops = []
    total_iterations = 0
    total_wall = 0.0
    for op in configs:
        compute = op.build()
        gensor = Gensor(hardware, cfg, memo=shared_memo)
        t0 = time.perf_counter()
        result = gensor.compile(compute, walkers=walkers)
        wall = time.perf_counter() - t0
        total_iterations += result.iterations
        total_wall += wall
        ops.append(
            {
                "label": op.label,
                "iterations": result.iterations,
                "states_visited": result.states_visited,
                "compile_wall_s": wall,
                "states_per_sec": result.iterations / wall if wall > 0 else 0.0,
                "best_latency_s": result.best_metrics.latency_s,
            }
        )
    return {
        "ops": ops,
        "total_iterations": total_iterations,
        "total_wall_s": total_wall,
        "states_per_sec": (
            total_iterations / total_wall if total_wall > 0 else 0.0
        ),
    }


def _micro_latencies(hardware: HardwareSpec, configs, seed: int) -> dict:
    """Expand/evaluate micro-latencies over a sampled walk frontier."""
    from repro.core.policy import TransitionPolicy
    from repro.ir.etir import ETIR
    from repro.utils.rng import spawn_rng

    # Sample ~200 distinct states by walking each operator a few steps.
    states = []
    for op in configs:
        compute = op.build()
        graph = ConstructionGraph(hardware)
        rng = spawn_rng(seed, "bench-micro", compute.name)
        policy = TransitionPolicy(graph, rng)
        state = ETIR.initial(compute, num_levels=hardware.num_cache_levels)
        for step in range(50):
            states.append(state)
            edge = policy.select(state, step * 0.1, frozenset())
            if edge is None:
                break
            state = edge.dst

    model = CostModel(hardware)
    with hot_path_caching_disabled():
        t0 = time.perf_counter()
        for s in states:
            model.evaluate(s)
        scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    model.evaluate_batch(states)
    batch_s = time.perf_counter() - t0

    # Expand timings on fresh graphs (memoized edges would measure a dict hit).
    scalar_graph = ConstructionGraph(hardware, batch_scoring=False)
    with hot_path_caching_disabled():
        t0 = time.perf_counter()
        for s in states:
            scalar_graph.expand(s)
        expand_scalar_s = time.perf_counter() - t0

    batch_graph = ConstructionGraph(hardware, batch_scoring=True)
    t0 = time.perf_counter()
    for s in states:
        batch_graph.expand(s)
    expand_batch_s = time.perf_counter() - t0

    n = max(1, len(states))
    return {
        "sampled_states": len(states),
        "evaluate_scalar_us": scalar_s / n * 1e6,
        "evaluate_batch_us_per_state": batch_s / n * 1e6,
        "expand_scalar_us": expand_scalar_s / n * 1e6,
        "expand_batch_us": expand_batch_s / n * 1e6,
    }


def _best_of(repeats: int, fn) -> dict:
    """Best-of-``repeats`` wall time for one suite compilation.

    Every repetition starts from a fresh memo and the same seed, so the
    compiled schedules are identical — only the wall time varies with
    scheduler noise.  Keeping the fastest run is the standard de-noising
    for shared runners.
    """
    best: dict | None = None
    for _ in range(max(1, repeats)):
        run = fn()
        if best is None or run["total_wall_s"] < best["total_wall_s"]:
            best = run
    return best


def run_walk_bench(
    device,
    seed: int = 0,
    quick: bool = False,
    walker_counts: tuple[int, int] = (1, 4),
    repeats: int = 1,
) -> dict:
    """Run the full walk benchmark; returns the ``BENCH_walk.json`` payload.

    ``device`` is a :class:`HardwareSpec`.  ``quick`` restricts the suite
    to one operator per family with a reduced walk (the CI smoke mode).
    ``repeats`` reports the best wall of N identical runs per measurement.
    """
    configs = _suite(quick)
    base_kwargs = dict(seed=seed, **(_QUICK_CONFIG if quick else {}))
    scalar_cfg = GensorConfig(batch_scoring=False, **base_kwargs)
    batched_cfg = GensorConfig(batch_scoring=True, **base_kwargs)

    # Scalar baseline: per-edge benefit scoring, scalar polish/rank, a
    # private memo standing in for the old per-constructor latency dict,
    # and derived-value caching off — the faithful pre-perf-work path.
    def _scalar_run() -> dict:
        with hot_path_caching_disabled():
            return _compile_suite(
                device, configs, scalar_cfg, walkers=1, shared_memo=MetricsMemo()
            )

    scalar = _best_of(repeats, _scalar_run)

    # Batched path: vectorized scoring through one shared memo.
    def _batched_run() -> dict:
        memo = MetricsMemo()
        run = _compile_suite(
            device, configs, batched_cfg, walkers=1, shared_memo=memo
        )
        run["memo_stats"] = memo.stats()
        return run

    batched = _best_of(repeats, _batched_run)
    memo_stats = batched.pop("memo_stats")
    speedup = (
        batched["states_per_sec"] / scalar["states_per_sec"]
        if scalar["states_per_sec"] > 0
        else 0.0
    )

    # Walker scaling: aggregate walk throughput, fresh memo per count so
    # the second run doesn't free-ride on the first run's pricing.
    low, high = walker_counts
    scaling_runs = {}
    for walkers in (low, high):
        run = _best_of(
            repeats,
            lambda walkers=walkers: _compile_suite(
                device, configs, batched_cfg, walkers=walkers,
                shared_memo=MetricsMemo(),
            ),
        )
        scaling_runs[str(walkers)] = {
            "total_iterations": run["total_iterations"],
            "total_wall_s": run["total_wall_s"],
            "states_per_sec": run["states_per_sec"],
        }
    low_rate = scaling_runs[str(low)]["states_per_sec"]
    high_rate = scaling_runs[str(high)]["states_per_sec"]
    walker_scaling = high_rate / low_rate if low_rate > 0 else 0.0

    return {
        "schema": BENCH_SCHEMA,
        "device": device.name,
        "seed": seed,
        "quick": quick,
        "repeats": max(1, repeats),
        "suite": [op.label for op in configs],
        "scalar": scalar,
        "batched": batched,
        "speedup_states_per_sec": speedup,
        "memo": memo_stats,
        "micro": _micro_latencies(device, configs, seed),
        "walker_scaling": {
            "counts": [low, high],
            "runs": scaling_runs,
            "scaling": walker_scaling,
        },
    }


def write_bench(payload: dict, path: str | Path) -> Path:
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out
