"""Structure-of-arrays walk core (the ROADMAP's last hot-path item).

The annealed walk spends its time in three places: expanding a state's
candidate frontier, checking candidate legality against the device memory
limits, and pricing the Formula 1-3 benefits.  The object path does all
three through per-state ``ETIR`` manipulation — tuple rebuilds, dict-keyed
memo lookups, per-edge scalar arithmetic.  This module re-represents the
frontier as numpy structure-of-arrays: one ``(A, L)`` int64 tile matrix and
one ``(A,)`` vThread vector per state, with candidate generation, legality
masks, and benefit scoring vectorized across the whole frontier in one
shot.

**Parity contract.**  The SoA path is *bit-faithful* to the object path:
every benefit, probability, chosen edge, RNG draw, node count, and traced
event is byte-identical to what ``ConstructionGraph`` + ``TransitionPolicy``
produce.  That holds because

* every integer quantity (footprints, traffic, tile products) is computed
  exactly — int64 vector intermediates, with final cross products that
  could overflow performed as Python ints;
* every float quantity runs the *same IEEE-754 operations in the same
  order* as the scalar code (``math.ceil(a / b)`` becomes
  ``np.ceil(a / b)`` on the identical float64 division, sequential
  accumulations stay sequential per axis/access);
* the roofline/pipe arithmetic is literally shared:
  :func:`repro.core.score.quick_pipe` and
  :func:`repro.sim.costmodel.pipe_metrics` are the same code objects the
  batched object path runs.

The object path stays as the golden oracle: :class:`DifferentialWalker`
runs both paths in lockstep and raises :class:`SoAParityError` on the
first divergence.  The whole module sits behind the ``REPRO_SOA_WALK``
gate (default on); ``soa_walk_disabled()`` restores the object path.

**When the scalar path still wins.**  Tiny frontiers on operators with one
or two axes (elementwise chains) spend more time packing arrays than the
arithmetic saves, and one-off ``polish`` calls on cold computes pay the
pack/bundle build.  The walk amortizes both within a chain, but callers
doing single-state work should stay on the object path.
"""

from __future__ import annotations

import math
import os
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.actions import ActionKind
from repro.core.graph import DEFAULT_MAX_CACHED_STATES
from repro.core.policy import append_probability, cache_anneal_factor
from repro.core.score import quick_pipe
from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.obs.tracer import Tracer
from repro.sim.costmodel import pipe_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (constructor imports us lazily)
    from repro.core.constructor import GensorConfig
    from repro.resilience.deadline import CancelToken

__all__ = [
    "SOA_WALK",
    "soa_walk_enabled",
    "soa_walk_disabled",
    "soa_walk_forced",
    "SoAParityError",
    "SoAPack",
    "pack_for",
    "SoAFrontier",
    "SoAEdge",
    "SoAWalkEngine",
    "DifferentialWalker",
]

#: cap on the per-(compute, hardware) shared latency memos; cleared (not
#: trimmed — entries are tiny) past this, like the ETIR derived pools.
_MEMO_CAP = 65_536

#: cap for the per-row footprint/traffic/coalescing caches (tile vectors
#: are tiny keys, so this is a few MB at worst; cleared wholesale on
#: overflow — recomputation is value-identical).
_ROW_CACHE_CAP = 262_144


# -- gate --------------------------------------------------------------------


class _Toggle:
    __slots__ = ("enabled",)

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_SOA_WALK")
    if value is None:
        return True
    return value.strip().lower() not in ("0", "false", "off", "no")


#: process-wide switch for the SoA walk core, seeded from ``REPRO_SOA_WALK``
#: (default on).  Consulted by :meth:`Gensor.compile` and :meth:`Gensor.polish`.
SOA_WALK = _Toggle(_env_enabled())


def soa_walk_enabled() -> bool:
    return SOA_WALK.enabled


@contextmanager
def soa_walk_disabled() -> Iterator[None]:
    """Run a block on the object path (bench baseline / oracle mode)."""
    prev = SOA_WALK.enabled
    SOA_WALK.enabled = False
    try:
        yield
    finally:
        SOA_WALK.enabled = prev


@contextmanager
def soa_walk_forced() -> Iterator[None]:
    """Run a block with the SoA path on regardless of the ambient setting."""
    prev = SOA_WALK.enabled
    SOA_WALK.enabled = True
    try:
        yield
    finally:
        SOA_WALK.enabled = prev


class SoAParityError(AssertionError):
    """The SoA path diverged from the object-path oracle."""


# -- static per-compute packing ----------------------------------------------


class SoAPack:
    """Packed static structure of one :class:`ComputeDef`.

    Everything the vectorized footprint/traffic/feature kernels need that
    does not depend on the tile configuration: axis extents and kinds, the
    absolute affine coefficients of every access as an ``(ndim, A)`` matrix
    (so index spans become one small matmul), and the scalar workload
    constants.  Built once per compute via :func:`pack_for`.
    """

    __slots__ = (
        "num_axes",
        "extent_list",
        "extents",
        "extents_f",
        "is_reduce",
        "spatial_idx",
        "reduce_idx",
        "last_spatial",
        "all_inputs",
        "unique_inputs",
        "out_bytes",
        "flops_per_point",
        "total_flops",
        "total_io",
        "traffic_int64_safe",
        "_fp_cache",
        "_fpo_cache",
        "_traffic_cache",
    )

    def __init__(self, compute: ComputeDef) -> None:
        axes = compute.axes
        a_count = len(axes)
        self.num_axes = a_count
        self.extent_list = [ax.extent for ax in axes]
        self.extents = np.array(self.extent_list, dtype=np.int64)
        self.extents_f = self.extents.astype(np.float64)
        self.is_reduce = [ax.is_reduce for ax in axes]
        reduce_mask = np.array(self.is_reduce, dtype=bool)
        self.spatial_idx = [int(i) for i in np.nonzero(~reduce_mask)[0]]
        self.reduce_idx = [int(i) for i in np.nonzero(reduce_mask)[0]]
        self.last_spatial = self.spatial_idx[-1] if self.spatial_idx else None
        name_to_idx = {ax.name: i for i, ax in enumerate(axes)}
        # One (coefs, dims, dtype_bytes) triple per access, in declaration
        # order.  ``coefs[d, a]`` is |coefficient| of axis ``a`` in dim
        # ``d``'s index — the span under tiles T is then 1 + (T-1) @ coefs.T,
        # exactly AffineExpr.extent_under_tiles per dimension.
        self.all_inputs: list[tuple[np.ndarray, np.ndarray, int]] = []
        for acc in compute.inputs:
            coefs = np.zeros((len(acc.indices), a_count), dtype=np.int64)
            for d, expr in enumerate(acc.indices):
                for nm, c in expr.terms.items():
                    coefs[d, name_to_idx[nm]] = abs(int(c))
            dims = np.array(acc.tensor.shape, dtype=np.int64)
            self.all_inputs.append((coefs, dims, acc.tensor.dtype_bytes))
        # Footprints dedup repeated reads of the same slab by
        # (tensor, index expressions), preserving declaration order —
        # mirrors repro.ir.access._unique_inputs.
        seen: set[tuple] = set()
        self.unique_inputs = []
        for acc, packed in zip(compute.inputs, self.all_inputs):
            key = (acc.tensor.name, acc.indices)
            if key in seen:
                continue
            seen.add(key)
            self.unique_inputs.append(packed)
        self.out_bytes = compute.output.dtype_bytes
        self.flops_per_point = compute.flops_per_point
        self.total_flops = float(compute.total_flops)
        self.total_io = float(compute.total_io_bytes())
        # Whether the traffic cross products provably fit in int64 for every
        # tile config: counts ≤ extents, footprints ≤ full-tensor bytes.
        # When they do the per-row products run vectorized; otherwise they
        # fall back to exact Python ints (the object path's arithmetic).
        count_bound = 1
        for ext in self.extent_list:
            count_bound *= max(1, ext)
        fp_bound = 0
        for _coefs, dims, nbytes in self.unique_inputs:
            full = nbytes
            for d in dims.tolist():
                full *= d
            fp_bound += full
        ote_bound = 1
        for a in self.spatial_idx:
            ote_bound *= self.extent_list[a]
        traffic_bound = count_bound * fp_bound + count_bound * ote_bound * self.out_bytes
        self.traffic_int64_safe = traffic_bound < 2**62
        self._fp_cache: dict[bytes, int] = {}
        self._fpo_cache: dict[bytes, int] = {}
        self._traffic_cache: dict[bytes, int] = {}

    # ``tiles`` below is always an ``(n, A)`` int64 matrix of per-axis tile
    # sizes at one level — the vector analogue of a tile_sizes mapping.

    def footprint_bytes(
        self, tiles: np.ndarray, include_output: bool
    ) -> np.ndarray:
        """Exact ``tile_footprint_bytes`` per row, as an int64 vector.

        Row-cached: tile vectors recur constantly across frontiers and
        polish neighborhoods (a move changes one component, the rest of
        the row keeps its footprint), so each distinct row is priced once
        per pack.
        """
        cache = self._fpo_cache if include_output else self._fp_cache
        if len(cache) > _ROW_CACHE_CAP:
            cache.clear()
        n = tiles.shape[0]
        out = np.empty(n, dtype=np.int64)
        missing: list[int] = []
        mkeys: list[bytes] = []
        for i in range(n):
            key = tiles[i].tobytes()
            val = cache.get(key)
            if val is None:
                missing.append(i)
                mkeys.append(key)
            else:
                out[i] = val
        if missing:
            vals = self._footprint_uncached(tiles[missing], include_output)
            for i, key, v in zip(missing, mkeys, vals.tolist()):
                out[i] = v
                cache[key] = v
        return out

    def _footprint_uncached(
        self, tiles: np.ndarray, include_output: bool
    ) -> np.ndarray:
        total = np.zeros(tiles.shape[0], dtype=np.int64)
        tm1 = tiles - 1
        for coefs, dims, nbytes in self.unique_inputs:
            spans = 1 + tm1 @ coefs.T
            elems = np.minimum(spans, dims).prod(axis=1)
            total = total + elems * nbytes
        if include_output:
            out = np.ones(tiles.shape[0], dtype=np.int64)
            for a in self.spatial_idx:
                out = out * np.minimum(tiles[:, a], self.extent_list[a])
            total = total + out * self.out_bytes
        return total

    def traffic_bytes_ints(self, tiles: np.ndarray) -> list[int]:
        """Exact ``tile_traffic_bytes`` per row, as Python ints (row-cached).

        Span/count intermediates are int64 vectors; the final per-row
        products run as Python ints when ``spatial * reduce * footprint``
        could exceed 2**63 on large shapes (the object path computes them
        as exact Python ints too, and Formula 1 divides the exact cross
        products) and vectorized when the pack's shape bound proves int64
        cannot overflow.
        """
        cache = self._traffic_cache
        if len(cache) > _ROW_CACHE_CAP:
            cache.clear()
        n = tiles.shape[0]
        out: list = [None] * n
        missing: list[int] = []
        mkeys: list[bytes] = []
        for i in range(n):
            key = tiles[i].tobytes()
            val = cache.get(key)
            if val is None:
                missing.append(i)
                mkeys.append(key)
            else:
                out[i] = val
        if missing:
            vals = self._traffic_uncached(tiles[missing])
            for i, key, v in zip(missing, mkeys, vals):
                out[i] = v
                cache[key] = v
        return out

    def _traffic_uncached(self, tiles: np.ndarray) -> list[int]:
        clipped = np.minimum(tiles, self.extents)
        counts = np.ceil(self.extents_f / clipped.astype(np.float64)).astype(
            np.int64
        )
        fin = self.footprint_bytes(tiles, include_output=False)
        if self.traffic_int64_safe:
            n = tiles.shape[0]
            sp = np.ones(n, dtype=np.int64)
            rt = np.ones(n, dtype=np.int64)
            ote = np.ones(n, dtype=np.int64)
            for a, red in enumerate(self.is_reduce):
                if red:
                    rt = rt * counts[:, a]
                else:
                    sp = sp * counts[:, a]
                    ote = ote * clipped[:, a]
            return (sp * rt * fin + sp * ote * self.out_bytes).tolist()
        out: list[int] = []
        for crow, trow, f in zip(counts.tolist(), clipped.tolist(), fin.tolist()):
            sp = 1
            rt = 1
            ote = 1
            for a, red in enumerate(self.is_reduce):
                if red:
                    rt *= crow[a]
                else:
                    sp *= crow[a]
                    ote *= trow[a]
            out.append(sp * rt * f + sp * ote * self.out_bytes)
        return out


def pack_for(compute: ComputeDef) -> SoAPack:
    """The compute's :class:`SoAPack`, built once and cached on it."""
    pack = compute.__dict__.get("_soa_pack")
    if pack is None:
        pack = compute.__dict__["_soa_pack"] = SoAPack(compute)
    return pack


class _SoABundle:
    """Shared per-(compute, hardware) state: the pack plus latency memos.

    The quick/full latencies depend only on ``(tiles, vthreads)`` — not the
    current level — so engines for the same compute/device pair share them
    across compiles.  Specs are bucketed by identity and retained in the
    bucket so their id cannot be recycled (the ``_memok_cache`` pattern).
    """

    __slots__ = ("hw", "pack", "quick", "full", "coal")

    def __init__(self, hw: HardwareSpec, pack: SoAPack) -> None:
        self.hw = hw
        self.pack = pack
        self.quick: dict[tuple[bytes, bytes], float] = {}
        self.full: dict[tuple[bytes, bytes], float] = {}
        #: per-block-row coalescing factors (warp-size dependent, hence
        #: bundled with the hardware rather than the pack).
        self.coal: dict[bytes, float] = {}


def _bundle_for(compute: ComputeDef, hw: HardwareSpec) -> _SoABundle:
    per_hw = compute.__dict__.get("_soa_bundles")
    if per_hw is None:
        per_hw = compute.__dict__["_soa_bundles"] = {}
    bundle = per_hw.get(id(hw))
    if bundle is None:
        bundle = per_hw[id(hw)] = _SoABundle(hw, pack_for(compute))
    return bundle


# -- the encode/decode boundary ----------------------------------------------


class SoAFrontier:
    """A batch of walk states packed as structure-of-arrays.

    ``tiles`` is ``(n, A, L)`` int64, ``vthreads`` ``(n, A)`` int64, and
    ``cur_levels`` ``(n,)`` int64.  :meth:`encode` / :meth:`decode` are the
    only crossings between ETIR objects and the packed representation; the
    round trip is exact (plain Python ints on the way out, re-validated by
    the ETIR constructor).
    """

    __slots__ = ("compute", "num_levels", "tiles", "vthreads", "cur_levels")

    def __init__(
        self,
        compute: ComputeDef,
        num_levels: int,
        tiles: np.ndarray,
        vthreads: np.ndarray,
        cur_levels: np.ndarray,
    ) -> None:
        self.compute = compute
        self.num_levels = num_levels
        self.tiles = tiles
        self.vthreads = vthreads
        self.cur_levels = cur_levels

    @classmethod
    def encode(cls, states: list[ETIR]) -> "SoAFrontier":
        if not states:
            raise ValueError("cannot encode an empty frontier")
        compute = states[0].compute
        num_levels = states[0].num_levels
        for s in states:
            if s.compute is not compute and s.compute != compute:
                raise ValueError("frontier mixes computes")
            if s.num_levels != num_levels:
                raise ValueError("frontier mixes num_levels")
        tiles = np.empty(
            (len(states), len(compute.axes), num_levels), dtype=np.int64
        )
        vthreads = np.empty((len(states), len(compute.axes)), dtype=np.int64)
        cur_levels = np.empty(len(states), dtype=np.int64)
        for i, s in enumerate(states):
            t, v = s.config_arrays()
            tiles[i] = t
            vthreads[i] = v
            cur_levels[i] = s.cur_level
        return cls(compute, num_levels, tiles, vthreads, cur_levels)

    def decode(self) -> list[ETIR]:
        return [
            ETIR.from_arrays(
                self.compute,
                self.tiles[i],
                self.vthreads[i],
                int(self.cur_levels[i]),
                self.num_levels,
            )
            for i in range(len(self))
        ]

    def __len__(self) -> int:
        return self.tiles.shape[0]


# -- edges and expansion ------------------------------------------------------


class SoAEdge:
    """A surviving transition in packed form (mirror of ``graph.Edge``).

    The arrays are owned by the engine and never mutated after creation —
    destinations share their unchanged source arrays (e.g. a vThread edge
    shares the tile matrix).
    """

    __slots__ = ("kind", "axis", "benefit", "tiles", "vthreads", "level")

    def __init__(
        self,
        kind: str,
        axis: int,
        benefit: float,
        tiles: np.ndarray,
        vthreads: np.ndarray,
        level: int,
    ) -> None:
        self.kind = kind
        self.axis = axis
        self.benefit = benefit
        self.tiles = tiles
        self.vthreads = vthreads
        self.level = level

    def dst_config(self) -> tuple:
        """The destination's ``(tiles, vthreads, cur_level)`` as the plain
        tuples an equal ``ETIR.key()`` would carry."""
        return (
            tuple(tuple(row) for row in self.tiles.tolist()),
            tuple(self.vthreads.tolist()),
            self.level,
        )


class _Slot:
    """One enumerated action template (pre-legality), in enumeration order."""

    __slots__ = ("kind", "axis", "tiles", "vthreads", "level")

    def __init__(
        self,
        kind: str,
        axis: int,
        tiles: np.ndarray | None,
        vthreads: np.ndarray | None,
        level: int,
    ) -> None:
        self.kind = kind
        self.axis = axis
        self.tiles = tiles  # None => structurally illegal
        self.vthreads = vthreads
        self.level = level


class SoAWalkEngine:
    """Vectorized construction-graph expansion and walk for one operator.

    Mirrors ``ConstructionGraph`` + ``TransitionPolicy`` bit-for-bit (see
    the module docstring for the contract): same node bookkeeping, same
    memo/eviction choreography (so ``num_nodes`` matches the object path
    even past the cache cap), same RNG consumption per chain, same traced
    events.  One engine per compile — the edge memo affects ``num_nodes``
    through eviction/recomputation, so sharing it across compiles would
    diverge from a fresh ``ConstructionGraph``.  The latency memos *are*
    shared across compiles (per compute/device bundle): latencies are pure
    state functions, so reuse changes no value.
    """

    def __init__(
        self,
        compute: ComputeDef,
        hardware: HardwareSpec,
        multi_objective: bool = True,
        num_levels: int | None = None,
        forbid: frozenset[str] = frozenset(),
        max_cached_states: int = DEFAULT_MAX_CACHED_STATES,
    ) -> None:
        self.compute = compute
        self.hw = hardware
        self.multi_objective = multi_objective
        self.num_levels = (
            num_levels if num_levels is not None else hardware.num_cache_levels
        )
        self.forbid = forbid
        self.max_cached_states = max_cached_states
        self.pack = pack_for(compute)
        self.bundle = _bundle_for(compute, hardware)
        self._nodes: dict[tuple, bool] = {}
        self._edges: dict[tuple, list[SoAEdge]] = {}
        self._nodes_seen = 0

    # -- node bookkeeping (mirrors ConstructionGraph) -------------------------

    @staticmethod
    def _key(tiles: np.ndarray, vthreads: np.ndarray, level: int) -> tuple:
        return (tiles.tobytes(), vthreads.tobytes(), level)

    def _add_node(self, key: tuple) -> None:
        if key not in self._nodes:
            self._nodes[key] = True
            self._nodes_seen += 1

    @property
    def num_nodes(self) -> int:
        """Distinct states ever added (monotone — unaffected by eviction)."""
        return self._nodes_seen

    def _maybe_evict(self) -> None:
        cap = self.max_cached_states
        if cap <= 0:
            return
        # Rebind fresh dicts rather than mutating in place, so concurrent
        # walkers iterating the old reference never see a resize (same
        # discipline — and same retained half — as the graph).
        if len(self._nodes) > cap:
            items = list(self._nodes.items())
            self._nodes = dict(items[len(items) // 2 :])
        if len(self._edges) > cap:
            eitems = list(self._edges.items())
            self._edges = dict(eitems[len(eitems) // 2 :])

    # -- checkpoint support ----------------------------------------------------

    def export_nodes(self) -> tuple[list[tuple], int]:
        """Portable node identities for a :class:`WalkCheckpoint`.

        Mirrors ``ConstructionGraph.export_nodes``: the cached node keys
        as insertion-ordered ``(tiles, vthreads, level)`` tuples plus the
        monotone ``_nodes_seen`` counter.  Membership matters, not just
        the count — ``_add_node`` only increments for unseen keys, so a
        resumed walk's future ``num_nodes`` depends on exactly which keys
        the snapshot preserved.  Edge memos are deliberately not exported
        (expansion is deterministic; resumed recomputation is
        value-identical).
        """
        a_count = self.pack.num_axes
        configs: list[tuple] = []
        for tiles_b, vthreads_b, level in self._nodes:
            tiles = np.frombuffer(tiles_b, dtype=np.int64).reshape(a_count, -1)
            vthreads = np.frombuffer(vthreads_b, dtype=np.int64)
            configs.append(
                (
                    tuple(tuple(row) for row in tiles.tolist()),
                    tuple(vthreads.tolist()),
                    int(level),
                )
            )
        return configs, self._nodes_seen

    def restore_nodes(self, configs: "Iterable[tuple]", nodes_seen: int) -> None:
        """Rebuild the node memo a checkpoint exported (insertion order kept)."""
        nodes: dict[tuple, bool] = {}
        for tiles, vthreads, level in configs:
            key = (
                np.array(tiles, dtype=np.int64).tobytes(),
                np.array(vthreads, dtype=np.int64).tobytes(),
                int(level),
            )
            nodes[key] = True
        self._nodes = nodes
        self._nodes_seen = int(nodes_seen)

    def _build_checkpoint(
        self,
        cfg: "GensorConfig",
        chain: int,
        iteration: int,
        total_steps: int,
        temperature: float,
        tiles: np.ndarray,
        vthreads: np.ndarray,
        level: int,
        rng: np.random.Generator,
        candidates: dict[tuple, ETIR],
    ):
        """Assemble a walk checkpoint from the chain's packed state.

        Runs only on the (rare) steps the cadence fires, at the iteration
        boundary — never inside the scored hot loop.
        """
        from repro.resilience.checkpoint import build_walk_checkpoint

        node_keys, nodes_seen = self.export_nodes()
        return build_walk_checkpoint(
            self.compute,
            cfg,
            num_levels=self.num_levels,
            chain=chain,
            iteration=iteration,
            total_steps=total_steps,
            temperature=temperature,
            state_config=(
                tuple(tuple(row) for row in tiles.tolist()),
                tuple(vthreads.tolist()),
                int(level),
            ),
            rng=rng,
            candidate_configs=[
                (s.config.tiles, s.config.vthreads, s.cur_level)
                for s in candidates.values()
            ],
            node_keys=node_keys,
            nodes_seen=nodes_seen,
        )

    # -- expansion -------------------------------------------------------------

    def expand(
        self, tiles: np.ndarray, vthreads: np.ndarray, level: int
    ) -> list[SoAEdge]:
        """Legal outgoing edges (benefit > 0), memoized — ``graph.expand``."""
        key = self._key(tiles, vthreads, level)
        self._add_node(key)
        cached = self._edges.get(key)
        if cached is not None:
            return cached
        candidates, benefits = self._compute_expansion(tiles, vthreads, level)
        edges: list[SoAEdge] = []
        for slot, benefit in zip(candidates, benefits):
            if benefit <= 0.0:
                continue
            assert slot.tiles is not None and slot.vthreads is not None
            self._add_node(self._key(slot.tiles, slot.vthreads, slot.level))
            edges.append(
                SoAEdge(
                    slot.kind,
                    slot.axis,
                    benefit,
                    slot.tiles,
                    slot.vthreads,
                    slot.level,
                )
            )
        self._edges[key] = edges
        self._maybe_evict()
        return edges

    def expand_detail(
        self, tiles: np.ndarray, vthreads: np.ndarray, level: int
    ) -> list[dict]:
        """Slot-level expansion for the differential harness.

        One dict per enumerated action template (illegal ones included), in
        enumeration order, without touching the node/edge memos:
        ``{kind, axis, legal, mem_ok, benefit, dst_config}``.
        """
        slots, candidates, benefits, memok = self._expansion_slots(
            tiles, vthreads, level
        )
        by_slot: dict[int, tuple[float, bool, tuple]] = {}
        for j, (slot_idx, slot) in enumerate(candidates):
            assert slot.tiles is not None and slot.vthreads is not None
            cfg = (
                tuple(tuple(row) for row in slot.tiles.tolist()),
                tuple(slot.vthreads.tolist()),
                slot.level,
            )
            by_slot[slot_idx] = (benefits[j], bool(memok[j]), cfg)
        detail = []
        for i, slot in enumerate(slots):
            benefit, mem_ok, cfg = by_slot.get(i, (0.0, False, None))
            detail.append(
                {
                    "kind": slot.kind,
                    "axis": slot.axis,
                    "legal": slot.tiles is not None,
                    "mem_ok": mem_ok,
                    "benefit": benefit,
                    "dst_config": cfg,
                }
            )
        return detail

    def _compute_expansion(
        self, tiles: np.ndarray, vthreads: np.ndarray, level: int
    ) -> tuple[list[_Slot], list[float]]:
        _slots, candidates, benefits, _memok = self._expansion_slots(
            tiles, vthreads, level
        )
        return [slot for _i, slot in candidates], benefits

    def _expansion_slots(
        self, tiles: np.ndarray, vthreads: np.ndarray, level: int
    ) -> tuple[list[_Slot], list[tuple[int, _Slot]], list[float], np.ndarray]:
        """Enumerate, legality-check, and price one state's frontier.

        Returns ``(slots, candidates, benefits, memok)`` where ``slots`` is
        every action template in ``enumerate_actions`` order, ``candidates``
        the structurally legal ones as ``(slot_idx, slot)``, ``benefits``
        their benefit values (0.0 on memory-check failure), and ``memok``
        the candidates' relaxed memory-check mask.
        """
        pack = self.pack
        hw = self.hw
        forbid = self.forbid
        a_count = pack.num_axes
        num_levels = tiles.shape[1]
        rows = tiles.tolist()
        vlist = vthreads.tolist()

        slots: list[_Slot] = []
        for a in range(a_count):
            if ActionKind.TILE_UP not in forbid:
                cur = rows[a][level - 1]
                upper = (
                    pack.extent_list[a]
                    if level == num_levels
                    else rows[a][level]
                )
                new: int | None = cur * 2
                if new > upper:
                    new = upper if cur < upper else None
                if new is None:
                    slots.append(_Slot(ActionKind.TILE_UP, a, None, None, level))
                else:
                    dst = tiles.copy()
                    dst[a, level - 1] = new
                    slots.append(
                        _Slot(ActionKind.TILE_UP, a, dst, vthreads, level)
                    )
            if ActionKind.TILE_DOWN not in forbid:
                cur = rows[a][level - 1]
                down = cur // 2
                lower = 1 if level == 1 else rows[a][level - 2]
                if level == 1:
                    lower = max(lower, vlist[a])
                if down < lower:
                    slots.append(
                        _Slot(ActionKind.TILE_DOWN, a, None, None, level)
                    )
                else:
                    dst = tiles.copy()
                    dst[a, level - 1] = down
                    slots.append(
                        _Slot(ActionKind.TILE_DOWN, a, dst, vthreads, level)
                    )
            if not pack.is_reduce[a] and level == 1:
                if ActionKind.VTHREAD_UP not in forbid:
                    count = vlist[a] * 2
                    if count > rows[a][0]:
                        slots.append(
                            _Slot(ActionKind.VTHREAD_UP, a, None, None, level)
                        )
                    else:
                        dv = vthreads.copy()
                        dv[a] = count
                        slots.append(
                            _Slot(ActionKind.VTHREAD_UP, a, tiles, dv, level)
                        )
                if ActionKind.VTHREAD_DOWN not in forbid:
                    v = vlist[a]
                    if v <= 1:
                        slots.append(
                            _Slot(ActionKind.VTHREAD_DOWN, a, None, None, level)
                        )
                    else:
                        dv = vthreads.copy()
                        dv[a] = v // 2
                        slots.append(
                            _Slot(ActionKind.VTHREAD_DOWN, a, tiles, dv, level)
                        )
        if level > 1 and ActionKind.CACHE not in forbid:
            slots.append(_Slot(ActionKind.CACHE, -1, tiles, vthreads, level - 1))

        candidates = [(i, s) for i, s in enumerate(slots) if s.tiles is not None]
        n = len(candidates)
        if n == 0:
            return slots, candidates, [], np.zeros(0, dtype=bool)

        dst_tiles = np.stack([s.tiles for _i, s in candidates])
        block = dst_tiles[:, :, num_levels - 1]
        thread = dst_tiles[:, :, 0]
        memok, _smem_fp, _regs = self._memok_relaxed(block, thread)

        # Formula 1-3 formulas, in candidate order; the source Q/F terms
        # shared by every tiling candidate are computed lazily once.
        benefits = [0.0] * n
        needs_accel: list[int] = []
        tiling_rows: list[int] = []
        cache_formula: float | None = None
        for j, (_i, slot) in enumerate(candidates):
            if not memok[j]:
                continue
            if slot.kind in (ActionKind.TILE_UP, ActionKind.TILE_DOWN):
                tiling_rows.append(j)
            elif slot.kind == ActionKind.CACHE:
                if cache_formula is None:
                    cache_formula = self._caching_benefit(tiles, level, num_levels)
                benefits[j] = cache_formula
            else:
                assert slot.vthreads is not None
                benefits[j] = self._vthread_benefit(
                    slot.axis,
                    tiles,
                    num_levels,
                    vlist[slot.axis],
                    int(slot.vthreads[slot.axis]),
                )
            if slot.kind != ActionKind.CACHE and self.multi_objective:
                needs_accel.append(j)

        if tiling_rows:
            # Stack [src; tiling dsts] current-level tile rows and price
            # Q/F exactly once, vectorized; the division is Formula 1.
            lvl_rows = np.empty((len(tiling_rows) + 1, a_count), dtype=np.int64)
            lvl_rows[0] = tiles[:, level - 1]
            for k, j in enumerate(tiling_rows):
                slot = candidates[j][1]
                assert slot.tiles is not None
                lvl_rows[k + 1] = slot.tiles[:, level - 1]
            traffic = pack.traffic_bytes_ints(lvl_rows)
            footprint = pack.footprint_bytes(
                lvl_rows, include_output=True
            ).tolist()
            q_old, f_old = traffic[0], footprint[0]
            for k, j in enumerate(tiling_rows):
                benefits[j] = self._tiling_ratio(
                    q_old, f_old, traffic[k + 1], footprint[k + 1]
                )

        if needs_accel:
            benefits = self._apply_acceleration(
                tiles, vthreads, candidates, benefits, needs_accel
            )
        return slots, candidates, benefits, memok

    def _tiling_ratio(
        self, q_old: int, f_old: int, q_new: int, f_new: int
    ) -> float:
        """Formula 1 from exact integer Q/F terms (one float division).

        Kept as a seam the differential harness can perturb to prove the
        oracle actually detects divergence.
        """
        if q_new == 0 or f_old == 0:
            return 0.0
        return (q_old * f_new) / (q_new * f_old)

    def _caching_benefit(
        self, tiles: np.ndarray, level: int, num_levels: int
    ) -> float:
        """Formula 2 at the source state's current level."""
        hw = self.hw
        if level >= num_levels:
            low, high = hw.dram, hw.smem
        else:
            low, high = hw.smem, hw.regs
        s_data = float(
            int(
                self.pack.footprint_bytes(
                    tiles[:, level - 1][None, :], include_output=False
                )[0]
            )
        )
        t_low = low.latency_s + s_data / low.bandwidth_bytes_per_s
        t_high = high.latency_s + s_data / high.bandwidth_bytes_per_s
        if t_high <= 0:
            return 0.0
        return t_low / t_high

    def _vthread_benefit(
        self,
        axis: int,
        tiles: np.ndarray,
        num_levels: int,
        v_old: int,
        v_new: int,
    ) -> float:
        """Formula 3: conflict-group ratio on the innermost spatial axis."""
        pack = self.pack
        if pack.last_spatial is None or axis != pack.last_spatial:
            return 1.0
        t1 = int(tiles[axis, 0])
        t_block = int(tiles[axis, num_levels - 1])
        x = t1 * max(1, t_block // max(1, t1))
        x = max(1, min(x, pack.extent_list[axis]))
        w = self.hw.bank_width_elems
        groups_old = float(math.ceil(x / (v_old * w)))
        groups_new = float(math.ceil(x / (v_new * w)))
        if groups_new <= 0:
            return 0.0
        return groups_old / groups_new

    def _apply_acceleration(
        self,
        tiles: np.ndarray,
        vthreads: np.ndarray,
        candidates: list[tuple[int, _Slot]],
        benefits: list[float],
        needs_accel: list[int],
    ) -> list[float]:
        """The roofline term of ``action_benefits``, memo-backed."""
        quick = self.bundle.quick
        if len(quick) > _MEMO_CAP:
            quick.clear()
        src_key = (tiles.tobytes(), vthreads.tobytes())
        before = quick.get(src_key)
        if before is None:
            before = float(self._quick_latencies(tiles[None], vthreads[None])[0])
            quick[src_key] = before

        afters: list[float | None] = [None] * len(needs_accel)
        missing: list[int] = []
        keys: list[tuple[bytes, bytes]] = []
        for k, j in enumerate(needs_accel):
            slot = candidates[j][1]
            assert slot.tiles is not None and slot.vthreads is not None
            key = (slot.tiles.tobytes(), slot.vthreads.tobytes())
            keys.append(key)
            afters[k] = quick.get(key)
            if afters[k] is None:
                missing.append(k)
        if missing:
            batch_t = np.stack(
                [candidates[needs_accel[k]][1].tiles for k in missing]
            )
            batch_v = np.stack(
                [candidates[needs_accel[k]][1].vthreads for k in missing]
            )
            lats = self._quick_latencies(batch_t, batch_v)
            for k, lat in zip(missing, lats):
                afters[k] = float(lat)
                quick[keys[k]] = float(lat)

        for k, j in enumerate(needs_accel):
            after = afters[k]
            assert after is not None
            if not math.isfinite(after) or after <= 0:
                accel = 0.0
            elif not math.isfinite(before):
                accel = 4.0
            else:
                accel = min(16.0, before / after)
            benefits[j] = benefits[j] * accel
        return benefits

    # -- legality / feature kernels -------------------------------------------

    def _memok_relaxed(
        self, block: np.ndarray, thread: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Traversal-time memory check per row: smem slab + register budget.

        Returns ``(ok, smem_fp, regs)``; the latter two feed the strict
        check and the cost-model features.
        """
        pack = self.pack
        smem_fp = pack.footprint_bytes(block, include_output=False)
        regs_nbytes = pack.footprint_bytes(thread, include_output=True)
        regs = np.maximum(
            1, np.ceil(regs_nbytes.astype(np.float64) / 4).astype(np.int64)
        )
        ok = (smem_fp <= self.hw.smem.capacity_bytes) & (regs <= 255)
        return ok, smem_fp, regs

    def _tpb(self, block: np.ndarray, thread: np.ndarray) -> np.ndarray:
        """threads_per_block per row (exact int64)."""
        tpb = np.ones(block.shape[0], dtype=np.int64)
        for a in self.pack.spatial_idx:
            tpb = tpb * np.ceil(block[:, a] / thread[:, a]).astype(np.int64)
        return tpb

    def _nblk(self, block: np.ndarray) -> np.ndarray:
        """num_blocks per row (exact int64)."""
        pack = self.pack
        nblk = np.ones(block.shape[0], dtype=np.int64)
        for a in pack.spatial_idx:
            nblk = nblk * np.ceil(pack.extent_list[a] / block[:, a]).astype(
                np.int64
            )
        return nblk

    def _coalescing(self, block: np.ndarray) -> np.ndarray:
        """Footprint-weighted coalescing factor per row (row-cached).

        Same access loop, same accumulation order, same float operations
        as ``score._coalescing_uncached`` / the cost model's twin.
        """
        cache = self.bundle.coal
        if len(cache) > _ROW_CACHE_CAP:
            cache.clear()
        n = block.shape[0]
        out = np.empty(n)
        missing: list[int] = []
        mkeys: list[bytes] = []
        for i in range(n):
            key = block[i].tobytes()
            val = cache.get(key)
            if val is None:
                missing.append(i)
                mkeys.append(key)
            else:
                out[i] = val
        if missing:
            vals = self._coalescing_uncached(block[missing])
            for i, key, v in zip(missing, mkeys, vals.tolist()):
                out[i] = v
                cache[key] = v
        return out

    def _coalescing_uncached(self, block: np.ndarray) -> np.ndarray:
        n = block.shape[0]
        warp = self.hw.warp_size
        acc_f = np.zeros(n)
        total_w = np.zeros(n)
        tm1 = block - 1
        for coefs, dims, nbytes in self.pack.all_inputs:
            spans = 1 + tm1 @ coefs.T
            clipped = np.minimum(spans, dims)
            width = clipped[:, -1]
            factor = np.where(
                width >= warp, 1.0, float(warp) / width.astype(np.float64)
            )
            weight = (clipped.prod(axis=1) * nbytes).astype(np.float64)
            acc_f = acc_f + factor * weight
            total_w = total_w + weight
        safe = np.where(total_w != 0.0, total_w, 1.0)
        return np.where(total_w != 0.0, acc_f / safe, 1.0)

    def _conflict(
        self, block: np.ndarray, thread: np.ndarray, vthreads: np.ndarray
    ) -> np.ndarray:
        """Bank-conflict transaction factor per row (quick & full models)."""
        n = block.shape[0]
        pack = self.pack
        if pack.last_spatial is None:
            return np.ones(n)
        ls = pack.last_spatial
        t1 = thread[:, ls]
        t_block = block[:, ls]
        threads_row = np.maximum(1, t_block // np.maximum(1, t1))
        span = np.maximum(1, np.minimum(self.hw.warp_size, threads_row) * t1)
        vt = np.ones(n, dtype=np.int64)
        for a in range(pack.num_axes):
            vt = vt * vthreads[:, a]
        groups = np.ceil(
            span.astype(np.float64)
            / (vt * self.hw.bank_width_elems).astype(np.float64)
        )
        return 1.0 + 0.35 * (groups - 1.0)

    def _quick_latencies(
        self, tiles3: np.ndarray, vthreads2: np.ndarray
    ) -> np.ndarray:
        """``quick_latency(strict=False)`` per row, via the shared pipe."""
        n = tiles3.shape[0]
        out = np.full(n, math.inf)
        num_levels = tiles3.shape[2]
        block = tiles3[:, :, num_levels - 1]
        thread = tiles3[:, :, 0]
        ok, _smem_fp, _regs = self._memok_relaxed(block, thread)
        idx = np.nonzero(ok)[0]
        if idx.size == 0:
            return out
        cols = self._quick_cols(block[idx], thread[idx], vthreads2[idx])
        out[idx] = quick_pipe(cols, self.hw)
        return out

    def _quick_cols(
        self, block: np.ndarray, thread: np.ndarray, vthreads: np.ndarray
    ) -> np.ndarray:
        """The 8 ``quick_pipe`` feature rows for feasible rows."""
        pack = self.pack
        n = block.shape[0]
        tpb = self._tpb(block, thread).astype(np.float64)
        nblk = self._nblk(block).astype(np.float64)
        inner_work = np.ones(n)
        for a in range(pack.num_axes):
            inner_work = inner_work * thread[:, a].astype(np.float64)
        coalesce = self._coalescing(block)
        conflict = self._conflict(block, thread, vthreads)
        dram_q = np.array(
            [float(q) for q in pack.traffic_bytes_ints(block)],
            dtype=np.float64,
        )
        smem_q = np.array(
            [float(q) for q in pack.traffic_bytes_ints(thread)], dtype=np.float64
        )
        flops = np.full(n, pack.total_flops)
        return np.stack(
            [tpb, nblk, inner_work, coalesce, conflict, dram_q, smem_q, flops]
        )

    def _full_latencies(
        self, tiles3: np.ndarray, vthreads2: np.ndarray
    ) -> np.ndarray:
        """``CostModel.evaluate(...).latency_s`` per row, via the shared pipe."""
        hw = self.hw
        n = tiles3.shape[0]
        out = np.full(n, math.inf)
        num_levels = tiles3.shape[2]
        block = tiles3[:, :, num_levels - 1]
        thread = tiles3[:, :, 0]
        ok, smem_fp, regs = self._memok_relaxed(block, thread)
        tpb = self._tpb(block, thread)
        strict_ok = (
            ok
            & (tpb <= hw.max_threads_per_block)
            & (tpb * regs <= hw.registers_per_sm)
        )
        # blocks_per_sm on strict-ok rows (guarded products stay in int64).
        tpb_m = np.where(strict_ok, tpb, 1)
        regs_m = np.where(strict_ok, regs, 1)
        by_smem = np.where(
            smem_fp > 0,
            hw.smem.capacity_bytes // np.maximum(smem_fp, 1),
            hw.max_blocks_per_sm,
        )
        by_threads = hw.max_threads_per_sm // np.maximum(1, tpb_m)
        by_regs = hw.registers_per_sm // np.maximum(1, tpb_m * regs_m)
        bps = np.minimum(
            np.minimum(by_smem, by_threads),
            np.minimum(by_regs, hw.max_blocks_per_sm),
        )
        feasible = strict_ok & (bps > 0)
        idx = np.nonzero(feasible)[0]
        if idx.size == 0:
            return out
        cols = self._full_cols(
            block[idx],
            thread[idx],
            vthreads2[idx],
            tpb[idx],
            bps[idx],
            smem_fp[idx],
        )
        out[idx] = pipe_metrics(cols, hw)[0]
        return out

    def _full_cols(
        self,
        block: np.ndarray,
        thread: np.ndarray,
        vthreads: np.ndarray,
        tpb: np.ndarray,
        bps: np.ndarray,
        smem_fp: np.ndarray,
    ) -> np.ndarray:
        """The 14 ``pipe_metrics`` feature rows for feasible rows."""
        pack = self.pack
        n = block.shape[0]
        nblk = self._nblk(block).astype(np.float64)
        padded = np.ones(n)
        for a in range(pack.num_axes):
            blocks_a = np.ceil(pack.extent_list[a] / block[:, a]).astype(
                np.int64
            )
            threads_a = np.ceil(block[:, a] / thread[:, a]).astype(np.int64)
            padded = padded * (blocks_a * threads_a * thread[:, a]).astype(
                np.float64
            )
        padded_flops = pack.flops_per_point * padded
        inner_work = np.ones(n)
        for a in range(pack.num_axes):
            inner_work = inner_work * thread[:, a].astype(np.float64)
        inner_work = inner_work * pack.flops_per_point / 2.0
        vt = np.ones(n, dtype=np.int64)
        for a in range(pack.num_axes):
            vt = vt * vthreads[:, a]
        coalesce = self._coalescing(block)
        dram_q = np.array(
            [float(q) for q in pack.traffic_bytes_ints(block)],
            dtype=np.float64,
        )
        unique_bytes = np.full(n, pack.total_io)
        conflict = self._conflict(block, thread, vthreads)
        smem_q = np.array(
            [float(q) for q in pack.traffic_bytes_ints(thread)], dtype=np.float64
        )
        reduce_chunks = np.ones(n, dtype=np.int64)
        for a in pack.reduce_idx:
            reduce_chunks = reduce_chunks * np.ceil(
                pack.extent_list[a] / block[:, a]
            ).astype(np.int64)
        return np.stack(
            [
                tpb.astype(np.float64),
                bps.astype(np.float64),
                nblk,
                padded_flops,
                inner_work,
                vt.astype(np.float64),
                coalesce,
                dram_q,
                unique_bytes,
                conflict,
                smem_q,
                reduce_chunks.astype(np.float64),
                smem_fp.astype(np.float64),
                np.full(n, pack.total_flops),
            ]
        )

    def _full_latencies_memo(
        self, pairs: list[tuple[np.ndarray, np.ndarray]]
    ) -> np.ndarray:
        """Memo-backed full latencies for a list of ``(tiles, vthreads)``."""
        full = self.bundle.full
        if len(full) > _MEMO_CAP:
            full.clear()
        out = np.empty(len(pairs))
        missing: list[int] = []
        keys: list[tuple[bytes, bytes]] = []
        for i, (t, v) in enumerate(pairs):
            key = (t.tobytes(), v.tobytes())
            keys.append(key)
            lat = full.get(key)
            if lat is None:
                missing.append(i)
            else:
                out[i] = lat
        if missing:
            lats = self._full_latencies(
                np.stack([pairs[i][0] for i in missing]),
                np.stack([pairs[i][1] for i in missing]),
            )
            for i, lat in zip(missing, lats):
                out[i] = lat
                full[keys[i]] = float(lat)
        return out

    # -- the walk (mirrors TransitionPolicy + Gensor._run_walker) --------------

    def _probabilities(
        self,
        edges: list[SoAEdge],
        anneal_progress: float,
        forbid: frozenset[str] = frozenset(),
    ) -> tuple[list[SoAEdge], np.ndarray]:
        """``TransitionPolicy.probabilities`` over packed edges."""
        if forbid:
            edges = [e for e in edges if e.kind not in forbid]
        if not edges:
            return [], np.zeros(0)
        weights = np.empty(len(edges))
        anneal = cache_anneal_factor(anneal_progress)
        for i, edge in enumerate(edges):
            if edge.kind == ActionKind.CACHE:
                w = anneal * (1.0 + math.log2(max(1.0, edge.benefit))) / 10.0
            else:
                w = edge.benefit
            weights[i] = max(0.0, w)
        total = weights.sum()
        if total <= 0:
            return edges, np.full(len(edges), 1.0 / len(edges))
        return edges, weights / total

    def _decode(
        self, tiles: np.ndarray, vthreads: np.ndarray, level: int
    ) -> ETIR:
        return ETIR.from_arrays(
            self.compute, tiles, vthreads, level, tiles.shape[1]
        )

    def run_chain(
        self,
        cfg: "GensorConfig",
        rng: np.random.Generator,
        forbid: frozenset[str],
        tracer: Tracer,
        cancel: "CancelToken | None",
        tid: int,
        candidates: dict[tuple, ETIR],
        *,
        checkpointer=None,
        base_steps: int = 0,
        resume: tuple | None = None,
    ) -> int:
        """One annealed chain on the packed representation.

        Byte-identical to the object path's chain: same RNG consumption
        (one ``choice`` + one ``random`` per step, nothing at a sink), same
        candidate-pool keys and overwrite order, same ``walk_step`` /
        ``chain_end`` events.  Returns the iteration count.

        ``resume`` restarts the chain mid-anneal from a checkpoint's
        ``(tiles, vthreads, level, temperature, iteration)`` — the caller
        restores the RNG bit state into ``rng`` — and ``checkpointer``
        (with ``base_steps``, the iterations completed by earlier chains)
        snapshots at the cadence its policy dictates, at iteration
        boundaries only.
        """
        compute_name = self.compute.name
        a_count = self.pack.num_axes
        if resume is not None:
            tiles, vthreads, level, temperature, iteration = resume
            tiles = np.asarray(tiles, dtype=np.int64)
            vthreads = np.asarray(vthreads, dtype=np.int64)
            level = int(level)
            iteration = int(iteration)
        else:
            tiles = np.ones((a_count, self.num_levels), dtype=np.int64)
            vthreads = np.ones(a_count, dtype=np.int64)
            level = self.num_levels
            temperature = cfg.initial_temperature
            iteration = 0
        while (
            temperature > cfg.threshold
            and iteration < cfg.max_iterations_per_chain
        ):
            if cancel is not None:
                cancel.check()
            progress = math.log2(cfg.initial_temperature / temperature)
            kept, probs = self._probabilities(
                self.expand(tiles, vthreads, level), progress, forbid
            )
            if not kept:
                break
            idx = int(rng.choice(len(kept), p=probs))
            edge = kept[idx]
            src_level = level
            tiles, vthreads, level = edge.tiles, edge.vthreads, edge.level
            appended = rng.random() < append_probability(temperature)
            if appended:
                state = self._decode(tiles, vthreads, level)
                candidates[state.key()] = state
            if tracer.enabled:
                tracer.emit(
                    "walk_step",
                    {
                        "compute": compute_name,
                        "chain": tid,
                        "iteration": iteration,
                        "temperature": temperature,
                        "level": src_level,
                        "actions": [
                            {
                                "kind": e.kind,
                                "axis": e.axis,
                                "benefit": e.benefit,
                                "prob": float(p),
                            }
                            for e, p in zip(kept, probs)
                        ],
                        "chosen": idx,
                        "appended": appended,
                    },
                    tid=tid,
                )
            temperature *= cfg.cooling
            iteration += 1
            if checkpointer is not None:
                checkpointer.on_step(
                    cancel,
                    lambda: self._build_checkpoint(
                        cfg,
                        tid,
                        iteration,
                        base_steps + iteration,
                        temperature,
                        tiles,
                        vthreads,
                        level,
                        rng,
                        candidates,
                    ),
                )
        state = self._decode(tiles, vthreads, level)
        candidates[state.key()] = state
        if tracer.enabled:
            tracer.emit(
                "chain_end",
                {
                    "compute": compute_name,
                    "chain": tid,
                    "iterations": iteration,
                    "final_level": level,
                    "final_temperature": temperature,
                },
                tid=tid,
            )
        return iteration

    # -- greedy refinement (mirrors Gensor.polish, batch path) -----------------

    def polish(
        self,
        state: ETIR,
        max_steps: int,
        forbid: frozenset[str] = frozenset(),
        tracer: Tracer | None = None,
        cancel: "CancelToken | None" = None,
    ) -> ETIR:
        """Greedy value refinement on the packed representation.

        Value-identical to the object path's batched polish: the same
        neighbor enumeration order, the same full-model latencies (shared
        pipe), the same first-occurrence ``argmin`` tie-break and strict
        improvement stop, the same traced event.
        """
        from repro.obs.tracer import NULL_TRACER

        tracer = tracer if tracer is not None else NULL_TRACER
        t0 = time.perf_counter() if tracer.enabled else 0.0
        tiles, vthreads = state.config_arrays()
        level = state.cur_level
        num_levels = tiles.shape[1]
        start_lat = current_lat = float(
            self._full_latencies_memo([(tiles, vthreads)])[0]
        )
        vthread_allowed = ActionKind.VTHREAD_UP not in forbid
        steps = 0
        for _ in range(max_steps):
            if cancel is not None:
                cancel.check()
            neighbors = self._polish_neighbors(
                tiles, vthreads, num_levels, vthread_allowed
            )
            if not neighbors:
                break
            lats = self._full_latencies_memo(neighbors)
            j = int(np.argmin(lats))
            if not lats[j] < current_lat:
                break
            tiles, vthreads = neighbors[j]
            current_lat = float(lats[j])
            steps += 1
        if tracer.enabled:
            tracer.emit(
                "polish",
                {
                    "compute": state.compute.name,
                    "steps": steps,
                    "max_steps": max_steps,
                    "latency_before_s": start_lat,
                    "latency_after_s": current_lat,
                },
                dur=time.perf_counter() - t0,
            )
        return ETIR.from_arrays(
            self.compute, tiles, vthreads, level, num_levels
        )

    def _polish_neighbors(
        self,
        tiles: np.ndarray,
        vthreads: np.ndarray,
        num_levels: int,
        vthread_allowed: bool,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """``Gensor._all_level_neighbors`` on arrays, in enumeration order."""
        pack = self.pack
        rows = tiles.tolist()
        vlist = vthreads.tolist()
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for a in range(pack.num_axes):
            for level in range(1, num_levels + 1):
                cur = rows[a][level - 1]
                for up in (True, False):
                    if up:
                        new: int | None = cur * 2
                        upper = (
                            pack.extent_list[a]
                            if level == num_levels
                            else rows[a][level]
                        )
                        if new > upper:
                            new = upper if cur < upper else None
                    else:
                        new = cur // 2
                        lower = 1 if level == 1 else rows[a][level - 2]
                        if level == 1:
                            lower = max(lower, vlist[a])
                        if new < lower:
                            new = None
                    if new is not None:
                        dst = tiles.copy()
                        dst[a, level - 1] = new
                        out.append((dst, vthreads))
            if vthread_allowed and not pack.is_reduce[a]:
                v = vlist[a]
                for nv in (v * 2, v // 2, 1):
                    if nv >= 1 and nv != v and nv <= rows[a][0]:
                        dv = vthreads.copy()
                        dv[a] = nv
                        out.append((tiles, dv))
        return out


# -- the differential oracle ---------------------------------------------------


def _assert_same_float(a: float, b: float, context: str) -> None:
    """Bitwise float comparison (``==`` would conflate +0.0 and -0.0)."""
    if float(a).hex() != float(b).hex():
        raise SoAParityError(
            f"{context}: object path {a!r} ({float(a).hex()}) != "
            f"SoA path {b!r} ({float(b).hex()})"
        )


class DifferentialWalker:
    """Runs the object path and the SoA path in lockstep and cross-checks.

    Three granularities per state: *slot level* (every enumerated action
    template: legality, memory check, benefit bits, destination config,
    against a memo-free scalar oracle), *edge level* (the surviving edge
    lists of ``graph.expand`` vs ``engine.expand``), and *probability
    level* (the normalized transition distributions, byte-compared).
    :meth:`walk` drives an annealed walk through both paths on one RNG
    stream and additionally asserts the chosen edges and the monotone node
    counts agree.  Any divergence raises :class:`SoAParityError`.
    """

    def __init__(
        self,
        compute: ComputeDef,
        hardware: HardwareSpec,
        multi_objective: bool = True,
        num_levels: int | None = None,
        forbid: frozenset[str] = frozenset(),
    ) -> None:
        from repro.core.graph import ConstructionGraph

        self.compute = compute
        self.hw = hardware
        self.num_levels = (
            num_levels if num_levels is not None else hardware.num_cache_levels
        )
        self.graph = ConstructionGraph(
            hardware,
            forbid=forbid,
            multi_objective=multi_objective,
            batch_scoring=True,
        )
        self.engine = SoAWalkEngine(
            compute,
            hardware,
            multi_objective=multi_objective,
            num_levels=self.num_levels,
            forbid=forbid,
        )

    def compare_state(
        self,
        state: ETIR,
        anneal_progresses: tuple[float, ...] = (0.0, 4.0, 12.0),
        forbid: frozenset[str] = frozenset(),
    ) -> int:
        """Cross-check one state at all three granularities.

        Returns the number of surviving edges; raises
        :class:`SoAParityError` on the first divergence.
        """
        from repro.core.policy import TransitionPolicy

        tiles, vthreads = state.config_arrays()
        level = state.cur_level
        where = f"{state.compute.name} state {state.key()!r}"

        # Slot level: scalar memo-free oracle vs the packed expansion.
        oracle = self.graph.expansion_oracle(state)
        detail = self.engine.expand_detail(tiles, vthreads, level)
        if len(oracle) != len(detail):
            raise SoAParityError(
                f"{where}: slot count {len(oracle)} != {len(detail)}"
            )
        for i, ((action, nxt, benefit), d) in enumerate(zip(oracle, detail)):
            ctx = f"{where} slot {i} ({action.kind}, axis {action.axis_idx})"
            if action.kind != d["kind"] or action.axis_idx != d["axis"]:
                raise SoAParityError(
                    f"{ctx}: SoA slot is ({d['kind']}, axis {d['axis']})"
                )
            if (nxt is not None) != d["legal"]:
                raise SoAParityError(
                    f"{ctx}: legality {nxt is not None} != {d['legal']}"
                )
            if nxt is not None:
                mem_ok = nxt.memory_ok(self.hw, strict=False)
                if mem_ok != d["mem_ok"]:
                    raise SoAParityError(
                        f"{ctx}: mem_ok {mem_ok} != {d['mem_ok']}"
                    )
                dst_cfg = (nxt.config.tiles, nxt.config.vthreads, nxt.cur_level)
                if dst_cfg != d["dst_config"]:
                    raise SoAParityError(
                        f"{ctx}: dst {dst_cfg} != {d['dst_config']}"
                    )
            _assert_same_float(benefit, d["benefit"], f"{ctx} benefit")

        # Edge level: the memoized surviving frontiers.
        edges = self.graph.expand(state)
        soa_edges = self.engine.expand(tiles, vthreads, level)
        if len(edges) != len(soa_edges):
            raise SoAParityError(
                f"{where}: edge count {len(edges)} != {len(soa_edges)}"
            )
        for i, (edge, se) in enumerate(zip(edges, soa_edges)):
            ctx = f"{where} edge {i} ({edge.action.kind})"
            if edge.action.kind != se.kind or edge.action.axis_idx != se.axis:
                raise SoAParityError(
                    f"{ctx}: SoA edge is ({se.kind}, axis {se.axis})"
                )
            _assert_same_float(edge.benefit, se.benefit, f"{ctx} benefit")
            dst_cfg = (
                edge.dst.config.tiles,
                edge.dst.config.vthreads,
                edge.dst.cur_level,
            )
            if dst_cfg != se.dst_config():
                raise SoAParityError(
                    f"{ctx}: dst {dst_cfg} != {se.dst_config()}"
                )

        # Probability level: the normalized distributions, byte-compared.
        policy = TransitionPolicy(self.graph, np.random.default_rng(0))
        for progress in anneal_progresses:
            o_edges, o_probs = policy.probabilities(state, progress, forbid)
            s_edges, s_probs = self.engine._probabilities(
                soa_edges, progress, forbid
            )
            if len(o_edges) != len(s_edges):
                raise SoAParityError(
                    f"{where} @ progress {progress}: kept-edge count "
                    f"{len(o_edges)} != {len(s_edges)}"
                )
            if o_probs.tobytes() != s_probs.tobytes():
                raise SoAParityError(
                    f"{where} @ progress {progress}: probabilities diverge: "
                    f"{o_probs!r} != {s_probs!r}"
                )
        return len(edges)

    def walk(
        self,
        seed: int = 0,
        chains: int = 2,
        max_iterations: int = 48,
        initial_temperature: float = 100.0,
        cooling: float = 0.93,
        threshold: float = 0.01,
        forbid: frozenset[str] = frozenset(),
    ) -> dict:
        """Drive annealed chains through both paths on one RNG stream.

        Every visited state (including the terminal one) is cross-checked
        with :meth:`compare_state`; each step additionally asserts the
        roulette-chosen edge lands on the same destination.  At the end the
        monotone node counts of both paths must agree.
        """
        from repro.core.policy import TransitionPolicy
        from repro.utils.rng import spawn_rng

        total_iterations = 0
        states_compared = 0
        for chain in range(chains):
            rng = spawn_rng(seed, "diff", self.compute.name, chain)
            policy = TransitionPolicy(self.graph, rng)
            state = ETIR.initial(self.compute, num_levels=self.num_levels)
            tiles, vthreads = state.config_arrays()
            level = state.cur_level
            temperature = initial_temperature
            iteration = 0
            while temperature > threshold and iteration < max_iterations:
                progress = math.log2(initial_temperature / temperature)
                self.compare_state(
                    state, anneal_progresses=(progress,), forbid=forbid
                )
                states_compared += 1
                edges, probs = policy.probabilities(state, progress, forbid)
                kept, _s_probs = self.engine._probabilities(
                    self.engine.expand(tiles, vthreads, level),
                    progress,
                    forbid,
                )
                if not edges:
                    break
                idx = int(rng.choice(len(edges), p=probs))
                edge, soa_edge = edges[idx], kept[idx]
                dst_cfg = (
                    edge.dst.config.tiles,
                    edge.dst.config.vthreads,
                    edge.dst.cur_level,
                )
                if dst_cfg != soa_edge.dst_config():
                    raise SoAParityError(
                        f"chain {chain} iter {iteration}: chosen edge {idx} "
                        f"lands on {dst_cfg} != {soa_edge.dst_config()}"
                    )
                state = edge.dst
                tiles, vthreads, level = (
                    soa_edge.tiles,
                    soa_edge.vthreads,
                    soa_edge.level,
                )
                temperature *= cooling
                iteration += 1
            self.compare_state(state, anneal_progresses=(0.0,), forbid=forbid)
            states_compared += 1
            total_iterations += iteration
        if self.graph.num_nodes != self.engine.num_nodes:
            raise SoAParityError(
                f"node counts diverge: object path {self.graph.num_nodes} "
                f"!= SoA path {self.engine.num_nodes}"
            )
        return {
            "chains": chains,
            "iterations": total_iterations,
            "states_compared": states_compared,
            "nodes": self.engine.num_nodes,
        }
