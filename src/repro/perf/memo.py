"""Process-wide memo over analytical cost-model evaluations.

The reproduction prices every Markov step, polish sweep, shortlist
ranking, measurement truth, and degraded-tier fallback through
:class:`~repro.sim.costmodel.CostModel.evaluate` — historically via five
private ``CostModel`` instances plus an unbounded per-``Gensor`` latency
dict.  The same ``(hardware, state)`` pair is priced many times across
those call sites, and a long-lived :class:`~repro.serve.service.CompileService`
leaks one dict entry per distinct state forever.

:class:`MetricsMemo` replaces all of that with one bounded, thread-safe
LRU keyed by ``(hardware, state)`` — specs are interned by identity (and
retained), states hash through their cached key hash, and distinct
``generic_gpu(...)`` variants that share a name still get distinct
slots.  Memoization returns the *exact same float
objects* the model produced, so routing a call site through the memo can
never perturb the annealed walk's RNG stream: it is golden-trace safe by
construction.

Hit/miss/eviction totals are mirrored onto the
:class:`~repro.obs.metrics.MetricsRegistry` (``perf_memo_*`` series) so
the serving layer's dashboards see cache health; per-instance integer
counters back :meth:`MetricsMemo.stats` for tests and the bench.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.hardware.spec import HardwareSpec
from repro.ir.etir import ETIR
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.sim.costmodel import CostModel
from repro.sim.metrics import KernelMetrics

__all__ = ["MetricsMemo", "get_memo", "reset_memo", "DEFAULT_MEMO_CAPACITY"]

#: ~65k entries; a KernelMetrics plus key is a few hundred bytes, so the
#: steady-state memo stays in the tens of MB even under serving load.
DEFAULT_MEMO_CAPACITY = 1 << 16


class MetricsMemo:
    """Bounded, thread-safe LRU of :class:`KernelMetrics` by (hardware, state).

    ``capacity=0`` makes the memo a pass-through (every call re-evaluates);
    useful for baselines and tests.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_MEMO_CAPACITY,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._registry = registry if registry is not None else get_registry()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, KernelMetrics] = OrderedDict()
        # Specs are interned by identity: hashing a whole (nested, frozen)
        # HardwareSpec on every lookup costs more than the lookup itself.
        # The spec object is retained in the bucket, so its id can never be
        # recycled by a different live spec; distinct-but-equal instances
        # simply occupy distinct slots, which costs duplicate work, never
        # wrong results.
        self._specs: dict[int, tuple[HardwareSpec, CostModel]] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._c_hits = self._registry.counter("perf_memo_hits_total")
        self._c_misses = self._registry.counter("perf_memo_misses_total")
        self._c_evictions = self._registry.counter("perf_memo_evictions_total")
        self._g_size = self._registry.gauge("perf_memo_size")

    # -- model plumbing -------------------------------------------------------

    def model(self, hw: HardwareSpec) -> CostModel:
        """The (shared) ``CostModel`` for ``hw`` — one instance per spec."""
        entry = self._specs.get(id(hw))
        if entry is None:
            with self._lock:
                entry = self._specs.setdefault(id(hw), (hw, CostModel(hw)))
        return entry[1]

    # -- memoized evaluation --------------------------------------------------

    def evaluate(self, hw: HardwareSpec, state: ETIR) -> KernelMetrics:
        """Memoized :meth:`CostModel.evaluate` for ``state`` on ``hw``."""
        if self.capacity == 0:
            with self._lock:
                self._misses += 1
            self._c_misses.inc()
            return self.model(hw).evaluate(state)
        model = self.model(hw)  # interns the spec so id(hw) is stable
        key = (id(hw), state)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                hit = True
            else:
                self._misses += 1
                hit = False
        if hit:
            self._c_hits.inc()
            return cached
        self._c_misses.inc()
        metrics = model.evaluate(state)
        self._insert(key, metrics)
        return metrics

    def latency(self, hw: HardwareSpec, state: ETIR) -> float:
        return self.evaluate(hw, state).latency_s

    def evaluate_batch(
        self, hw: HardwareSpec, states: "list[ETIR]"
    ) -> "list[KernelMetrics]":
        """Memoized :meth:`CostModel.evaluate_batch` over a frontier.

        Memo hits are served directly; only the misses go through the
        vectorized model (which is itself bit-identical to the scalar
        path), so the result list matches per-state ``evaluate`` exactly.
        """
        results: list[KernelMetrics | None] = [None] * len(states)
        missing: list[int] = []
        model = self.model(hw)  # interns the spec so id(hw) is stable
        if self.capacity == 0:
            missing = list(range(len(states)))
            with self._lock:
                self._misses += len(missing)
        else:
            hwid = id(hw)
            with self._lock:
                for i, s in enumerate(states):
                    key = (hwid, s)
                    cached = self._entries.get(key)
                    if cached is not None:
                        self._entries.move_to_end(key)
                        results[i] = cached
                    else:
                        missing.append(i)
                self._hits += len(states) - len(missing)
                self._misses += len(missing)
        hits = len(states) - len(missing)
        if hits:
            self._c_hits.inc(hits)
        if missing:
            self._c_misses.inc(len(missing))
            fresh = model.evaluate_batch([states[i] for i in missing])
            for i, metrics in zip(missing, fresh):
                results[i] = metrics
                if self.capacity:
                    self._insert((id(hw), states[i]), metrics)
        return results  # type: ignore[return-value]

    def latency_batch(self, hw: HardwareSpec, states: "list[ETIR]") -> np.ndarray:
        return np.array(
            [m.latency_s for m in self.evaluate_batch(hw, states)],
            dtype=np.float64,
        )

    # -- bookkeeping ----------------------------------------------------------

    def _insert(self, key: tuple, metrics: KernelMetrics) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = metrics
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
            size = len(self._entries)
        if evicted:
            self._c_evictions.inc(evicted)
        self._g_size.set(size)

    def stats(self) -> dict[str, int | float]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
                "hit_rate": self._hits / total if total else 0.0,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_default_memo: MetricsMemo | None = None
_default_lock = threading.Lock()


def get_memo() -> MetricsMemo:
    """The process-wide default memo (created on first use)."""
    global _default_memo
    if _default_memo is None:
        with _default_lock:
            if _default_memo is None:
                _default_memo = MetricsMemo()
    return _default_memo


def reset_memo() -> None:
    """Drop the process-wide memo (tests and bench isolation)."""
    global _default_memo
    with _default_lock:
        _default_memo = None
