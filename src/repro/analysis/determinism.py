"""DeterminismChecker: nothing may perturb the walk's RNG stream.

The Markov construction walk must be bit-deterministic per seed — golden
traces, the RNG-parity chaos tests, and any learned cost model trained on
traced walk data all depend on it.  In walk-zone modules (``repro.core``,
``repro.ir``, ``repro.sim``, ``repro.perf``) this checker flags the ways
nondeterminism silently leaks into a walk:

``global-rng``
    Calls into the process-global RNGs (``random.*``, ``np.random.*``
    module functions, unseeded ``default_rng()`` / ``random.Random()``).
    Walk code must thread an explicit seeded ``np.random.Generator``.
``wall-clock``
    Wall-clock reads (``time.time``, ``time.time_ns``, ``datetime.now``,
    ``utcnow``, ``today``) — anything that could key a decision off the
    time of day.  Monotonic/perf counters are allowed: they only ever
    feed *reported* wall costs, never the walk.
``id-ordering``
    ``id(...)`` feeding an ordering (a ``sorted``/``min``/``max``/``sort``
    key, or a comparison): CPython ids are allocation addresses and
    reshuffle run to run.  Identity-keyed *dict lookups* (the memo's spec
    interning) are fine and not flagged.
``set-iteration``
    Iterating a freshly built unordered ``set`` (literal, ``set(...)``
    call, or set comprehension) in a ``for`` or comprehension — set order
    is hash-seed-dependent, so any candidate list built this way reorders
    across runs.  Wrap in ``sorted(...)`` instead.

One rule applies to *every* zone:

``broad-except``
    ``except Exception`` / ``except BaseException`` handlers that do not
    re-raise.  A blanket handler on the walk path can swallow the very
    nondeterminism signals the chaos suites exist to surface; elsewhere it
    hides real failures from the metrics registry.  Deliberate safety
    nets (worker-thread survival) carry a ``# repro: ignore[broad-except]``
    with their rationale.
"""

from __future__ import annotations

import ast

from repro.analysis.visitor import (
    Checker,
    SourceModule,
    expand_name,
    import_aliases,
    parent,
    qualified_name,
)

__all__ = ["DeterminismChecker"]

#: ``random``-module attributes that draw from (or reseed) the global RNG.
_RANDOM_MODULE_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_ORDERING_CALLS = {"sorted", "min", "max"}


class DeterminismChecker(Checker):
    name = "determinism"

    def check_module(self, mod: SourceModule) -> None:
        aliases = import_aliases(mod.tree)
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ExceptHandler):
                self._check_except(mod, node)
            if mod.zone != "walk":
                continue
            if isinstance(node, ast.Call):
                self._check_call(mod, node, aliases)
            elif isinstance(node, ast.For):
                self._check_iter(mod, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    self._check_iter(mod, gen.iter)

    # -- global-rng / wall-clock / id-ordering -------------------------------

    def _check_call(
        self, mod: SourceModule, node: ast.Call, aliases: dict[str, str]
    ) -> None:
        name = _canonical(node.func, aliases)
        if name is None:
            return
        if name in _WALL_CLOCK:
            mod.report(
                self.name, "wall-clock", node,
                f"wall-clock read {name}() on the walk path; walk decisions "
                f"and trace payloads must not depend on the time of day",
            )
            return
        rng = _global_rng_reason(name, node)
        if rng is not None:
            mod.report(self.name, "global-rng", node, rng)
            return
        if name == "id":
            self._check_id_ordering(mod, node)

    def _check_id_ordering(self, mod: SourceModule, node: ast.Call) -> None:
        """Flag ``id()`` only when its value can order candidates."""
        cursor: ast.AST | None = node
        while cursor is not None:
            cursor = parent(cursor)
            if isinstance(cursor, ast.Compare):
                # ``is``/``is not`` are identity tests, not orderings.
                if any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                    for op in cursor.ops
                ):
                    mod.report(
                        self.name, "id-ordering", node,
                        "id() compared with an ordering operator; CPython "
                        "ids are allocation addresses and reshuffle per run",
                    )
                return
            if isinstance(cursor, ast.Call):
                callee = qualified_name(cursor.func)
                is_sort_key = callee in _ORDERING_CALLS or (
                    callee is not None and callee.endswith(".sort")
                )
                if is_sort_key:
                    mod.report(
                        self.name, "id-ordering", node,
                        f"id() inside a {callee}(...) ranking; candidate "
                        f"order would depend on allocation addresses",
                    )
                    return
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Module)):
                return

    def _check_iter(self, mod: SourceModule, iter_node: ast.expr) -> None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            what = "a set literal" if isinstance(iter_node, ast.Set) else \
                "a set comprehension"
            mod.report(
                self.name, "set-iteration", iter_node,
                f"iteration over {what}; set order is hash-seed-dependent "
                f"— sort it before it can feed candidate ranking",
            )
            return
        if (
            isinstance(iter_node, ast.Call)
            and qualified_name(iter_node.func) == "set"
        ):
            mod.report(
                self.name, "set-iteration", iter_node,
                "iteration over set(...); set order is hash-seed-dependent "
                "— sort it before it can feed candidate ranking",
            )

    # -- broad-except --------------------------------------------------------

    def _check_except(self, mod: SourceModule, node: ast.ExceptHandler) -> None:
        broad = _broad_exception_name(node.type)
        if broad is None:
            return
        if _reraises(node):
            return
        mod.report(
            self.name, "broad-except", node,
            f"except {broad} without re-raise; narrow the type, or count "
            f"the failure on the MetricsRegistry and suppress with a "
            f"rationale",
        )


# -- helpers -----------------------------------------------------------------


def _canonical(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """Expand a callee's dotted name through the module's import aliases."""
    name = expand_name(func, aliases)
    if name is None:
        return None
    # normalize the numpy spelling so one rule table covers both imports
    if name.startswith("numpy."):
        name = "np." + name[len("numpy."):]
    return name


def _global_rng_reason(name: str, node: ast.Call) -> str | None:
    if name.startswith("np.random."):
        tail = name[len("np.random."):]
        if tail in ("Generator", "SeedSequence", "BitGenerator", "PCG64",
                    "Philox", "SFC64", "MT19937"):
            return None  # explicit-generator plumbing is the sanctioned path
        if tail == "default_rng":
            if node.args or node.keywords:
                return None  # seeded construction is deterministic
            return (
                "np.random.default_rng() without a seed; thread an explicit "
                "seeded Generator through the walk instead"
            )
        return (
            f"{name}() draws from numpy's process-global RNG; thread an "
            f"explicit seeded Generator through the walk instead"
        )
    if name.startswith("random."):
        tail = name[len("random."):]
        if tail == "Random":
            if node.args or node.keywords:
                return None
            return (
                "random.Random() without a seed; pass an explicit seed so "
                "the stream is reproducible"
            )
        if tail in _RANDOM_MODULE_FNS:
            return (
                f"{name}() draws from the process-global random module; "
                f"walk code must use its seeded np.random.Generator"
            )
    return None


def _broad_exception_name(type_node: ast.expr | None) -> str | None:
    """``Exception``/``BaseException`` if the handler catches one, even
    inside a tuple.  A bare ``except:`` reports as BaseException."""
    if type_node is None:
        return "BaseException"  # bare except
    candidates = (
        type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    )
    for cand in candidates:
        name = qualified_name(cand)
        if name in ("Exception", "BaseException"):
            return name
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """A handler that (possibly conditionally) re-raises is not blind."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False
