"""Lint orchestration: discover -> check -> finalize -> baseline -> render.

This is the engine behind ``python -m repro lint``.  It owns no policy of
its own — checkers decide what is a finding, the baseline decides what is
*new* — and returns a :class:`LintReport` the CLI maps onto exit codes:

* ``0`` — no new findings (baselined/suppressed ones may exist);
* ``2`` — at least one new finding (the CI gate).

Internal errors (unreadable paths, malformed baselines) raise and surface
as the CLI's usual error exit, distinct from "findings found".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.determinism import DeterminismChecker
from repro.analysis.findings import (
    SCHEMA_VERSION,
    Finding,
    baseline_filter,
    load_baseline,
    write_baseline,
)
from repro.analysis.lockorder import LockOrderChecker
from repro.analysis.spawnsafety import SpawnSafetyChecker
from repro.analysis.visitor import Checker, SourceModule, discover_modules

__all__ = ["LintReport", "default_checkers", "run_lint"]


def default_checkers() -> list[Checker]:
    """The repo's three invariant families, in report order."""
    return [DeterminismChecker(), LockOrderChecker(), SpawnSafetyChecker()]


@dataclass
class LintReport:
    """Everything one lint run produced, pre-split against the baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    checkers: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        return 2 if self.new else 0

    def render_text(self) -> str:
        lines = [f.render() for f in self.new]
        lines.extend(f.render() for f in self.baselined)
        summary = (
            f"repro lint: {self.files} files, "
            f"{len(self.new)} new finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{self.suppressed} suppressed"
        )
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "version": SCHEMA_VERSION,
            "files": self.files,
            "checkers": list(self.checkers),
            "counts": {
                "new": len(self.new),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
            },
            "findings": [f.to_json() for f in self.new]
            + [f.to_json() for f in self.baselined],
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def run_lint(
    paths: Sequence[str | Path],
    root: str | Path,
    *,
    baseline: str | Path | None = None,
    update_baseline: bool = False,
    checkers: Iterable[Checker] | None = None,
) -> LintReport:
    """Run every checker over ``paths`` and split against ``baseline``.

    ``root`` anchors relative spans (pass the directory containing the
    ``repro`` package).  With ``update_baseline`` the current findings are
    *written* to ``baseline`` and the report treats them all as baselined.
    """
    root = Path(root)
    active = list(checkers) if checkers is not None else default_checkers()
    modules = discover_modules(paths, root)

    for checker in active:
        for mod in modules:
            checker.check_module(mod)
    for checker in active:
        checker.finalize(modules)

    findings = sorted(
        (f for mod in modules for f in mod.findings),
        key=lambda f: (f.path, f.line, f.col, f.rule),
    )
    suppressed = sum(mod.suppressed for mod in modules)

    if update_baseline:
        if baseline is None:
            raise ValueError("--update-baseline requires a baseline path")
        write_baseline(findings, baseline)
        new: list[Finding] = []
        baselined = [
            Finding(
                checker=f.checker, rule=f.rule, path=f.path, line=f.line,
                col=f.col, message=f.message, baselined=True,
            )
            for f in findings
        ]
    else:
        budget = load_baseline(baseline) if baseline is not None else {}
        new, baselined = baseline_filter(findings, budget)

    return LintReport(
        new=new,
        baselined=baselined,
        suppressed=suppressed,
        files=len(modules),
        checkers=tuple(c.name for c in active),
    )
