"""Repo-specific static analysis: the invariants tests can't easily state.

Three checker families guard the properties the rest of the repo is built
on (see DESIGN.md §12):

* :class:`~repro.analysis.determinism.DeterminismChecker` — the Markov
  construction walk stays bit-deterministic per seed;
* :class:`~repro.analysis.lockorder.LockOrderChecker` — the serve/fleet
  lock graph stays acyclic and shared state stays behind its lock
  (paired with the runtime :mod:`~repro.analysis.witness`);
* :class:`~repro.analysis.spawnsafety.SpawnSafetyChecker` — everything
  crossing the fleet's spawn boundary survives pickle.

Entry point: ``python -m repro lint`` (see :mod:`repro.analysis.runner`).
"""

from repro.analysis.determinism import DeterminismChecker
from repro.analysis.findings import (
    Finding,
    Suppressions,
    baseline_filter,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.lockorder import LockOrderChecker
from repro.analysis.runner import LintReport, default_checkers, run_lint
from repro.analysis.spawnsafety import SpawnSafetyChecker
from repro.analysis.visitor import Checker, SourceModule, discover_modules
from repro.analysis.witness import LockWitness, current_witness, install, uninstall

__all__ = [
    "Checker",
    "DeterminismChecker",
    "Finding",
    "LintReport",
    "LockOrderChecker",
    "LockWitness",
    "SourceModule",
    "SpawnSafetyChecker",
    "Suppressions",
    "baseline_filter",
    "current_witness",
    "default_checkers",
    "discover_modules",
    "fingerprint",
    "install",
    "load_baseline",
    "run_lint",
    "uninstall",
    "write_baseline",
]
