"""Findings model shared by every checker: spans, suppressions, baseline.

A :class:`Finding` is one violation of a repo-specific invariant, anchored
to a ``file:line`` span so editors and CI annotations can jump to it.  Two
escape hatches keep the gate honest without blocking day-one adoption:

* **suppression comments** — ``# repro: ignore[rule-id]`` on the flagged
  line (or ``# repro: ignore`` for any rule) acknowledges a deliberate
  violation in place, next to the rationale comment a reviewer will read;
* **baseline files** — a committed JSON inventory of pre-existing findings
  (:func:`load_baseline` / :func:`write_baseline`).  CI gates on *new*
  findings only: anything whose fingerprint is in the baseline is reported
  as baselined and does not affect the exit code.

Fingerprints are content-addressed (rule + file + message), not
line-addressed, so unrelated edits that shift line numbers do not
invalidate the baseline; duplicate findings with the same fingerprint are
budgeted by count.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "Suppressions",
    "baseline_filter",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

#: ``# repro: ignore`` or ``# repro: ignore[rule-a, rule-b]``
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[a-z0-9_,\s-]+)\])?"
)

#: JSON schema version of both the ``--format json`` report and the
#: baseline file; bump on any backwards-incompatible shape change.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One checker violation with a clickable ``file:line`` span."""

    checker: str  #: which checker produced it (``determinism``, ...)
    rule: str  #: stable rule id (``global-rng``, ``lock-cycle``, ...)
    path: str  #: path relative to the lint root (POSIX separators)
    line: int  #: 1-indexed line of the violating node
    col: int  #: 0-indexed column of the violating node
    message: str  #: human-oriented description of the violation
    baselined: bool = field(default=False, compare=False)

    @property
    def span(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def render(self) -> str:
        tag = " [baselined]" if self.baselined else ""
        return f"{self.span}: {self.rule}: {self.message}{tag}"

    def to_json(self) -> dict:
        return {
            "checker": self.checker,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": fingerprint(self),
            "baselined": self.baselined,
        }


def fingerprint(finding: Finding) -> str:
    """Line-insensitive identity used by baselines (rule+file+message)."""
    text = f"{finding.rule}\x00{finding.path}\x00{finding.message}"
    return hashlib.sha256(text.encode()).hexdigest()[:16]


class Suppressions:
    """Per-file index of ``# repro: ignore[...]`` comments.

    A finding is suppressed when its line carries a matching comment.  The
    index also tracks which comments matched something, so the runner can
    (in a future pass) flag stale suppressions.
    """

    def __init__(self, source: str) -> None:
        #: line -> frozenset of rule ids, or ``None`` for ignore-all.
        self._by_line: dict[int, frozenset[str] | None] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                self._by_line[lineno] = None
            else:
                self._by_line[lineno] = frozenset(
                    r.strip() for r in rules.split(",") if r.strip()
                )

    def matches(self, rule: str, line: int) -> bool:
        if line not in self._by_line:
            return False
        rules = self._by_line[line]
        return rules is None or rule in rules

    def __len__(self) -> int:
        return len(self._by_line)


# -- baseline ----------------------------------------------------------------


def load_baseline(path: str | Path) -> dict[str, int]:
    """Fingerprint -> allowed-count budget from a committed baseline file.

    A missing file is an empty baseline (day-one default); a malformed one
    raises :class:`ValueError` so CI fails loudly rather than gating
    against garbage.
    """
    path = Path(path)
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed lint baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(
            f"malformed lint baseline {path}: expected an object with a "
            f"'findings' list"
        )
    budget: dict[str, int] = {}
    for record in payload["findings"]:
        if not isinstance(record, dict) or "fingerprint" not in record:
            raise ValueError(
                f"malformed lint baseline {path}: each finding needs a "
                f"'fingerprint'"
            )
        fp = str(record["fingerprint"])
        budget[fp] = budget.get(fp, 0) + int(record.get("count", 1))
    return budget


def write_baseline(findings: list[Finding], path: str | Path) -> int:
    """Persist the current findings as the new baseline; returns the count.

    Records are grouped by fingerprint with a count, sorted for stable
    diffs, and annotated with the rule/path/message so a reviewer can read
    the baseline as an inventory of accepted debt.
    """
    grouped: dict[str, dict] = {}
    for f in findings:
        fp = fingerprint(f)
        record = grouped.setdefault(
            fp,
            {
                "fingerprint": fp,
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
                "count": 0,
            },
        )
        record["count"] += 1
    payload = {
        "version": SCHEMA_VERSION,
        "findings": sorted(
            grouped.values(), key=lambda r: (r["path"], r["rule"], r["fingerprint"])
        ),
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(findings)


def baseline_filter(
    findings: list[Finding], budget: dict[str, int]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined) against a fingerprint budget.

    Each baseline record absorbs up to ``count`` findings with the same
    fingerprint; spill beyond the budget is new — so a baselined violation
    that *multiplies* still trips the gate.
    """
    remaining = dict(budget)
    new: list[Finding] = []
    baselined: list[Finding] = []
    for f in findings:
        fp = fingerprint(f)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            baselined.append(
                Finding(
                    checker=f.checker,
                    rule=f.rule,
                    path=f.path,
                    line=f.line,
                    col=f.col,
                    message=f.message,
                    baselined=True,
                )
            )
        else:
            new.append(f)
    return new, baselined
