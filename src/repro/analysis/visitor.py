"""Shared visitor framework: module discovery, zones, and the checker base.

Checkers operate on :class:`SourceModule` objects — parsed ASTs annotated
with their dotted module name, lint-root-relative path, and *zone*.  Zones
encode which invariants apply where:

* ``walk`` — modules on the Markov-walk path (``repro.core``, ``repro.ir``,
  ``repro.sim``, ``repro.perf``): bit-determinism per seed is load-bearing
  (golden traces, RNG-parity chaos tests, the future learned-cost-model
  trace corpus), so the :class:`~repro.analysis.determinism.DeterminismChecker`
  applies its full rule set here.
* ``fleet`` — modules whose objects cross the spawn/process boundary
  (``repro.fleet``): everything placed on a shard queue must survive a
  pickle round-trip, which is where the
  :class:`~repro.analysis.spawnsafety.SpawnSafetyChecker` focuses.
* ``shared`` — everything else; concurrency rules (lock order, broad
  excepts) apply uniformly.

The framework deliberately has no third-party dependencies: plain
:mod:`ast` with a parent-link pass, so it runs anywhere the repo does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, Suppressions

__all__ = [
    "Checker",
    "SourceModule",
    "call_name",
    "discover_modules",
    "expand_name",
    "import_aliases",
    "iter_functions",
    "load_module",
    "qualified_name",
]

#: top-level repro subpackages whose modules form the walk path.
WALK_ZONE_PACKAGES = ("core", "ir", "sim", "perf")
#: subpackages whose objects cross the multiprocessing spawn boundary.
FLEET_ZONE_PACKAGES = ("fleet",)


@dataclass
class SourceModule:
    """One parsed source file plus everything checkers need to report on it."""

    path: str  #: lint-root-relative POSIX path (the span prefix)
    module: str  #: dotted module name (``repro.core.cache``)
    tree: ast.Module
    source: str
    suppressions: Suppressions
    zone: str = "shared"
    #: findings accumulated by checkers (suppressed ones never land here).
    findings: list[Finding] = field(default_factory=list)
    #: count of findings silenced by ``# repro: ignore`` comments.
    suppressed: int = 0

    def report(
        self,
        checker: str,
        rule: str,
        node: ast.AST,
        message: str,
    ) -> None:
        """Record one finding unless a suppression comment covers it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressions.matches(rule, line):
            self.suppressed += 1
            return
        self.findings.append(
            Finding(
                checker=checker,
                rule=rule,
                path=self.path,
                line=line,
                col=col,
                message=message,
            )
        )


class Checker:
    """Base class: one repo-specific invariant family.

    Single-module checkers override :meth:`check_module`; whole-program
    checkers (the lock-order graph) additionally override :meth:`finalize`,
    which runs after every module has been visited.
    """

    name = "checker"

    def check_module(self, mod: SourceModule) -> None:  # pragma: no cover
        raise NotImplementedError

    def finalize(self, modules: list[SourceModule]) -> None:
        """Whole-program pass after all modules were visited (optional)."""


# -- discovery ---------------------------------------------------------------


def _zone_for(module: str) -> str:
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        if parts[1] in WALK_ZONE_PACKAGES:
            return "walk"
        if parts[1] in FLEET_ZONE_PACKAGES:
            return "fleet"
    return "shared"


def _module_name(rel: Path) -> str:
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else rel.stem


def load_module(file_path: Path, root: Path) -> SourceModule:
    """Parse one file into a :class:`SourceModule` (syntax errors raise)."""
    rel = file_path.relative_to(root)
    source = file_path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(file_path))
    except SyntaxError as exc:
        raise ValueError(f"cannot lint {file_path}: {exc}") from exc
    _link_parents(tree)
    module = _module_name(rel)
    return SourceModule(
        path=rel.as_posix(),
        module=module,
        tree=tree,
        source=source,
        suppressions=Suppressions(source),
        zone=_zone_for(module),
    )


def discover_modules(paths: Iterable[str | Path], root: Path) -> list[SourceModule]:
    """Every ``.py`` file under ``paths``, parsed, sorted by relative path.

    ``root`` anchors the relative spans (and baseline stability): pass the
    directory that *contains* the ``repro`` package so paths read
    ``repro/core/cache.py`` regardless of the working directory.
    """
    files: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            files.add(p)
        else:
            raise ValueError(f"not a Python file or directory: {p}")
    return [
        load_module(f, root)
        for f in sorted(files)
        if "__pycache__" not in f.parts
    ]


# -- AST helpers -------------------------------------------------------------


def _link_parents(tree: ast.Module) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def parent(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_repro_parent", None)


def qualified_name(node: ast.AST) -> str | None:
    """Dotted name of a Name/Attribute chain (``np.random.default_rng``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = qualified_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, if it is a plain name chain."""
    return qualified_name(node.func)


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted prefix, from the module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from threading import
    Lock as L`` maps ``L -> threading.Lock`` — enough to canonicalize the
    dotted callee names the checkers pattern-match on.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def expand_name(expr: ast.expr, aliases: dict[str, str]) -> str | None:
    """A name chain's dotted form with its head expanded through imports."""
    name = qualified_name(expr)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    expanded = aliases.get(head)
    if expanded is not None:
        name = f"{expanded}.{rest}" if rest else expanded
    return name


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every function/method with its enclosing class name (``None`` at
    module level), including nested functions (attributed to the class of
    their outermost enclosing method)."""

    def walk(node: ast.AST, cls: str | None) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                yield from walk(child, cls)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)
