"""LockWitness: a runtime lock-order recorder — a mini-TSan for the fleet.

The static :class:`~repro.analysis.lockorder.LockOrderChecker` proves what
the *source* says about lock nesting; the witness records what actually
happens.  When installed (``REPRO_LOCK_WITNESS=1`` under tests/chaos CI),
``threading.Lock``/``RLock`` allocations made from inside the ``repro``
package are wrapped so every acquisition appends to a per-thread held
stack and every *nested* acquisition records an ordering edge between the
two locks' allocation sites.  At session end the test harness asserts the
observed graph is acyclic — any cycle is a latent deadlock the scheduler
merely hasn't interleaved yet.

Design constraints that shaped the implementation:

* **Allocation-site identity.**  Locks are named by the ``file:line`` that
  allocated them, so the hundreds of per-family locks minted by
  ``CompileService._family_lock`` collapse into one node — matching the
  static checker's factory-node granularity.
* **Scope.**  Only allocations whose calling frame lives under the
  ``repro`` package are wrapped; stdlib internals (queues, conditions
  inside ``concurrent.futures``) keep raw primitives, so the witness
  cannot perturb machinery it does not own.
* **Reentrancy.**  An RLock re-acquired by its holder records no
  self-edge; a plain Lock acquired twice from one thread *is* recorded
  (that is exactly the self-deadlock case).
* **Condition support.**  The wrappers expose the private protocol
  ``threading.Condition`` relies on (``_is_owned``, ``_release_save``,
  ``_acquire_restore``) by delegating to the wrapped primitive while
  keeping the held-stack bookkeeping coherent across ``wait()``.
* **The witness must not deadlock the witnessed.**  Internal state is
  guarded by one raw (pre-patch) lock, only ever held for dict updates —
  never while calling into a wrapped primitive.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Iterable

__all__ = [
    "LockWitness",
    "WitnessedLock",
    "current_witness",
    "install",
    "uninstall",
]

_REPRO_ROOT = str(Path(__file__).resolve().parents[1])  # .../src/repro
_WITNESS_FILE = str(Path(__file__).resolve())

_installed: "LockWitness | None" = None


class LockWitness:
    """Observed lock-acquisition order graph, keyed by allocation site."""

    def __init__(self) -> None:
        # raw primitive captured before any patching can occur
        self._guard = _RAW_LOCK()
        #: edge (outer_site, inner_site) -> number of times observed
        self._edges: dict[tuple[str, str], int] = {}
        #: site -> number of wrapped locks allocated there
        self._sites: dict[str, int] = {}
        self._local = threading.local()

    # -- bookkeeping called by WitnessedLock ---------------------------------

    def _held_stack(self) -> list[tuple[str, "WitnessedLock"]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def note_allocation(self, site: str) -> None:
        with self._guard:
            self._sites[site] = self._sites.get(site, 0) + 1

    def note_acquired(self, lock: "WitnessedLock") -> None:
        stack = self._held_stack()
        if lock.reentrant and any(held is lock for _, held in stack):
            # RLock re-entry by its holder: no new edge, but keep the
            # stack balanced so the matching release pops cleanly.
            stack.append((lock.site, lock))
            return
        if stack:
            outer_site = stack[-1][0]
            if outer_site != lock.site or not lock.reentrant:
                edge = (outer_site, lock.site)
                with self._guard:
                    self._edges[edge] = self._edges.get(edge, 0) + 1
        stack.append((lock.site, lock))

    def note_released(self, lock: "WitnessedLock") -> None:
        stack = self._held_stack()
        # releases are usually LIFO (with-blocks); tolerate out-of-order
        # hand-built release patterns by removing the innermost match.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][1] is lock:
                del stack[i]
                return

    # -- reporting -----------------------------------------------------------

    def order_graph(self) -> dict[str, set[str]]:
        """Adjacency: outer allocation site -> inner sites observed under it."""
        with self._guard:
            edges = list(self._edges)
        graph: dict[str, set[str]] = {}
        for outer, inner in edges:
            graph.setdefault(outer, set()).add(inner)
            graph.setdefault(inner, set())
        return graph

    def edge_counts(self) -> dict[tuple[str, str], int]:
        with self._guard:
            return dict(self._edges)

    def sites(self) -> dict[str, int]:
        with self._guard:
            return dict(self._sites)

    def cycles(self) -> list[list[str]]:
        """Strongly connected components with >1 node, or observed self-edges."""
        graph = self.order_graph()
        out: list[list[str]] = []
        for scc in _sccs(graph):
            if len(scc) > 1:
                out.append(sorted(scc))
            elif scc[0] in graph.get(scc[0], set()):
                out.append(scc)
        return out

    def assert_acyclic(self) -> None:
        cycles = self.cycles()
        if cycles:
            lines = []
            counts = self.edge_counts()
            for cyc in cycles:
                members = set(cyc)
                involved = sorted(
                    f"  {a} -> {b} (x{n})"
                    for (a, b), n in counts.items()
                    if a in members and b in members
                )
                lines.append(" <-> ".join(cyc))
                lines.extend(involved)
            raise AssertionError(
                "lock witness observed a cyclic acquisition order "
                "(latent deadlock):\n" + "\n".join(lines)
            )


class WitnessedLock:
    """Wrapper around a real Lock/RLock that reports to the witness.

    Implements the full context-manager + Condition private protocol so it
    can substitute for the primitive anywhere inside ``repro``.
    """

    __slots__ = ("_inner", "site", "reentrant", "_witness")

    def __init__(
        self, inner, site: str, reentrant: bool, witness: LockWitness
    ) -> None:
        self._inner = inner
        self.site = site
        self.reentrant = reentrant
        self._witness = witness
        witness.note_allocation(site)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._witness.note_acquired(self)
        return got

    def release(self) -> None:
        self._inner.release()
        self._witness.note_released(self)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- threading.Condition private protocol --------------------------------

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        # plain Lock: Condition's fallback — owned iff we cannot re-acquire
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _release_save(self):
        # Condition.wait() fully releases an RLock (all recursion levels);
        # drop every stack entry for this lock so held-state stays honest.
        state = self._inner._release_save() if hasattr(
            self._inner, "_release_save"
        ) else (self._inner.release() or None)
        stack = self._witness._held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][1] is self:
                del stack[i]
        return state

    def _acquire_restore(self, state) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._witness.note_acquired(self)

    def __repr__(self) -> str:
        kind = "RLock" if self.reentrant else "Lock"
        return f"<WitnessedLock {kind} @ {self.site}>"


# -- installation ------------------------------------------------------------

# captured at import time so the witness can mint raw primitives even
# while the module-level names are patched.
_RAW_LOCK = threading.Lock
_RAW_RLOCK = threading.RLock


def _allocation_site() -> str | None:
    """``file:line`` of the nearest caller inside repro (None = foreign)."""
    import sys

    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != _WITNESS_FILE:
            if filename.startswith(_REPRO_ROOT):
                rel = os.path.relpath(filename, os.path.dirname(_REPRO_ROOT))
                return f"{rel.replace(os.sep, '/')}:{frame.f_lineno}"
            return None
        frame = frame.f_back
    return None


def install() -> LockWitness:
    """Patch ``threading.Lock``/``RLock`` to wrap repro-owned allocations.

    Idempotent: a second install returns the active witness.  Only
    affects locks allocated *after* installation, which is why the test
    harness installs it at session start before importing service code
    that mints module-level locks.
    """
    global _installed
    if _installed is not None:
        return _installed
    witness = LockWitness()

    def make_lock(*args, **kwargs):
        site = _allocation_site()
        inner = _RAW_LOCK(*args, **kwargs)
        if site is None:
            return inner
        return WitnessedLock(inner, site, reentrant=False, witness=witness)

    def make_rlock(*args, **kwargs):
        site = _allocation_site()
        inner = _RAW_RLOCK(*args, **kwargs)
        if site is None:
            return inner
        return WitnessedLock(inner, site, reentrant=True, witness=witness)

    threading.Lock = make_lock  # type: ignore[misc]
    threading.RLock = make_rlock  # type: ignore[misc]
    _installed = witness
    return witness


def uninstall() -> None:
    """Restore the raw primitives (already-wrapped locks keep reporting)."""
    global _installed
    threading.Lock = _RAW_LOCK  # type: ignore[misc]
    threading.RLock = _RAW_RLOCK  # type: ignore[misc]
    _installed = None


def current_witness() -> LockWitness | None:
    return _installed


# -- graph utilities ---------------------------------------------------------


def _sccs(graph: dict[str, Iterable[str]]) -> list[list[str]]:
    """Tarjan's SCCs, iterative (witness graphs are small but cycles may
    route through many sites)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    out: list[list[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            succs = sorted(graph.get(node, ()))
            for i in range(pi, len(succs)):
                succ = succs[i]
                if succ not in index:
                    work[-1] = (node, i + 1)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent_node = work[-1][0]
                lowlink[parent_node] = min(lowlink[parent_node], lowlink[node])
            if lowlink[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                out.append(scc)
    return out
