"""SpawnSafetyChecker: everything crossing the fleet's process boundary
must survive ``spawn`` + pickle.

The fleet starts shard processes with the ``spawn`` method (forking a
multi-threaded dispatcher can deadlock the child on inherited lock
state), which means every ``Process`` target and every object placed on a
shard queue travels by pickle.  PR 6 already paid for one violation
(``_FrozenDict.__reduce__``); this checker makes the class of bug
machine-checked:

``spawn-closure``
    ``Process(target=...)`` whose target is a lambda, a nested function,
    or a bound method of a local object — none of which pickle under
    ``spawn``.  Targets must be module-level callables fed picklable
    arguments.
``queue-put-unpicklable``
    ``.put(...)`` of a lambda, a nested function, or a local bound to a
    fork-hostile resource (lock, file handle, tracer) onto a queue in a
    fleet-zone module.
``wire-unpicklable-field``
    A field of a fleet-zone dataclass (the wire payload classes) — or, in
    any zone, of a ``*Checkpoint`` dataclass (checkpoints ride the fleet
    wire and land on disk) or a program-compilation payload
    (``CompiledProgram``/``CompiledGroup``/``ProgramRequest``/
    ``ProgramResponse``, which cross the dispatcher/shard boundary in
    whole-graph serving) — whose annotation names a type
    that cannot cross the boundary:
    ``threading.Lock``/``RLock``/``Event``/``Condition``, file/IO
    handles, tracers.  Wire payloads carry plain data — schedules travel
    as ``CachedSchedule``, never as live ETIR states or service objects.
``fork-start``
    ``multiprocessing.get_context("fork")`` or a bare
    ``multiprocessing.Process(...)`` (whose platform-default start method
    may still be ``fork``) — the fleet standardized on explicit spawn
    contexts for a reason.

The static pass is paired with runtime round-trip tests
(``tests/test_analysis_spawnsafety.py``) that pickle every wire payload
class through a real dump/load cycle.
"""

from __future__ import annotations

import ast

from repro.analysis.visitor import (
    Checker,
    SourceModule,
    expand_name,
    import_aliases,
    iter_functions,
    qualified_name,
)

__all__ = ["SpawnSafetyChecker"]

#: annotation names (suffix-matched) that must never ride a wire payload.
_FORK_HOSTILE = (
    "threading.Lock",
    "threading.RLock",
    "threading.Event",
    "threading.Condition",
    "threading.Semaphore",
    "threading.Thread",
    "IO",
    "TextIO",
    "BinaryIO",
    "Tracer",
    "JsonlTracer",
    "RecordingTracer",
)

#: calls whose result, bound to a local, is fork-hostile to enqueue.
_FORK_HOSTILE_CTORS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Event",
    "threading.Condition",
    "open",
}

#: dataclasses outside the fleet zone that are wire payloads anyway:
#: program-compilation records travel dispatcher <-> shard and inside
#: serve/fleet responses, so they obey wire rules wherever they live.
_WIRE_CLASS_NAMES = frozenset(
    {
        "CompiledProgram",
        "CompiledGroup",
        "ProgramRequest",
        "ProgramResponse",
    }
)


def _is_wire_class(name: str) -> bool:
    return name.endswith("Checkpoint") or name in _WIRE_CLASS_NAMES


class SpawnSafetyChecker(Checker):
    name = "spawnsafety"

    def check_module(self, mod: SourceModule) -> None:
        aliases = import_aliases(mod.tree)
        nested = _nested_function_names(mod.tree)
        hostile_locals = _fork_hostile_locals(mod.tree, aliases)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            self._check_process_target(mod, node, aliases, nested)
            self._check_fork_context(mod, node, aliases)
            if mod.zone == "fleet":
                self._check_queue_put(mod, node, nested, hostile_locals)
        self._check_wire_dataclasses(mod, aliases)

    # -- Process(target=...) -------------------------------------------------

    def _check_process_target(
        self,
        mod: SourceModule,
        call: ast.Call,
        aliases: dict[str, str],
        nested: set[str],
    ) -> None:
        callee = expand_name(call.func, aliases)
        if callee is None or not _is_process_ctor(callee):
            return
        target = next(
            (kw.value for kw in call.keywords if kw.arg == "target"), None
        )
        if target is None and call.args:
            target = call.args[0]
        if target is None:
            return
        if isinstance(target, ast.Lambda):
            mod.report(
                self.name, "spawn-closure", target,
                "Process target is a lambda; lambdas do not pickle under "
                "the spawn start method — use a module-level function",
            )
        elif isinstance(target, ast.Name) and target.id in nested:
            mod.report(
                self.name, "spawn-closure", target,
                f"Process target {target.id!r} is a nested function; "
                f"closures do not pickle under spawn — hoist it to module "
                f"level and pass its state as arguments",
            )

    def _check_fork_context(
        self, mod: SourceModule, call: ast.Call, aliases: dict[str, str]
    ) -> None:
        callee = expand_name(call.func, aliases)
        if callee is None:
            return
        if callee.endswith("get_context") and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Constant) and arg.value == "fork":
                mod.report(
                    self.name, "fork-start", call,
                    "multiprocessing fork context: forking a process that "
                    "may hold threads deadlocks the child on inherited "
                    "lock state — the fleet standardized on spawn",
                )
        elif callee in ("multiprocessing.Process", "mp.Process"):
            mod.report(
                self.name, "fork-start", call,
                "bare multiprocessing.Process uses the platform-default "
                "start method (fork on POSIX); use an explicit "
                "get_context('spawn') context",
            )

    # -- queue puts ----------------------------------------------------------

    def _check_queue_put(
        self,
        mod: SourceModule,
        call: ast.Call,
        nested: set[str],
        hostile_locals: dict[str, str],
    ) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in ("put", "put_nowait")):
            return
        base = qualified_name(func.value)
        if base is None or not _looks_like_queue(base):
            return
        for arg in call.args[:1]:
            if isinstance(arg, ast.Lambda):
                mod.report(
                    self.name, "queue-put-unpicklable", arg,
                    f"lambda placed on queue {base!r}; lambdas do not "
                    f"pickle across the process boundary",
                )
            elif isinstance(arg, ast.Name):
                if arg.id in nested:
                    mod.report(
                        self.name, "queue-put-unpicklable", arg,
                        f"nested function {arg.id!r} placed on queue "
                        f"{base!r}; closures do not pickle across the "
                        f"process boundary",
                    )
                elif arg.id in hostile_locals:
                    mod.report(
                        self.name, "queue-put-unpicklable", arg,
                        f"{arg.id!r} (a {hostile_locals[arg.id]}) placed "
                        f"on queue {base!r}; fork-hostile resources must "
                        f"not cross the process boundary",
                    )

    # -- wire payload dataclasses --------------------------------------------

    def _check_wire_dataclasses(
        self, mod: SourceModule, aliases: dict[str, str]
    ) -> None:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            # In the fleet zone every dataclass is presumed wire-bound.
            # Elsewhere, only known wire classes are: a ``*Checkpoint``
            # rides the fleet wire and lands in the on-disk store no
            # matter where it is defined, and the program-compilation
            # payloads cross the dispatcher/shard boundary in whole-graph
            # serving — both obey wire rules too.
            if mod.zone != "fleet" and not _is_wire_class(node.name):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                ann = _annotation_text(stmt.annotation)
                if ann is None:
                    continue
                hostile = _hostile_annotation(ann)
                if hostile is not None:
                    mod.report(
                        self.name, "wire-unpicklable-field", stmt,
                        f"dataclass {node.name}.{_target_name(stmt.target)} "
                        f"is annotated {hostile!r}, which cannot pickle "
                        f"across the shard boundary; wire payloads carry "
                        f"plain data only",
                    )


# -- helpers -----------------------------------------------------------------


def _is_process_ctor(callee: str) -> bool:
    return callee.endswith(".Process") or callee == "Process"


def _looks_like_queue(base: str) -> bool:
    tail = base.rsplit(".", 1)[-1].lower()
    return "q" == tail or tail.endswith("_q") or "queue" in tail


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside other functions (spawn-hostile)."""
    names: set[str] = set()
    for _cls, fn in iter_functions(tree):
        for stmt in ast.walk(fn):
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt is not fn
            ):
                names.add(stmt.name)
    return names


def _fork_hostile_locals(
    tree: ast.Module, aliases: dict[str, str]
) -> dict[str, str]:
    """Local name -> hostile ctor, for names bound to locks/files etc."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        callee = expand_name(node.value.func, aliases)
        if callee is None:
            continue
        if callee in ("Lock", "RLock", "Event", "Condition"):
            callee = f"threading.{callee}"
        if callee in _FORK_HOSTILE_CTORS:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = callee
    return out


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        name = qualified_name(
            deco.func if isinstance(deco, ast.Call) else deco
        )
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _annotation_text(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value  # stringized annotation
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover - malformed
        return None


def _hostile_annotation(ann: str) -> str | None:
    # strip Optional/union wrappers crudely: check every dotted token
    for token in ann.replace("|", " ").replace("[", " ").replace("]", " ") \
            .replace(",", " ").split():
        for hostile in _FORK_HOSTILE:
            if token == hostile or token.endswith(f".{hostile}") or (
                "." not in hostile and token.split(".")[-1] == hostile
            ):
                return token
    return None


def _target_name(node: ast.expr) -> str:
    return node.id if isinstance(node, ast.Name) else ast.unparse(node)
