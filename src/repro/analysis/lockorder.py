"""LockOrderChecker: static lock-acquisition graph, cycles, unlocked writes.

27+ ``threading.Lock``/``RLock`` sites now span serve, cache, memo,
metrics, and fleet with no written ordering discipline.  This checker
recovers the discipline mechanically:

1. **Lock inventory** — every ``self.x = threading.Lock()`` (or RLock /
   Condition), module-level lock, function-local lock, and *lock factory*
   (a method that mints and returns locks, like the serve layer's
   per-family locks) becomes a named node: ``CompileService._cold_lock``,
   ``perf.memo._default_lock``, ``CompileService._family_lock()``.
2. **Acquisition graph** — an abstract interpretation of every function
   tracks the stack of statically-held locks through nested ``with``
   blocks.  Acquiring ``B`` while holding ``A`` adds edge ``A -> B``.
   Calls are resolved interprocedurally (``self.method()``, methods on
   attributes with known constructor types, module functions, class
   constructors across the whole analyzed tree) and contribute their
   *transitive* acquire set as edges from every currently-held lock.
3. **Cycle report** — a cycle in the merged graph is a potential deadlock
   (two threads entering the cycle from different nodes can deadlock);
   each cycle is one ``lock-cycle`` finding anchored at a participating
   acquisition site.  Re-entrant self-edges on ``RLock`` nodes are
   legal and skipped.
4. **Unlocked writes** — an attribute written under one of its class's
   locks in one method but written bare in another (``__init__``
   excluded: construction is single-threaded) is a data race waiting for
   a scheduler to find it; each bare write is an ``unlocked-write``
   finding.

The runtime twin of this checker is
:class:`~repro.analysis.witness.LockWitness`, which records the *actual*
acquisition order under tests/chaos CI and asserts the same graph stays
acyclic — the static pass proves the order discipline exists, the witness
proves the code follows it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.visitor import (
    Checker,
    SourceModule,
    import_aliases,
    expand_name,
    qualified_name,
)

__all__ = ["LockOrderChecker"]

_LOCK_CTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
}

#: sentinel env value: a local variable holding a freshly minted lock.
_FRESH_LOCK = "<fresh-lock>"


@dataclass
class _Lock:
    node_id: str
    kind: str  #: ``lock`` | ``rlock`` | ``condition`` | ``factory``
    path: str
    line: int


@dataclass
class _Write:
    attr: str
    locked: bool
    mod: SourceModule
    node: ast.AST
    method: str


@dataclass
class _FuncInfo:
    """Per-function facts from the abstract interpretation pass."""

    key: str  #: ``Class.method`` or ``module.function``
    direct: set[str] = field(default_factory=set)  #: locks acquired directly
    #: (held lock ids at the call, callee key) — expanded in finalize.
    calls: list[tuple[tuple[str, ...], str, SourceModule, ast.AST]] = field(
        default_factory=list
    )
    is_factory: bool = False


@dataclass
class _ClassInfo:
    name: str
    module: str
    locks: dict[str, _Lock] = field(default_factory=dict)  #: attr -> lock
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: set[str] = field(default_factory=set)
    writes: list[_Write] = field(default_factory=list)


class LockOrderChecker(Checker):
    name = "lockorder"

    def __init__(self) -> None:
        self._classes: dict[str, _ClassInfo] = {}
        self._functions: dict[str, _FuncInfo] = {}
        #: edge (a, b) -> first witnessing (module, node, description)
        self._edges: dict[tuple[str, str], tuple[SourceModule, ast.AST, str]] = {}
        self._locks: dict[str, _Lock] = {}
        #: factory keys surviving the pass-1 reset (see :meth:`finalize`).
        self._factories: set[str] = set()
        self._pending: list[SourceModule] = []

    # -- per-module pass -----------------------------------------------------

    def check_module(self, mod: SourceModule) -> None:
        aliases = import_aliases(mod.tree)
        short = mod.module.removeprefix("repro.")
        # inventory pass: classes (locks, attr constructor types, methods)
        # and module-level locks; interpretation is deferred to finalize so
        # the whole-program class/factory index exists first.
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._index_class(mod, stmt, aliases)
            elif isinstance(stmt, ast.Assign):
                self._index_module_lock(mod, stmt, aliases, short)
        self._pending.append(mod)

    def _interpret_all(self) -> None:
        for mod in self._pending:
            aliases = import_aliases(mod.tree)
            short = mod.module.removeprefix("repro.")
            for stmt in mod.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._interpret_function(mod, stmt, None, aliases, short)
                elif isinstance(stmt, ast.ClassDef):
                    for sub in stmt.body:
                        if isinstance(
                            sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            self._interpret_function(
                                mod, sub, stmt.name, aliases, short
                            )

    def _index_class(
        self, mod: SourceModule, cls: ast.ClassDef, aliases: dict[str, str]
    ) -> None:
        info = self._classes.setdefault(
            cls.name, _ClassInfo(name=cls.name, module=mod.module)
        )
        for sub in cls.body:
            if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info.methods.add(sub.name)
            for node in ast.walk(sub):
                if not isinstance(node, ast.Assign):
                    continue
                kind = _lock_ctor_kind(node.value, aliases)
                ctor = _constructor_of(node.value)
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if kind is not None:
                        lock = _Lock(
                            node_id=f"{cls.name}.{attr}",
                            kind=kind,
                            path=mod.path,
                            line=node.lineno,
                        )
                        info.locks[attr] = lock
                        self._locks[lock.node_id] = lock
                    elif ctor is not None and sub.name == "__init__":
                        info.attr_types[attr] = ctor

    def _index_module_lock(
        self,
        mod: SourceModule,
        stmt: ast.Assign,
        aliases: dict[str, str],
        short: str,
    ) -> None:
        kind = _lock_ctor_kind(stmt.value, aliases)
        if kind is None:
            return
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                lock = _Lock(
                    node_id=f"{short}.{target.id}",
                    kind=kind,
                    path=mod.path,
                    line=stmt.lineno,
                )
                self._locks[lock.node_id] = lock

    # -- abstract interpretation ----------------------------------------------

    def _interpret_function(
        self,
        mod: SourceModule,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
        aliases: dict[str, str],
        short: str,
        outer_env: dict[str, str] | None = None,
        key_prefix: str | None = None,
    ) -> None:
        owner = cls if cls is not None else short
        base = key_prefix if key_prefix is not None else owner
        key = f"{base}.{fn.name}"
        info = self._functions.setdefault(key, _FuncInfo(key=key))
        env: dict[str, str] = dict(outer_env or {})
        ctx = _Ctx(
            checker=self,
            mod=mod,
            cls=cls,
            fn=fn,
            key=key,
            info=info,
            env=env,
            aliases=aliases,
            short=short,
        )
        ctx.run(fn.body, held=[])

    # -- whole-program resolution ---------------------------------------------

    def finalize(self, modules: list[SourceModule]) -> None:
        # Pass 1 discovers lock factories (a call site can precede the
        # factory's definition in source order); pass 2 re-interprets with
        # the factory set fixed so `with self._factory():` sites resolve.
        self._interpret_all()
        self._factories = {
            key for key, info in self._functions.items() if info.is_factory
        }
        self._functions.clear()
        self._edges.clear()
        for cls in self._classes.values():
            cls.writes.clear()
        for key in self._factories:
            self._functions[key] = _FuncInfo(key=key, is_factory=True)
        self._interpret_all()
        transitive = self._transitive_acquires()
        # expand call records into edges from held locks to callee acquires
        for info in self._functions.values():
            for held, callee, mod, node in info.calls:
                for target in sorted(transitive.get(callee, ())):
                    for holder in held:
                        if holder == target:
                            continue
                        self._edges.setdefault(
                            (holder, target),
                            (
                                mod,
                                node,
                                f"{holder} held while {callee}() acquires "
                                f"{target}",
                            ),
                        )
        self._report_cycles(modules)
        self._report_unlocked_writes()

    def _transitive_acquires(self) -> dict[str, set[str]]:
        """Fixpoint of direct-acquire sets through resolvable calls."""
        acquires = {k: set(v.direct) for k, v in self._functions.items()}
        changed = True
        while changed:
            changed = False
            for key, info in self._functions.items():
                bucket = acquires[key]
                before = len(bucket)
                for _, callee, _, _ in info.calls:
                    bucket.update(acquires.get(callee, ()))
                if len(bucket) != before:
                    changed = True
        return acquires

    def _report_cycles(self, modules: list[SourceModule]) -> None:
        graph: dict[str, set[str]] = {}
        for (a, b), _ in self._edges.items():
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        for component in _tarjan_sccs(graph):
            cyclic = len(component) > 1 or (
                len(component) == 1
                and component[0] in graph.get(component[0], ())
            )
            if not cyclic:
                continue
            members = set(component)
            # pick a stable witnessing edge inside the component
            witness = min(
                (
                    (edge, site)
                    for edge, site in self._edges.items()
                    if edge[0] in members and edge[1] in members
                ),
                key=lambda item: item[0],
            )
            (a, b), (mod, node, _desc) = witness
            cycle = " -> ".join(sorted(members)) + f" -> {sorted(members)[0]}"
            mod.report(
                self.name, "lock-cycle", node,
                f"lock-order cycle {cycle}; two threads entering this cycle "
                f"from different locks can deadlock — pick one global order",
            )

    def _caller_held(self) -> dict[str, set[str]]:
        """Function key -> locks held at *every* internal call site.

        Only private helpers (leading underscore, non-dunder) qualify:
        a public method can be entered from outside with nothing held,
        so no caller context can be guaranteed for it.  Fixpoint from
        below: a call site's effective held set includes whatever the
        caller itself is guaranteed, so helper-calls-helper chains under
        one lock resolve.
        """
        sites: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
        for caller_key, info in self._functions.items():
            for held, callee, _, _ in info.calls:
                sites.setdefault(callee, []).append((caller_key, held))
        guaranteed: dict[str, set[str]] = {}
        changed = True
        while changed:
            changed = False
            for key, callers in sites.items():
                name = key.rsplit(".", 1)[-1]
                if not name.startswith("_") or name.startswith("__"):
                    continue
                merged: set[str] | None = None
                for caller_key, held in callers:
                    effective = set(held) | guaranteed.get(caller_key, set())
                    merged = (
                        effective if merged is None else merged & effective
                    )
                merged = merged or set()
                if merged != guaranteed.get(key, set()):
                    guaranteed[key] = merged
                    changed = True
        return guaranteed

    def _report_unlocked_writes(self) -> None:
        guaranteed = self._caller_held()
        for info in self._classes.values():
            class_lock_ids = {lock.node_id for lock in info.locks.values()}
            class_lock_ids.update(
                node_id
                for node_id in self._locks
                if node_id.startswith(f"{info.name}.")
                and node_id.endswith("()")
            )
            by_attr: dict[str, list[_Write]] = {}
            for write in info.writes:
                if write.method == "__init__" or write.attr in info.locks:
                    continue
                by_attr.setdefault(write.attr, []).append(write)
            for attr, writes in by_attr.items():
                if not any(w.locked for w in writes):
                    continue  # attribute has no owning lock at all
                for w in writes:
                    if w.locked:
                        continue
                    key = f"{info.name}.{w.method}"
                    if guaranteed.get(key, set()) & class_lock_ids:
                        continue  # every caller holds an owning lock
                    w.mod.report(
                        self.name, "unlocked-write", w.node,
                        f"{info.name}.{attr} is written under a lock "
                        f"elsewhere but bare in {w.method}(); either hold "
                        f"the owning lock or document why this write "
                        f"cannot race",
                    )

    # -- edge recording (called by _Ctx) --------------------------------------

    def _add_edge(
        self,
        a: str,
        b: str,
        mod: SourceModule,
        node: ast.AST,
        desc: str,
    ) -> None:
        if a == b:
            lock = self._locks.get(a)
            if lock is not None and lock.kind in ("rlock", "factory"):
                return  # legal re-entrancy (RLock) / distinct factory locks
        self._edges.setdefault((a, b), (mod, node, desc))


class _Ctx:
    """One function's abstract interpretation state."""

    def __init__(self, checker, mod, cls, fn, key, info, env, aliases, short):
        self.checker: LockOrderChecker = checker
        self.mod: SourceModule = mod
        self.cls: str | None = cls
        self.fn = fn
        self.key: str = key
        self.info: _FuncInfo = info
        self.env: dict[str, str] = env  #: local name -> lock node / marker
        self.aliases = aliases
        self.short = short
        #: nested function defs, registered so bare calls resolve to them.
        self.local_funcs: dict[str, str] = {}

    # -- statement walk ------------------------------------------------------

    def run(self, body: list[ast.stmt], held: list[str]) -> None:
        for stmt in body:
            self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: list[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_key = f"{self.key}.{stmt.name}"
            self.local_funcs[stmt.name] = nested_key
            self.checker._interpret_function(
                self.mod, stmt, self.cls, self.aliases, self.short,
                outer_env=self.env, key_prefix=self.key,
            )
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt, held)
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt, held)
            return
        if isinstance(stmt, ast.AugAssign):
            self._record_write(stmt.target, held, stmt)
            self._calls_in(stmt.value, held)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._record_write(stmt.target, held, stmt)
                self._calls_in(stmt.value, held)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._calls_in(stmt.value, held)
                if self._resolves_to_fresh_lock(stmt.value):
                    self.info.is_factory = True
                    self._register_factory()
            return
        if isinstance(stmt, ast.Try):
            self.run(stmt.body, held)
            for handler in stmt.handlers:
                self.run(handler.body, held)
            self.run(stmt.orelse, held)
            self.run(stmt.finalbody, held)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._calls_in(stmt.test, held)
            self.run(stmt.body, held)
            self.run(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._calls_in(stmt.iter, held)
            self.run(stmt.body, held)
            self.run(stmt.orelse, held)
            return
        # leaf statements (Expr, Raise, Assert, Delete, ...): record calls
        for value in ast.iter_child_nodes(stmt):
            if isinstance(value, ast.expr):
                self._calls_in(value, held)

    def _with(self, stmt: ast.With | ast.AsyncWith, held: list[str]) -> None:
        acquired: list[str] = []
        for item in stmt.items:
            # the context expression runs *before* the acquisition
            self._calls_in(item.context_expr, held + acquired)
            node_id = self._lock_node(item.context_expr)
            if node_id is not None:
                for holder in held + acquired:
                    self.checker._add_edge(
                        holder, node_id, self.mod, item.context_expr,
                        f"{holder} held while acquiring {node_id}",
                    )
                self.info.direct.add(node_id)
                acquired.append(node_id)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    self.env[item.optional_vars.id] = node_id
        self.run(stmt.body, held + acquired)

    def _assign(self, stmt: ast.Assign, held: list[str]) -> None:
        kind = _lock_ctor_kind(stmt.value, self.aliases)
        factory_node = self._factory_call_node(stmt.value)
        for target in stmt.targets:
            self._record_write(target, held, stmt)
            if isinstance(target, ast.Name):
                if kind is not None:
                    node_id = f"{self.key}.{target.id}"
                    self.checker._locks[node_id] = _Lock(
                        node_id=node_id, kind=kind,
                        path=self.mod.path, line=stmt.lineno,
                    )
                    self.env[target.id] = node_id
                elif factory_node is not None:
                    self.env[target.id] = factory_node
                else:
                    resolved = self._lock_node(stmt.value)
                    if resolved is not None:
                        self.env[target.id] = resolved
                    else:
                        self.env.pop(target.id, None)
        if kind is None and factory_node is None:
            self._calls_in(stmt.value, held)

    # -- expression helpers ---------------------------------------------------

    def _calls_in(self, expr: ast.expr, held: list[str]) -> None:
        """Record resolvable calls (with the current held set) in ``expr``.

        Lambda bodies are skipped: they execute later, on whatever thread
        invokes them, not under this function's held set.
        """
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                callee = self._resolve_callee(node)
                if callee is not None:
                    self.info.calls.append(
                        (tuple(held), callee, self.mod, node)
                    )
            stack.extend(ast.iter_child_nodes(node))

    def _resolve_callee(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_funcs:
                return self.local_funcs[name]
            if name in self.checker._classes:
                return f"{name}.__init__"
            return f"{self.short}.{name}"
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" and self.cls:
                info = self.checker._classes.get(self.cls)
                if info is not None and func.attr in info.methods:
                    return f"{self.cls}.{func.attr}"
                return None
            # self.<attr>.<method>() with a known constructor type
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and self.cls
            ):
                info = self.checker._classes.get(self.cls)
                if info is not None:
                    target_cls = info.attr_types.get(base.attr)
                    target = (
                        self.checker._classes.get(target_cls)
                        if target_cls
                        else None
                    )
                    if target is not None and func.attr in target.methods:
                        return f"{target_cls}.{func.attr}"
        return None

    def _lock_node(self, expr: ast.expr) -> str | None:
        """Resolve a with-context expression to a lock node id, if any."""
        attr = _self_attr(expr)
        if attr is not None and self.cls is not None:
            info = self.checker._classes.get(self.cls)
            if info is not None and attr in info.locks:
                return info.locks[attr].node_id
            return None
        if isinstance(expr, ast.Name):
            bound = self.env.get(expr.id)
            if bound == _FRESH_LOCK:
                return None
            if bound is not None:
                return bound
            module_node = f"{self.short}.{expr.id}"
            if module_node in self.checker._locks:
                return module_node
            return None
        if isinstance(expr, ast.Call):
            return self._factory_call_node(expr)
        return None

    def _factory_call_node(self, expr: ast.expr) -> str | None:
        """``self.lock_factory(...)`` -> the factory's lock-tier node."""
        if not isinstance(expr, ast.Call):
            return None
        callee = self._resolve_callee(expr)
        if callee is None:
            return None
        info = self.checker._functions.get(callee)
        if info is not None and info.is_factory:
            return f"{callee}()"
        return None

    def _resolves_to_fresh_lock(self, expr: ast.expr) -> bool:
        if _lock_ctor_kind(expr, self.aliases) is not None:
            return True
        if isinstance(expr, ast.Name):
            bound = self.env.get(expr.id)
            return bound is not None and (
                bound == _FRESH_LOCK or bound in self.checker._locks
            )
        return False

    def _register_factory(self) -> None:
        node_id = f"{self.key}()"
        if node_id not in self.checker._locks:
            self.checker._locks[node_id] = _Lock(
                node_id=node_id, kind="factory",
                path=self.mod.path, line=self.fn.lineno,
            )

    def _record_write(
        self, target: ast.expr, held: list[str], stmt: ast.stmt
    ) -> None:
        if self.cls is None:
            return
        info = self.checker._classes.get(self.cls)
        if info is None:
            return
        attr = _self_attr(target)
        if attr is None and isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
        if attr is None:
            return
        class_lock_ids = {lock.node_id for lock in info.locks.values()}
        # factory locks of this class also count as owning locks
        class_lock_ids.update(
            node_id
            for node_id in self.checker._locks
            if node_id.startswith(f"{self.cls}.") and node_id.endswith("()")
        )
        locked = any(h in class_lock_ids for h in held)
        info.writes.append(
            _Write(
                attr=attr,
                locked=locked,
                mod=self.mod,
                node=stmt,
                method=self.fn.name,
            )
        )


# -- small helpers ------------------------------------------------------------


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_ctor_kind(expr: ast.expr, aliases: dict[str, str]) -> str | None:
    if not isinstance(expr, ast.Call):
        return None
    name = expand_name(expr.func, aliases)
    if name is None:
        return None
    if name in ("Lock", "RLock", "Condition"):
        name = f"threading.{name}"
    return _LOCK_CTORS.get(name)


def _constructor_of(expr: ast.expr) -> str | None:
    """Class name when ``expr`` (or one branch of it) is ``ClassName(...)``."""
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        name = expr.func.id
        if name and name[0].isupper():
            return name
    if isinstance(expr, ast.IfExp):
        return _constructor_of(expr.body) or _constructor_of(expr.orelse)
    if isinstance(expr, ast.BoolOp):
        for value in expr.values:
            found = _constructor_of(value)
            if found is not None:
                return found
    return None


def _tarjan_sccs(graph: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components, iterative Tarjan (no recursion cap)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent_node = work[-1][0]
                low[parent_node] = min(low[parent_node], low[node])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs
