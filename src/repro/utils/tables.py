"""Minimal text-table rendering for experiment output.

The benchmark harness prints every reproduced paper table/figure as an ASCII
table; this module keeps that presentation logic in one place so experiment
modules only assemble rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_si", "format_ratio"]


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``1.23e13 -> '12.3T'``.

    Used for FLOPS and byte quantities in reproduced tables.
    """
    if value != value:  # NaN
        return "nan"
    neg = value < 0
    v = abs(float(value))
    for factor, prefix in (
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
    ):
        if v >= factor or factor == 1e-9:
            out = f"{v / factor:.{digits}g}{prefix}{unit}"
            return "-" + out if neg else out
    return f"{value:.{digits}g}{unit}"


def format_ratio(value: float, digits: int = 2) -> str:
    """Format a relative-performance ratio like the paper's ``1.18x``."""
    return f"{value:.{digits}f}x"


@dataclass
class Table:
    """A column-aligned ASCII table.

    >>> t = Table("Op", "FLOPS")
    >>> t.add_row("M1", "45.2T")
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def __init__(self, *headers: str, title: str = "") -> None:
        self.headers = list(headers)
        self.title = title
        self.rows = []

    def add_row(self, *cells: Any) -> None:
        """Append a row; non-string cells are ``str()``-converted."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt_cell(c) for c in cells])

    def render(self) -> str:
        """Render the table to a string (no trailing newline)."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
