"""Wall-clock timing helpers for compile-time experiments (Fig. 8/10/12)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    The compile-time experiments time each compiler's optimization pass with
    one Stopwatch per method and report accumulated seconds.
    """

    laps: dict[str, float] = field(default_factory=dict)
    _start: float | None = None
    _label: str | None = None

    def start(self, label: str) -> None:
        if self._start is not None:
            raise RuntimeError(f"stopwatch already running lap {self._label!r}")
        self._label = label
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None or self._label is None:
            raise RuntimeError("stopwatch is not running")
        elapsed = time.perf_counter() - self._start
        self.laps[self._label] = self.laps.get(self._label, 0.0) + elapsed
        self._start = None
        self._label = None
        return elapsed

    def __enter__(self) -> "Stopwatch":
        if self._label is None:
            self._label = "default"
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._start is not None:
            self.stop()

    def lap(self, label: str) -> "_LapContext":
        """Context manager timing one named lap: ``with sw.lap('gensor'): ...``"""
        return _LapContext(self, label)

    def total(self) -> float:
        return sum(self.laps.values())


class _LapContext:
    def __init__(self, sw: Stopwatch, label: str) -> None:
        self._sw = sw
        self._lbl = label

    def __enter__(self) -> Stopwatch:
        self._sw.start(self._lbl)
        return self._sw

    def __exit__(self, *exc: object) -> None:
        self._sw.stop()
