"""Deterministic random-number management.

Every stochastic component in the reproduction (Markov roulette selection,
Ansor's evolutionary search, the simulator's measurement-noise model) draws
from an explicitly seeded :class:`numpy.random.Generator`.  Experiments pass
a single root seed and derive independent child streams with
:func:`spawn_rng`, so results are reproducible regardless of call order
between components.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["new_rng", "spawn_rng"]


def new_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a fresh, seeded :class:`numpy.random.Generator`.

    ``seed=None`` yields a non-deterministic generator; everything in the
    library defaults to seed 0 so that bare calls are reproducible.
    """
    return np.random.default_rng(seed)


def spawn_rng(seed: int, *labels: str | int) -> np.random.Generator:
    """Derive an independent child generator from ``seed`` and a label path.

    The labels are hashed (SHA-256, stable across runs and platforms, unlike
    Python's randomized ``hash``) together with the root seed, so the stream
    consumed by e.g. ``("ansor", "M3")`` never collides with or depends on
    the stream for ``("gensor", "M3")``.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    child_seed = int.from_bytes(h.digest()[:8], "little")
    return np.random.default_rng(child_seed)
