"""Deterministic random-number management.

Every stochastic component in the reproduction (Markov roulette selection,
Ansor's evolutionary search, the simulator's measurement-noise model) draws
from an explicitly seeded :class:`numpy.random.Generator`.  Experiments pass
a single root seed and derive independent child streams with
:func:`spawn_rng`, so results are reproducible regardless of call order
between components.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

import numpy as np

__all__ = [
    "new_rng",
    "restore_rng",
    "rng_state",
    "spawn_rng",
    "spawn_seed_ints",
    "spawn_substreams",
]


def new_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a fresh, seeded :class:`numpy.random.Generator`.

    ``seed=None`` yields a non-deterministic generator; everything in the
    library defaults to seed 0 so that bare calls are reproducible.
    """
    return np.random.default_rng(seed)


def spawn_rng(seed: int, *labels: str | int) -> np.random.Generator:
    """Derive an independent child generator from ``seed`` and a label path.

    The labels are hashed (SHA-256, stable across runs and platforms, unlike
    Python's randomized ``hash``) together with the root seed, so the stream
    consumed by e.g. ``("ansor", "M3")`` never collides with or depends on
    the stream for ``("gensor", "M3")``.
    """
    return np.random.default_rng(_label_seed(seed, *labels))


def spawn_substreams(
    seed: int, *labels: str | int, n: int
) -> list[np.random.Generator]:
    """``n`` independent generators via ``SeedSequence.spawn`` substreams.

    Anchored at the same stable label hash as :func:`spawn_rng`, so the
    substream family for one label path is deterministic across runs and
    platforms but statistically independent of every ``spawn_rng`` stream
    (the SeedSequence spawn tree hashes differently from a direct seed).
    Used by multi-walker construction: each walker's chains draw from
    their own substream, so walkers never share or perturb each other's
    randomness regardless of thread scheduling.
    """
    root = np.random.SeedSequence(_label_seed(seed, *labels))
    return [np.random.default_rng(child) for child in root.spawn(n)]


def spawn_seed_ints(seed: int, *labels: str | int, n: int) -> list[int]:
    """``n`` deterministic child *seed integers* from a labeled spawn tree.

    Like :func:`spawn_substreams` but returning plain ints instead of
    generators, for call sites that pass seeds onward (e.g. into
    :class:`~repro.core.constructor.GensorConfig`) rather than drawing
    directly.  Same root anchoring, so the family is stable across runs
    and platforms and never collides with a ``spawn_rng`` stream.
    """
    root = np.random.SeedSequence(_label_seed(seed, *labels))
    return [
        int(child.generate_state(1, np.uint64)[0]) for child in root.spawn(n)
    ]


def rng_state(gen: np.random.Generator) -> dict[str, Any]:
    """Exact bit-generator state of ``gen`` as a plain-data dict.

    The dict contains only Python ints and strings (PCG64's 128-bit
    counters are arbitrary-precision ints), so it survives JSON and pickle
    round trips unchanged.  Feeding it to :func:`restore_rng` yields a
    generator whose future draws are bit-identical to continuing ``gen`` —
    the foundation of mid-walk checkpoint/resume parity.
    """
    return gen.bit_generator.state


def restore_rng(state: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild a generator that continues the stream :func:`rng_state` froze.

    The bit-generator class is looked up by the name recorded in the state
    dict (``PCG64`` for every generator this library spawns), so a state
    captured on one process resumes exactly on another.
    """
    cls = getattr(np.random, str(state["bit_generator"]))
    bit_gen = cls()
    bit_gen.state = dict(state)
    return np.random.Generator(bit_gen)


def _label_seed(seed: int, *labels: str | int) -> int:
    h = hashlib.sha256()
    h.update(str(int(seed)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "little")
