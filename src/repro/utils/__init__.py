"""Shared utilities: deterministic RNG handling, table rendering, timing."""

from repro.utils.rng import new_rng, spawn_rng
from repro.utils.tables import Table
from repro.utils.timing import Stopwatch

__all__ = ["new_rng", "spawn_rng", "Table", "Stopwatch"]
