"""Global switch for hot-path derived-value caching.

The ETIR/access layers memoize derived quantities (footprints, traffic,
memory checks) that the construction hot path re-derives for equal states
many times.  Those caches are value-transparent — they only change how
often the same arithmetic runs — but the walk benchmark needs to measure
the *uncached* historical path as its baseline, so they all consult this
one process-wide toggle.

Not thread-safe by design: the toggle is flipped only by the bench (and
tests) around whole single-threaded runs, never mid-compile.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["HOT_PATH_CACHING", "hot_path_caching_disabled"]


class _Toggle:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


#: consulted by :mod:`repro.ir.etir` and :mod:`repro.ir.access`.
HOT_PATH_CACHING = _Toggle()


@contextmanager
def hot_path_caching_disabled() -> Iterator[None]:
    """Run a block with derived-value caching off (bench baseline mode)."""
    prev = HOT_PATH_CACHING.enabled
    HOT_PATH_CACHING.enabled = False
    try:
        yield
    finally:
        HOT_PATH_CACHING.enabled = prev
