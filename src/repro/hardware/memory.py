"""Shared-memory bank-conflict and transaction models.

The vThread action in Gensor (paper Formula 3) exists to reduce
shared-memory bank conflicts: interleaving virtual threads across the
innermost tile dimension spreads simultaneous accesses across banks.  The
simulator needs the *actual* serialization factor those conflicts impose so
that the analytical benefit formula has a real effect to predict.
"""

from __future__ import annotations

import math

__all__ = ["bank_conflict_factor", "smem_transaction_factor", "coalescing_factor"]


def bank_conflict_factor(tile_x: int, bank_width: int, vthreads: int = 1) -> float:
    """Serialization factor (>= 1) for a warp accessing a ``tile_x``-wide row.

    A warp whose threads walk a row of ``tile_x`` consecutive elements
    touches ``ceil(tile_x / bank_width)`` bank groups; each extra group is an
    extra serialized shared-memory transaction.  Splitting the row across
    ``vthreads`` virtual threads interleaves the accesses so the group count
    drops to ``ceil(tile_x / (vthreads * bank_width))`` — this is exactly the
    denominator of the paper's Formula 3.

    Returns the number of serialized transaction groups (1.0 = conflict
    free).
    """
    if tile_x <= 0:
        raise ValueError(f"tile_x must be positive, got {tile_x}")
    if bank_width <= 0:
        raise ValueError(f"bank_width must be positive, got {bank_width}")
    if vthreads <= 0:
        raise ValueError(f"vthreads must be positive, got {vthreads}")
    return float(math.ceil(tile_x / (vthreads * bank_width)))


def smem_transaction_factor(
    tile_x: int, bank_width: int, vthreads: int = 1
) -> float:
    """Effective shared-memory slowdown caused by bank conflicts.

    Conflicts only serialize the conflicted access itself, not the whole
    pipeline, so the slowdown saturates: the factor is a damped version of
    :func:`bank_conflict_factor`, normalized so a conflict-free access
    costs 1.0.
    """
    groups = bank_conflict_factor(tile_x, bank_width, vthreads)
    # Each extra transaction group adds ~35% of a baseline access: issue
    # overheads overlap partially with the previous group's data return.
    return 1.0 + 0.35 * (groups - 1.0)


def coalescing_factor(innermost_tile: int, warp_size: int = 32) -> float:
    """Global-memory transaction inflation for poorly coalesced loads.

    When the innermost (contiguous) tile extent is smaller than a warp,
    each 128-byte transaction carries partially useful data, inflating DRAM
    traffic by up to ``warp_size / innermost_tile``.
    """
    if innermost_tile <= 0:
        raise ValueError(f"innermost_tile must be positive, got {innermost_tile}")
    if innermost_tile >= warp_size:
        return 1.0
    return float(warp_size) / float(innermost_tile)
