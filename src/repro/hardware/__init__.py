"""Hardware abstraction: GPU device specifications and memory-system models.

The reproduction substitutes real GPUs with analytical device models.  A
:class:`~repro.hardware.spec.HardwareSpec` captures the compute and memory
architecture parameters Gensor's transition-probability formulas consume
(peak FLOPS, memory-level capacities / bandwidths / latencies, shared-memory
bank geometry, occupancy limits), plus the launch-overhead constants the
simulator needs.
"""

from repro.hardware.spec import (
    HardwareSpec,
    MemoryLevel,
    generic_gpu,
    orin_nano,
    rtx4090,
)
from repro.hardware.memory import bank_conflict_factor, smem_transaction_factor

__all__ = [
    "HardwareSpec",
    "MemoryLevel",
    "rtx4090",
    "orin_nano",
    "generic_gpu",
    "bank_conflict_factor",
    "smem_transaction_factor",
]
