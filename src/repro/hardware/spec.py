"""Device specifications for the simulated GPUs.

Two concrete devices mirror the paper's testbeds (Table III):

* :func:`rtx4090` — the cloud-server GPU (Ada, 128 SMs, 24 GB GDDR6X),
* :func:`orin_nano` — the edge GPU (Ampere, 8 SMs, 8 GB LPDDR5).

The numbers are public architecture figures; the simulator only relies on
their *relative* magnitudes (e.g. DRAM is ~40x slower than shared memory),
which is what shapes every reproduced result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryLevel", "HardwareSpec", "rtx4090", "orin_nano", "generic_gpu"]


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the device memory hierarchy.

    Levels are ordered from slowest/largest (index 0 = DRAM) to
    fastest/smallest (registers).  ``capacity_bytes`` is the capacity
    *visible to one thread block* for on-chip levels (shared memory,
    registers) and the device-wide capacity for off-chip levels.
    """

    name: str
    capacity_bytes: int
    bandwidth_bytes_per_s: float
    latency_s: float
    #: True for per-SM resources that bound occupancy (smem, registers).
    per_block: bool = False

    def access_time(self, nbytes: float) -> float:
        """Latency + transfer time for moving ``nbytes`` through this level.

        This is the quantity in the paper's caching-benefit formula
        (Formula 2): ``L + S/B``.
        """
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class HardwareSpec:
    """Compute + memory architecture of a simulated GPU.

    Attributes mirror what Gensor's hardware-aware formulas need:

    * ``peak_flops`` drives the compute-bound roofline,
    * ``levels`` (DRAM → L2 → shared → registers) drives the caching
      benefit and memory checks,
    * ``bank_width_elems`` / ``num_banks`` drive the vThread benefit
      (Formula 3),
    * occupancy limits (threads/registers/smem per SM) drive the latency
      hiding model.
    """

    name: str
    num_sms: int
    clock_hz: float
    fp32_cores_per_sm: int
    warp_size: int = 32
    max_threads_per_sm: int = 1536
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 16
    registers_per_sm: int = 65536
    #: shared-memory bank geometry: num_banks banks of bank_width_elems
    #: 4-byte words serviced per cycle.
    num_banks: int = 32
    bank_width_elems: int = 32
    #: fixed host-side cost of launching one kernel (dominates eager
    #: frameworks' small-op performance).
    kernel_launch_overhead_s: float = 4.0e-6
    levels: tuple[MemoryLevel, ...] = field(default_factory=tuple)

    # -- derived quantities -------------------------------------------------

    @property
    def peak_flops(self) -> float:
        """Peak single-precision FLOP/s (FMA counts as two FLOPs)."""
        return self.num_sms * self.fp32_cores_per_sm * self.clock_hz * 2.0

    @property
    def num_cache_levels(self) -> int:
        """The paper's ``L``: number of on-path cache layers above DRAM.

        For both modeled NVIDIA GPUs this is 2 (shared memory and
        registers are the schedulable tiling layers; L2 is transparent).
        """
        return 2

    def level(self, name: str) -> MemoryLevel:
        for lv in self.levels:
            if lv.name == name:
                return lv
        raise KeyError(f"no memory level named {name!r} on {self.name}")

    @property
    def dram(self) -> MemoryLevel:
        return self.level("dram")

    @property
    def l2(self) -> MemoryLevel:
        return self.level("l2")

    @property
    def smem(self) -> MemoryLevel:
        return self.level("smem")

    @property
    def regs(self) -> MemoryLevel:
        return self.level("regs")

    def schedulable_levels(self) -> tuple[MemoryLevel, ...]:
        """Memory levels a schedule explicitly stages data through.

        Ordered slow → fast: (dram, smem, regs).  These correspond to the
        tile layers ``T_2, T_1`` of the paper's ``D = [T_L..T_0]`` vector
        (``T_0`` is the vThread stride, not a storage level).
        """
        return (self.dram, self.smem, self.regs)

    def validate(self) -> None:
        """Sanity-check internal consistency; raises ``ValueError``."""
        if not self.levels:
            raise ValueError("hardware spec has no memory levels")
        names = [lv.name for lv in self.levels]
        for required in ("dram", "l2", "smem", "regs"):
            if required not in names:
                raise ValueError(f"missing memory level {required!r}")
        bw = [lv.bandwidth_bytes_per_s for lv in self.levels]
        if any(b2 < b1 for b1, b2 in zip(bw, bw[1:])):
            raise ValueError("memory bandwidth must not decrease toward the core")
        lat = [lv.latency_s for lv in self.levels]
        if any(l2 > l1 for l1, l2 in zip(lat, lat[1:])):
            raise ValueError("memory latency must not increase toward the core")
        if self.peak_flops <= 0:
            raise ValueError("peak FLOPS must be positive")


def rtx4090() -> HardwareSpec:
    """The paper's cloud-server GPU (NVIDIA RTX 4090, Ada Lovelace)."""
    spec = HardwareSpec(
        name="rtx4090",
        num_sms=128,
        clock_hz=2.52e9,
        fp32_cores_per_sm=128,
        max_threads_per_sm=1536,
        max_threads_per_block=1024,
        max_blocks_per_sm=24,
        registers_per_sm=65536,
        levels=(
            MemoryLevel("dram", 24 * 2**30, 1.008e12, 560e-9),
            MemoryLevel("l2", 72 * 2**20, 5.0e12, 120e-9),
            MemoryLevel("smem", 100 * 2**10, 40.0e12, 12e-9, per_block=True),
            MemoryLevel("regs", 64 * 2**10, 160.0e12, 1.5e-9, per_block=True),
        ),
    )
    spec.validate()
    return spec


def orin_nano() -> HardwareSpec:
    """The paper's edge GPU (NVIDIA Jetson Orin Nano 8GB, Ampere)."""
    spec = HardwareSpec(
        name="orin_nano",
        num_sms=8,
        clock_hz=0.625e9,
        fp32_cores_per_sm=128,
        max_threads_per_sm=1536,
        max_threads_per_block=1024,
        max_blocks_per_sm=16,
        registers_per_sm=65536,
        kernel_launch_overhead_s=9.0e-6,
        levels=(
            MemoryLevel("dram", 8 * 2**30, 68.0e9, 900e-9),
            MemoryLevel("l2", 4 * 2**20, 400.0e9, 180e-9),
            MemoryLevel("smem", 96 * 2**10, 1.6e12, 18e-9, per_block=True),
            MemoryLevel("regs", 64 * 2**10, 6.4e12, 2.4e-9, per_block=True),
        ),
    )
    spec.validate()
    return spec


def generic_gpu(
    num_sms: int = 16,
    clock_hz: float = 1.0e9,
    dram_bandwidth: float = 200.0e9,
) -> HardwareSpec:
    """A small configurable device used by unit tests and examples."""
    spec = HardwareSpec(
        name="generic",
        num_sms=num_sms,
        clock_hz=clock_hz,
        fp32_cores_per_sm=64,
        levels=(
            MemoryLevel("dram", 4 * 2**30, dram_bandwidth, 700e-9),
            MemoryLevel("l2", 2 * 2**20, 5 * dram_bandwidth, 150e-9),
            MemoryLevel("smem", 48 * 2**10, 25 * dram_bandwidth, 15e-9, per_block=True),
            MemoryLevel("regs", 32 * 2**10, 100 * dram_bandwidth, 2e-9, per_block=True),
        ),
    )
    spec.validate()
    return spec
