"""Analytical GPU performance model.

Given an :class:`~repro.ir.etir.ETIR` schedule state and a
:class:`~repro.hardware.spec.HardwareSpec`, :class:`CostModel` predicts a
full set of kernel metrics.  The model combines the standard ingredients of
GPU roofline/occupancy analysis:

* **compute pipe** — padded FLOPs over peak, derated by instruction-level
  parallelism (small thread tiles cannot fill the FMA pipeline) and by the
  occupancy needed to hide latency;
* **DRAM pipe** — block-tile traffic inflated by coalescing waste, with an
  L2 capture model that converts inter-block reuse into L2 hits when the
  wave working set fits in L2;
* **shared-memory pipe** — thread-tile traffic inflated by bank-conflict
  serialization (reduced by vThreads, Formula 3's target);
* **staging latency** — sequential DRAM→shared stage fills per reduce
  chunk, hidden by resident-block parallelism;
* **wave quantization** — partially filled final waves waste SMs.

The prediction is deterministic and cheap (~20 µs), so search methods can
afford thousands of queries; :mod:`repro.sim.measure` adds the measurement
noise that distinguishes "profiled" from "analytical" access to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hardware.memory import coalescing_factor, smem_transaction_factor
from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.sim.metrics import KernelMetrics
from repro.utils.caching import HOT_PATH_CACHING

__all__ = ["CostModel", "INFEASIBLE", "pipe_metrics"]

#: frontier size at or below which ``evaluate_batch`` runs the scalar loop
#: (numpy setup dominates tiny batches; both paths are bit-identical).
_SCALAR_CUTOVER = 12

#: Metrics object returned for states that violate hardware limits.
INFEASIBLE = KernelMetrics(
    latency_s=math.inf,
    achieved_flops=0.0,
    compute_throughput=0.0,
    sm_occupancy=0.0,
    mem_busy=0.0,
    l2_hit_rate=0.0,
)

# Model constants (dimensionless fit parameters, fixed for all devices).
_ILP_HALF = 6.0  # inner-loop FLOPs at which the FMA pipe reaches 50%
_OCC_HALF = 0.12  # occupancy at which latency hiding reaches 50%
_OVERLAP = 0.20  # fraction of non-critical pipe time that leaks into latency
_L2_BASE_HIT = 0.35  # hit rate floor from intra-block locality
_CONFLICT_STALL = 0.10  # share of bank-conflict serialization stalling the FMA pipe


class CostModel:
    """Deterministic performance predictor for scheduled tensor programs."""

    def __init__(self, hardware: HardwareSpec) -> None:
        self.hw = hardware

    # -- public API -----------------------------------------------------------

    def evaluate(self, state: ETIR) -> KernelMetrics:
        """Predict metrics for one schedule state; INFEASIBLE if illegal."""
        hw = self.hw
        compute = state.compute
        if not state.memory_ok(hw):
            return INFEASIBLE
        threads_per_block = state.threads_per_block()
        num_blocks = state.num_blocks()

        # --- residency & occupancy -------------------------------------------
        blocks_per_sm = self._blocks_per_sm(state, threads_per_block)
        if blocks_per_sm == 0:
            return INFEASIBLE
        resident_threads = blocks_per_sm * threads_per_block
        occupancy = min(1.0, resident_threads / hw.max_threads_per_sm)
        concurrent_blocks = min(num_blocks, blocks_per_sm * hw.num_sms)
        waves = num_blocks / max(1, blocks_per_sm * hw.num_sms)
        # Partial final wave wastes SMs; full waves don't.
        wave_eff = waves / math.ceil(waves) if waves > 0 else 1.0
        sm_utilization = min(1.0, concurrent_blocks / hw.num_sms) * wave_eff

        # --- compute pipe ------------------------------------------------------
        padded_flops = self._padded_flops(state)
        inner_work = self._inner_work(state)
        ilp_eff = inner_work / (inner_work + _ILP_HALF)
        lat_hiding = occupancy / (occupancy + _OCC_HALF)
        # Blocks not a multiple of the warp size waste SIMT lanes, and each
        # extra virtual thread adds a sliver of loop/addressing overhead.
        warp_eff = threads_per_block / (
            math.ceil(threads_per_block / hw.warp_size) * hw.warp_size
        )
        vthread_overhead = 1.0 + 0.01 * (state.total_vthreads() - 1)
        compute_rate = (
            hw.peak_flops * sm_utilization * ilp_eff * lat_hiding * warp_eff
        )
        compute_time = padded_flops * vthread_overhead / max(compute_rate, 1.0)

        # --- DRAM / L2 pipe ------------------------------------------------------
        coalesce = self._coalescing(state)
        l2_requests = state.dram_traffic_bytes() * coalesce
        unique_bytes = (
            state.program_io_bytes() if state.fused else compute.total_io_bytes()
        )
        l2_hit = self._l2_hit_rate(state, l2_requests, unique_bytes, concurrent_blocks)
        dram_bytes = max(unique_bytes * min(1.0, coalesce), l2_requests * (1.0 - l2_hit))
        dram_time = dram_bytes / hw.dram.bandwidth_bytes_per_s
        l2_time = l2_requests / hw.l2.bandwidth_bytes_per_s

        # --- shared-memory pipe -----------------------------------------------------
        # Conflicted transactions also stall the issue pipeline: dependent
        # FMAs wait on serialized LSU replays, so part of the conflict
        # factor leaks into compute time even when smem bandwidth has slack.
        conflict = self._bank_conflicts(state)
        compute_time *= 1.0 + _CONFLICT_STALL * (conflict - 1.0)
        smem_bytes = state.smem_traffic_bytes() * conflict
        smem_bw = hw.smem.bandwidth_bytes_per_s * min(
            1.0, concurrent_blocks / hw.num_sms
        )
        smem_time = smem_bytes / max(smem_bw, 1.0)

        # --- staging latency ----------------------------------------------------------
        reduce_chunks = self._reduce_chunks(state)
        stage_serial = math.ceil(waves) * reduce_chunks * hw.dram.latency_s
        stage_time = stage_serial / max(1.0, blocks_per_sm * lat_hiding * 4.0)

        # --- combine -------------------------------------------------------------------
        pipes = (compute_time, dram_time, l2_time, smem_time)
        bound = max(pipes)
        latency = (
            hw.kernel_launch_overhead_s
            + bound
            + _OVERLAP * (sum(pipes) - bound)
            + stage_time
        )
        useful_flops = (
            state.program_flops() if state.fused else compute.total_flops
        )
        achieved = useful_flops / latency
        return KernelMetrics(
            latency_s=latency,
            achieved_flops=achieved,
            compute_throughput=min(1.0, achieved / hw.peak_flops),
            sm_occupancy=occupancy * sm_utilization,
            mem_busy=min(1.0, dram_time / latency),
            l2_hit_rate=l2_hit,
            dram_bytes=dram_bytes,
            smem_bytes=smem_bytes,
            bank_conflict_factor=conflict,
            blocks_per_sm=blocks_per_sm,
            waves=waves,
        )

    def latency(self, state: ETIR) -> float:
        return self.evaluate(state).latency_s

    def evaluate_batch(self, states: "list[ETIR]") -> "list[KernelMetrics]":
        """Predict metrics for a frontier of states in one vectorized pass.

        Per-state *features* (residency, footprints, coalescing, conflicts)
        are extracted in a Python loop — they walk the ETIR structure and are
        memoized on the state — while the *pipe math* (occupancy, compute /
        DRAM / L2 / smem times, staging, the latency combine) runs as numpy
        float64 array expressions written in exactly the scalar
        :meth:`evaluate` operation order.  Only ``+ - * / min max ceil``
        appear in that math, so each element of the batch is bit-identical
        to the scalar result: callers (expansion scoring, polish sweeps) can
        switch between the two paths without perturbing the annealed walk's
        RNG stream.
        """
        if len(states) <= _SCALAR_CUTOVER:
            # Below this size the array setup costs more than it saves;
            # the scalar loop is bit-identical, so callers can't tell.
            return [self.evaluate(s) for s in states]
        hw = self.hw
        results: list[KernelMetrics] = [INFEASIBLE] * len(states)
        rows: list[int] = []
        feats: list[tuple] = []
        for i, state in enumerate(states):
            if not state.memory_ok(hw):
                continue
            tpb = state.threads_per_block()
            bps = self._blocks_per_sm(state, tpb)
            if bps == 0:
                continue
            compute = state.compute
            rows.append(i)
            feats.append(
                (
                    float(tpb),
                    float(bps),
                    float(state.num_blocks()),
                    self._padded_flops(state),
                    self._inner_work(state),
                    float(state.total_vthreads()),
                    self._coalescing(state),
                    float(state.dram_traffic_bytes()),
                    float(
                        state.program_io_bytes()
                        if state.fused
                        else compute.total_io_bytes()
                    ),
                    self._bank_conflicts(state),
                    float(state.smem_traffic_bytes()),
                    float(self._reduce_chunks(state)),
                    float(state.smem_footprint_bytes()),
                    float(
                        state.program_flops()
                        if state.fused
                        else compute.total_flops
                    ),
                )
            )
        if not rows:
            return results

        cols = np.asarray(feats, dtype=np.float64).T
        (
            latency,
            achieved,
            throughput,
            sm_occ,
            mem_busy,
            l2_hit,
            dram_bytes,
            smem_bytes,
            waves,
        ) = pipe_metrics(cols, hw)
        bps = cols[1]
        conflict = cols[9]

        for j, i in enumerate(rows):
            results[i] = KernelMetrics(
                latency_s=float(latency[j]),
                achieved_flops=float(achieved[j]),
                compute_throughput=float(throughput[j]),
                sm_occupancy=float(sm_occ[j]),
                mem_busy=float(mem_busy[j]),
                l2_hit_rate=float(l2_hit[j]),
                dram_bytes=float(dram_bytes[j]),
                smem_bytes=float(smem_bytes[j]),
                bank_conflict_factor=float(conflict[j]),
                blocks_per_sm=int(bps[j]),
                waves=float(waves[j]),
            )
        return results

    def latency_batch(self, states: "list[ETIR]") -> np.ndarray:
        """Latency column of :meth:`evaluate_batch` as a float64 array."""
        return np.array(
            [m.latency_s for m in self.evaluate_batch(states)], dtype=np.float64
        )

    # -- model terms -----------------------------------------------------------------

    def _blocks_per_sm(self, state: ETIR, threads_per_block: int) -> int:
        hw = self.hw
        if threads_per_block > hw.max_threads_per_block:
            return 0
        smem_fp = state.smem_footprint_bytes()
        by_smem = (
            hw.smem.capacity_bytes // smem_fp if smem_fp > 0 else hw.max_blocks_per_sm
        )
        by_threads = hw.max_threads_per_sm // max(1, threads_per_block)
        regs = threads_per_block * state.regs_per_thread()
        by_regs = hw.registers_per_sm // max(1, regs)
        return int(min(by_smem, by_threads, by_regs, hw.max_blocks_per_sm))

    def _padded_points(self, state: ETIR) -> float:
        """Iteration points actually executed, including tile-overhang waste."""
        total = 1.0
        L = state.num_levels
        for idx, ax in enumerate(state.compute.axes):
            t_block = state.tile(idx, L)
            t_thread = state.tile(idx, 1)
            blocks = math.ceil(ax.extent / t_block)
            threads = math.ceil(t_block / t_thread)
            total *= blocks * threads * t_thread
        return total

    def _padded_spatial_points(self, state: ETIR) -> float:
        """Spatial-only padded points — fused epilogues execute these."""
        total = 1.0
        L = state.num_levels
        for idx, ax in enumerate(state.compute.axes):
            if ax.is_reduce:
                continue
            t_block = state.tile(idx, L)
            t_thread = state.tile(idx, 1)
            blocks = math.ceil(ax.extent / t_block)
            threads = math.ceil(t_block / t_thread)
            total *= blocks * threads * t_thread
        return total

    def _padded_flops(self, state: ETIR) -> float:
        """Executed FLOPs including padding, plus fused-epilogue work."""
        flops = state.compute.flops_per_point * self._padded_points(state)
        if state.fused:
            flops += state.epilogue_flops_per_point() * self._padded_spatial_points(
                state
            )
        return flops

    def _inner_work(self, state: ETIR) -> float:
        """FLOP count of one thread's innermost loop body (drives ILP)."""
        work = 1.0
        for idx, _ax in enumerate(state.compute.axes):
            work *= state.tile(idx, 1)
        work = work * state.compute.flops_per_point / 2.0
        if state.fused:
            spatial = 1.0
            for idx, ax in enumerate(state.compute.axes):
                if not ax.is_reduce:
                    spatial *= state.tile(idx, 1)
            work += spatial * state.epilogue_flops_per_point() / 2.0
        return work

    def _coalescing(self, state: ETIR) -> float:
        """Traffic inflation from partially used DRAM transactions.

        For each input access, the contiguity of a staged slab is set by the
        tile extent of the axes indexing the tensor's innermost dimension.
        The per-access factors are averaged weighted by each access's share
        of the footprint.

        Memoized by block tiles; the key (and the float it maps to) is
        shared with :func:`repro.core.score._coalescing`, which runs the
        same weighted average in the same operation order.
        """
        if HOT_PATH_CACHING.enabled:
            from repro.ir.access import _tile_cache

            cache = _tile_cache(state.compute)
            lvl = state.num_levels
            key = (
                "coal",
                tuple(t[lvl - 1] for t in state.config.tiles),
                self.hw.warp_size,
            )
            cached = cache.get(key)
            if cached is None:
                cached = cache[key] = self._coalescing_uncached(state)
            return cached
        return self._coalescing_uncached(state)

    def _coalescing_uncached(self, state: ETIR) -> float:
        hw = self.hw
        block_tiles = state.tile_sizes(state.num_levels)
        total_weight = 0.0
        acc_factor = 0.0
        for acc in state.compute.inputs:
            innermost = acc.indices[-1]
            width = innermost.extent_under_tiles(block_tiles)
            width = min(width, acc.tensor.shape[-1])
            factor = coalescing_factor(width, hw.warp_size)
            from repro.ir.access import access_footprint_elems

            weight = float(
                access_footprint_elems(acc, block_tiles) * acc.tensor.dtype_bytes
            )
            acc_factor += factor * weight
            total_weight += weight
        if total_weight == 0.0:
            return 1.0
        return acc_factor / total_weight

    def _l2_hit_rate(
        self,
        state: ETIR,
        l2_requests: float,
        unique_bytes: float,
        concurrent_blocks: int,
    ) -> float:
        """L2 converts inter-block reuse into hits when the wave's working
        set fits; otherwise reuse spills to DRAM."""
        hw = self.hw
        if l2_requests <= 0:
            return 0.0
        reuse_fraction = max(0.0, 1.0 - unique_bytes / l2_requests)
        wave_set = float(concurrent_blocks) * state.smem_footprint_bytes()
        capture = min(1.0, hw.l2.capacity_bytes / max(wave_set, 1.0))
        hit = _L2_BASE_HIT + (1.0 - _L2_BASE_HIT) * reuse_fraction * capture
        return min(0.999, hit * min(1.0, reuse_fraction * 4.0 + 0.2))

    def _bank_conflicts(self, state: ETIR) -> float:
        """Shared-memory serialization from one warp's access pattern.

        Along the innermost spatial axis, each of the warp's row-adjacent
        threads loads a ``t1``-wide fragment; the warp's combined span is
        ``threads_row * t1`` elements and conflicts serialize it into
        ``ceil(span / (V * bank_width))`` transaction groups.  Virtual
        threads interleave the fragments across banks, shrinking the group
        count — the effect the paper's Formula 3 estimates.
        """
        hw = self.hw
        spatial = [
            (idx, ax) for idx, ax in enumerate(state.compute.axes) if not ax.is_reduce
        ]
        if not spatial:
            return 1.0
        idx, _ax = spatial[-1]
        t1 = state.tile(idx, 1)
        threads_row = max(
            1, state.tile(idx, state.num_levels) // max(1, t1)
        )
        span = min(hw.warp_size, threads_row) * t1
        vt = state.total_vthreads()
        return smem_transaction_factor(max(1, span), hw.bank_width_elems, vt)

    def _reduce_chunks(self, state: ETIR) -> int:
        chunks = 1
        for idx, ax in enumerate(state.compute.axes):
            if ax.is_reduce:
                chunks *= math.ceil(ax.extent / state.tile(idx, state.num_levels))
        return chunks


def pipe_metrics(
    cols: np.ndarray, hw: HardwareSpec
) -> tuple[np.ndarray, ...]:
    """The float64 pipe arithmetic of :meth:`CostModel.evaluate_batch`.

    ``cols`` is a ``(14, n)`` float64 array with rows ``(tpb, bps, nblk,
    padded_flops, inner_work, vthreads, coalesce, dram_q, unique_bytes,
    conflict, smem_q, reduce_chunks, smem_fp, useful_flops)`` — exactly the
    feature tuple ``evaluate_batch`` extracts per state.  Operations run in
    the scalar :meth:`CostModel.evaluate` order, so every element is
    bit-identical to the scalar result.  Returns ``(latency, achieved,
    throughput, sm_occ, mem_busy, l2_hit, dram_bytes, smem_bytes, waves)``.
    Shared by :meth:`CostModel.evaluate_batch` and the SoA walk core
    (:mod:`repro.perf.soa`), which builds the same columns without
    materializing ETIR objects.
    """
    (
        tpb,
        bps,
        nblk,
        padded_flops,
        inner_work,
        vthreads,
        coalesce,
        dram_q,
        unique_bytes,
        conflict,
        smem_q,
        reduce_chunks,
        smem_fp,
        useful_flops,
    ) = cols

    # --- residency & occupancy (mirrors evaluate) ---------------------------
    occupancy = np.minimum(1.0, bps * tpb / hw.max_threads_per_sm)
    concurrent = np.minimum(nblk, bps * hw.num_sms)
    waves = nblk / np.maximum(1.0, bps * hw.num_sms)
    ceil_waves = np.ceil(waves)
    wave_eff = np.where(
        waves > 0, waves / np.maximum(ceil_waves, 1.0), 1.0
    )
    sm_utilization = np.minimum(1.0, concurrent / hw.num_sms) * wave_eff

    # --- compute pipe -------------------------------------------------------
    ilp_eff = inner_work / (inner_work + _ILP_HALF)
    lat_hiding = occupancy / (occupancy + _OCC_HALF)
    warp_eff = tpb / (np.ceil(tpb / hw.warp_size) * hw.warp_size)
    vthread_overhead = 1.0 + 0.01 * (vthreads - 1.0)
    compute_rate = (
        hw.peak_flops * sm_utilization * ilp_eff * lat_hiding * warp_eff
    )
    compute_time = (
        padded_flops * vthread_overhead / np.maximum(compute_rate, 1.0)
    )

    # --- DRAM / L2 pipe -----------------------------------------------------
    l2_requests = dram_q * coalesce
    safe_l2 = np.where(l2_requests > 0, l2_requests, 1.0)
    reuse_fraction = np.maximum(0.0, 1.0 - unique_bytes / safe_l2)
    wave_set = concurrent * smem_fp
    capture = np.minimum(1.0, hw.l2.capacity_bytes / np.maximum(wave_set, 1.0))
    hit = _L2_BASE_HIT + (1.0 - _L2_BASE_HIT) * reuse_fraction * capture
    l2_hit = np.where(
        l2_requests <= 0,
        0.0,
        np.minimum(0.999, hit * np.minimum(1.0, reuse_fraction * 4.0 + 0.2)),
    )
    dram_bytes = np.maximum(
        unique_bytes * np.minimum(1.0, coalesce), l2_requests * (1.0 - l2_hit)
    )
    dram_time = dram_bytes / hw.dram.bandwidth_bytes_per_s
    l2_time = l2_requests / hw.l2.bandwidth_bytes_per_s

    # --- shared-memory pipe -------------------------------------------------
    compute_time = compute_time * (1.0 + _CONFLICT_STALL * (conflict - 1.0))
    smem_bytes = smem_q * conflict
    smem_bw = hw.smem.bandwidth_bytes_per_s * np.minimum(
        1.0, concurrent / hw.num_sms
    )
    smem_time = smem_bytes / np.maximum(smem_bw, 1.0)

    # --- staging latency ----------------------------------------------------
    stage_serial = ceil_waves * reduce_chunks * hw.dram.latency_s
    stage_time = stage_serial / np.maximum(1.0, bps * lat_hiding * 4.0)

    # --- combine ------------------------------------------------------------
    bound = np.maximum(
        np.maximum(compute_time, dram_time), np.maximum(l2_time, smem_time)
    )
    pipe_sum = compute_time + dram_time + l2_time + smem_time
    latency = (
        hw.kernel_launch_overhead_s
        + bound
        + _OVERLAP * (pipe_sum - bound)
        + stage_time
    )
    achieved = useful_flops / latency
    throughput = np.minimum(1.0, achieved / hw.peak_flops)
    sm_occ = occupancy * sm_utilization
    mem_busy = np.minimum(1.0, dram_time / latency)
    return (
        latency,
        achieved,
        throughput,
        sm_occ,
        mem_busy,
        l2_hit,
        dram_bytes,
        smem_bytes,
        waves,
    )
