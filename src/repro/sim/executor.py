"""Functional executor: runs a *tiled* schedule and checks its semantics.

Code generated from a schedule must compute exactly what the declarative
operator defines, regardless of tiling.  :func:`execute_tiled` executes a
ComputeDef the way the lowered kernel would — iterating spatial tiles,
looping reduce chunks, accumulating partial sums per tile — using NumPy
gathers.  Tests compare its output against
:meth:`~repro.ir.compute.ComputeDef.evaluate` to prove that every schedule
the methods emit is semantics-preserving.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Mapping

import numpy as np

from repro.ir.compute import UNARY_FNS, ComputeDef
from repro.ir.etir import ETIR

__all__ = ["execute_tiled", "tile_ranges"]


def tile_ranges(extent: int, tile: int) -> list[tuple[int, int]]:
    """Half-open ranges covering ``[0, extent)`` in chunks of ``tile``.

    The final range is clipped — this is the ceil-division overhang the
    cost model charges as padding waste.
    """
    tile = max(1, min(tile, extent))
    return [(start, min(start + tile, extent)) for start in range(0, extent, tile)]


def execute_tiled(
    state: ETIR,
    inputs: Mapping[str, np.ndarray],
    level: int | None = None,
) -> np.ndarray:
    """Execute ``state.compute`` with the tiling of ``state`` at ``level``.

    ``level`` defaults to the block level (``state.num_levels``); passing 1
    exercises the thread-tile decomposition instead.  Execution order is
    spatial tiles (outer) x reduce chunks (inner), with accumulation into
    the output slab — the dataflow of the generated kernel.
    """
    compute = state.compute
    level = state.num_levels if level is None else level
    tiles = state.tile_sizes(level)
    return _execute_with_tiles(compute, inputs, tiles)


def _execute_with_tiles(
    compute: ComputeDef,
    inputs: Mapping[str, np.ndarray],
    tiles: Mapping[str, int],
) -> np.ndarray:
    spatial = compute.spatial_axes
    reduce_axes = compute.reduce_axes
    out = np.zeros(compute.output.shape, dtype=np.float64)
    spatial_grids = [tile_ranges(ax.extent, tiles.get(ax.name, 1)) for ax in spatial]
    reduce_grids = [
        tile_ranges(ax.extent, tiles.get(ax.name, 1)) for ax in reduce_axes
    ]
    for block in iter_product(*spatial_grids):
        slab = tuple(slice(start, stop) for start, stop in block)
        grids = np.ogrid[slab] if block else []
        env: dict[str, np.ndarray | int] = {
            ax.name: grid for ax, grid in zip(spatial, grids)
        }
        acc = np.zeros([stop - start for start, stop in block], dtype=np.float64)
        for chunk in iter_product(*reduce_grids):
            for rpoint in iter_product(
                *(range(start, stop) for start, stop in chunk)
            ):
                for ax, val in zip(reduce_axes, rpoint):
                    env[ax.name] = val
                term: np.ndarray | float = 1.0
                for accs in compute.inputs:
                    idx = tuple(expr.evaluate(env) for expr in accs.indices)
                    term = term * inputs[accs.tensor.name][idx]
                acc = acc + term
        out[slab] = acc
    out *= compute.scale
    return UNARY_FNS[compute.unary_fn](out)
