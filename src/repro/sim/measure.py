"""Simulated on-device measurement.

Search-based compilers (Ansor) pick schedules by *profiling* candidates on
hardware; construction compilers pick them analytically.  The
:class:`Measurer` reproduces that distinction: it wraps the cost model with
a deterministic, schedule-keyed multiplicative noise (run-to-run jitter),
and charges a per-measurement wall-clock cost so compile-time experiments
(Fig. 8) reflect the orders-of-magnitude gap the paper reports.
"""

from __future__ import annotations

import math
import time

from repro.hardware.spec import HardwareSpec
from repro.ir.etir import ETIR
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.metrics import KernelMetrics
from repro.utils.rng import spawn_rng

__all__ = ["Measurer", "MICROBENCH_SECONDS"]

#: per-measurement cost of a construction method's final micro-benchmark
#: round (candidates are already lowered; only launch + timing remains).
MICROBENCH_SECONDS = 0.06


class Measurer:
    """Profiling proxy: noisy, slow access to the cost model.

    Args:
        hardware: the device to "measure" on.
        seed: root seed for the jitter streams.
        noise_sigma: lognormal sigma of run-to-run latency jitter
            (~1.5% by default, typical of real kernel timing).
        seconds_per_measurement: simulated wall-clock cost charged per
            measurement; also *slept* (scaled by ``time_scale``) so that
            wall-clock compile-time experiments show the real gap without
            taking hours.  The default (0.35 s) prices a *search-style*
            measurement: fresh code generation, compilation, transfer, and
            timing per candidate.  Construction methods micro-benchmark a
            handful of already-lowered candidates, priced at
            :data:`MICROBENCH_SECONDS`.
        time_scale: fraction of the simulated measurement cost actually
            slept (0 disables sleeping; experiments use a small value).
        tracer: optional event sink; every measurement emits a ``measure``
            event with the resulting :class:`KernelMetrics` fields.
        memo: shared :class:`~repro.perf.memo.MetricsMemo` supplying the
            noise-free truth; defaults to the process-wide memo, so a
            state priced during construction is never re-evaluated here.
    """

    def __init__(
        self,
        hardware: HardwareSpec,
        seed: int = 0,
        noise_sigma: float = 0.015,
        seconds_per_measurement: float = 0.35,
        time_scale: float = 0.0,
        tracer: Tracer | None = None,
        memo=None,
    ) -> None:
        from repro.perf.memo import get_memo

        self.hw = hardware
        self._memo = memo if memo is not None else get_memo()
        self.model = self._memo.model(hardware)
        self.seed = seed
        self.noise_sigma = noise_sigma
        self.seconds_per_measurement = seconds_per_measurement
        self.time_scale = time_scale
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.num_measurements = 0

    @property
    def simulated_seconds(self) -> float:
        """Total simulated profiling wall-clock charged so far."""
        return self.num_measurements * self.seconds_per_measurement

    def measure(self, state: ETIR) -> KernelMetrics:
        """Profile one schedule: cost-model truth plus run-to-run jitter."""
        self.num_measurements += 1
        if self.time_scale > 0.0:
            time.sleep(self.seconds_per_measurement * self.time_scale)
        truth = self._memo.evaluate(self.hw, state)
        if not truth.feasible:
            if self.tracer.enabled:
                self._trace(state, truth)
            return truth
        rng = spawn_rng(self.seed, "measure", *map(str, state.key()))
        jitter = math.exp(rng.normal(0.0, self.noise_sigma))
        latency = truth.latency_s * jitter
        flops = (
            state.program_flops() if state.fused else state.compute.total_flops
        )
        metrics = KernelMetrics(
            latency_s=latency,
            achieved_flops=flops / latency,
            compute_throughput=min(
                1.0, flops / latency / self.hw.peak_flops
            ),
            sm_occupancy=truth.sm_occupancy,
            mem_busy=truth.mem_busy,
            l2_hit_rate=truth.l2_hit_rate,
            dram_bytes=truth.dram_bytes,
            smem_bytes=truth.smem_bytes,
            bank_conflict_factor=truth.bank_conflict_factor,
            blocks_per_sm=truth.blocks_per_sm,
            waves=truth.waves,
        )
        if self.tracer.enabled:
            self._trace(state, metrics)
        return metrics

    def _trace(self, state: ETIR, metrics: KernelMetrics) -> None:
        self.tracer.emit(
            "measure",
            {
                "compute": state.compute.name,
                "schedule": state.describe(),
                "feasible": metrics.feasible,
                "latency_s": metrics.latency_s,
                "achieved_flops": metrics.achieved_flops,
                "l2_hit_rate": metrics.l2_hit_rate,
                "sm_occupancy": metrics.sm_occupancy,
                "simulated_cost_s": self.seconds_per_measurement,
                "num_measurements": self.num_measurements,
            },
        )

    def latency(self, state: ETIR) -> float:
        return self.measure(state).latency_s
