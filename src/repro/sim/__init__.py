"""Simulated GPU substrate.

The paper measures schedules on real GPUs; this reproduction measures them
on a deterministic analytical performance model
(:mod:`repro.sim.costmodel`).  The model exposes the same phenomena the
paper's method reasons about — memory traffic vs. footprint, per-level
latency/bandwidth, shared-memory bank conflicts, occupancy and wave
quantization — so the relative ordering of scheduling methods (the content
of every reproduced figure) is produced by the same mechanics.

:mod:`repro.sim.measure` wraps the cost model with a deterministic
measurement-noise model, playing the role of on-device profiling for
search-based methods.  :mod:`repro.sim.executor` is the NumPy correctness
oracle: it executes a tiled schedule functionally and checks it against the
operator's declarative definition.
"""

from repro.sim.metrics import KernelMetrics
from repro.sim.costmodel import CostModel, INFEASIBLE
from repro.sim.measure import Measurer
from repro.sim.executor import execute_tiled

__all__ = ["KernelMetrics", "CostModel", "INFEASIBLE", "Measurer", "execute_tiled"]
