"""Kernel performance metrics reported by the simulator.

The fields mirror the hardware counters the paper reports in Tables V/VI:
achieved FLOPS, compute throughput, SM occupancy, memory (DRAM) busy
fraction, and L2 hit rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["KernelMetrics"]


@dataclass(frozen=True)
class KernelMetrics:
    """Performance estimate of one kernel launch on one device."""

    latency_s: float
    #: useful (unpadded) FLOPs per second achieved.
    achieved_flops: float
    #: achieved_flops / device peak, in [0, 1].
    compute_throughput: float
    #: fraction of SM thread slots occupied by resident warps, in [0, 1].
    sm_occupancy: float
    #: fraction of the runtime the DRAM interface is busy, in [0, 1].
    mem_busy: float
    #: fraction of L2 requests served without going to DRAM, in [0, 1].
    l2_hit_rate: float
    dram_bytes: float = 0.0
    smem_bytes: float = 0.0
    #: shared-memory serialization factor (1.0 = conflict-free).
    bank_conflict_factor: float = 1.0
    #: resident thread blocks per SM.
    blocks_per_sm: int = 0
    #: grid waves needed to drain all blocks.
    waves: float = 0.0

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.latency_s)

    def summary(self) -> str:
        if not self.feasible:
            return "<infeasible>"
        return (
            f"{self.latency_s * 1e3:.3f} ms, "
            f"{self.achieved_flops / 1e12:.2f} TFLOPS "
            f"(compute {self.compute_throughput:.1%}, occ {self.sm_occupancy:.1%}, "
            f"membusy {self.mem_busy:.1%}, L2 {self.l2_hit_rate:.1%})"
        )
