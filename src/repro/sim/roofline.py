"""Roofline analysis of scheduled tensor programs.

A diagnostic layer over the cost model: classifies a schedule as compute-,
DRAM-, L2-, or shared-memory-bound, reports each pipe's time share, and
computes headroom against the device's roofline (the min of peak compute
and arithmetic-intensity-scaled bandwidth).  Used by the reporting
examples and handy when debugging why a schedule underperforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.spec import HardwareSpec
from repro.ir.etir import ETIR
from repro.sim.costmodel import CostModel

__all__ = ["RooflineReport", "analyze_roofline", "roofline_limit_flops"]


def roofline_limit_flops(
    hw: HardwareSpec, arithmetic_intensity: float
) -> float:
    """The classic roofline: ``min(peak, AI * DRAM bandwidth)`` in FLOP/s."""
    if arithmetic_intensity <= 0:
        raise ValueError("arithmetic intensity must be positive")
    return min(
        hw.peak_flops, arithmetic_intensity * hw.dram.bandwidth_bytes_per_s
    )


@dataclass
class RooflineReport:
    """Where one schedule sits against the device roofline."""

    bound: str  # "compute" | "dram" | "l2" | "smem"
    pipe_times: dict[str, float]
    achieved_flops: float
    roofline_flops: float
    #: achieved / roofline, in (0, 1]; how much of the attainable ceiling
    #: this schedule reaches.
    efficiency: float
    arithmetic_intensity: float

    def summary(self) -> str:
        shares = ", ".join(
            f"{name} {t * 1e6:.0f}us" for name, t in self.pipe_times.items()
        )
        return (
            f"{self.bound}-bound; pipes: {shares}; "
            f"{self.achieved_flops / 1e12:.2f}T of "
            f"{self.roofline_flops / 1e12:.2f}T attainable "
            f"({self.efficiency:.0%})"
        )


def analyze_roofline(state: ETIR, hw: HardwareSpec) -> RooflineReport:
    """Classify ``state`` against the device roofline.

    Raises ``ValueError`` for infeasible schedules — there is no roofline
    position for a kernel that cannot launch.
    """
    model = CostModel(hw)
    metrics = model.evaluate(state)
    if not metrics.feasible:
        raise ValueError("cannot analyze an infeasible schedule")
    compute = state.compute

    # Recompute the individual pipe times the way the model combines them.
    coalesce = model._coalescing(state)
    l2_requests = state.dram_traffic_bytes() * coalesce
    pipe_times = {
        "compute": compute.total_flops
        / max(1.0, hw.peak_flops * max(metrics.compute_throughput, 1e-9))
        if metrics.compute_throughput > 0
        else math.inf,
        "dram": metrics.dram_bytes / hw.dram.bandwidth_bytes_per_s,
        "l2": l2_requests / hw.l2.bandwidth_bytes_per_s,
        "smem": metrics.smem_bytes / hw.smem.bandwidth_bytes_per_s,
    }
    # The compute entry above is circular (it equals latency); use the
    # padded-FLOPs estimate instead for the share comparison.
    pipe_times["compute"] = compute.total_flops / hw.peak_flops
    bound = max(pipe_times, key=pipe_times.get)

    ai = compute.arithmetic_intensity()
    roofline = roofline_limit_flops(hw, ai)
    return RooflineReport(
        bound=bound,
        pipe_times=pipe_times,
        achieved_flops=metrics.achieved_flops,
        roofline_flops=roofline,
        efficiency=min(1.0, metrics.achieved_flops / roofline),
        arithmetic_intensity=ai,
    )
