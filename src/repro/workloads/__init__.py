"""Benchmark workloads: the paper's operator configuration tables."""

from repro.workloads.table4 import (
    TABLE4_CONFIGS,
    OperatorConfig,
    build,
    by_label,
    labels,
)
from repro.workloads.unbalanced import UNBALANCED_GEMMS
from repro.workloads.ablation import ABLATION_CONFIGS

__all__ = [
    "TABLE4_CONFIGS",
    "OperatorConfig",
    "build",
    "by_label",
    "labels",
    "UNBALANCED_GEMMS",
    "ABLATION_CONFIGS",
]
