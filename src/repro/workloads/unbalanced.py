"""The unbalanced-GEMM set of the paper's Table V.

Shapes where one dimension is far smaller than the others, "quite common,
especially in LLM" — the regime where Gensor's backtracking beats both
template libraries and fixed-budget search.
"""

from __future__ import annotations

from repro.ir import operators as ops
from repro.ir.compute import ComputeDef

__all__ = ["UNBALANCED_GEMMS", "build_unbalanced"]

#: (label, (M, K, N)) exactly as printed in Table V.
UNBALANCED_GEMMS: tuple[tuple[str, tuple[int, int, int]], ...] = (
    ("[65536,4,1024]", (65536, 4, 1024)),
    ("[32768,64,2048]", (32768, 64, 2048)),
    ("[16384,32,1024]", (16384, 32, 1024)),
)


def build_unbalanced() -> list[tuple[str, ComputeDef]]:
    return [
        (label, ops.matmul(m, k, n, name=f"gemm_{m}x{k}x{n}"))
        for label, (m, k, n) in UNBALANCED_GEMMS
    ]
