"""The ablation operator set of the paper's Table VI.

One representative per family: Conv2d C1, GEMM G1 (the M1 shape), GEMV V1,
and AvgPooling2d P1, measured under Roller, Gensor without vThreads, and
full Gensor.
"""

from __future__ import annotations

from repro.ir.compute import ComputeDef
from repro.workloads.table4 import build

__all__ = ["ABLATION_CONFIGS", "build_ablation"]

#: Table VI column headers -> Table IV labels.
ABLATION_CONFIGS: tuple[tuple[str, str], ...] = (
    ("Conv2d (C1)", "C1"),
    ("GEMM (G1)", "M1"),
    ("GEMV (V1)", "V1"),
    ("AvgPooling2d (P1)", "P1"),
)


def build_ablation() -> list[tuple[str, ComputeDef]]:
    return [(title, build(label)) for title, label in ABLATION_CONFIGS]
