"""The 32-operator benchmark suite (paper Table IV).

The paper evaluates 32 operator configurations across four families —
Conv2d (C1–C8), GEMM (M1–M8), GEMV (V1–V8), and AvgPooling2d (P1–P8) — and
publishes a representative subset (three per family).  The published
configurations are reproduced verbatim below; the remaining five per family
are filled in the same spirit: common DNN shapes plus the unbalanced ones
the paper emphasizes (one dimension much smaller/larger than the others).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ir import operators as ops
from repro.ir.compute import ComputeDef

__all__ = ["OperatorConfig", "TABLE4_CONFIGS", "build", "by_label", "labels"]


@dataclass(frozen=True)
class OperatorConfig:
    """One labeled benchmark operator."""

    label: str
    family: str
    description: str
    factory: Callable[[], ComputeDef]
    #: True for the configurations printed in the paper's Table IV.
    published: bool = False

    def build(self) -> ComputeDef:
        return self.factory()


def _conv(label, n, c, h, w, f, r, s, stride, published=False):
    return OperatorConfig(
        label,
        "conv2d",
        f"I=[{n},{c},{h},{w}], K=[{f},{c},{r},{s}], S={stride}",
        lambda: ops.conv2d(n, c, h, w, f, r, s, stride, name=label),
        published,
    )


def _gemm(label, m, k, n, published=False):
    return OperatorConfig(
        label,
        "gemm",
        f"MKN=[{m},{k},{n}]",
        lambda: ops.matmul(m, k, n, name=label),
        published,
    )


def _gemv(label, m, n, published=False):
    return OperatorConfig(
        label,
        "gemv",
        f"MN=[{m},{n}]",
        lambda: ops.gemv(m, n, name=label),
        published,
    )


def _pool(label, n, c, h, w, f, stride, published=False):
    return OperatorConfig(
        label,
        "avgpool2d",
        f"I=[{n},{c},{h},{w}], F={f}, S={stride}",
        lambda: ops.avgpool2d(n, c, h, w, f, stride, name=label),
        published,
    )


TABLE4_CONFIGS: tuple[OperatorConfig, ...] = (
    # -- Conv2d (C1-C3 published) ------------------------------------------------
    _conv("C1", 128, 256, 30, 30, 256, 3, 3, 2, published=True),
    _conv("C2", 128, 128, 28, 28, 128, 3, 3, 1, published=True),
    _conv("C3", 128, 128, 58, 58, 128, 3, 3, 2, published=True),
    _conv("C4", 128, 64, 58, 58, 64, 3, 3, 1),
    _conv("C5", 1, 512, 9, 9, 2048, 3, 3, 1),  # tiny maps, fat channels
    _conv("C6", 128, 3, 230, 230, 64, 7, 7, 2),  # ResNet stem
    _conv("C7", 16, 960, 9, 9, 320, 1, 1, 1),  # MobileNet projection
    _conv("C8", 64, 256, 16, 16, 256, 3, 3, 1),
    # -- GEMM (M1-M3 published) ----------------------------------------------------
    _gemm("M1", 8192, 8192, 8192, published=True),
    _gemm("M2", 65536, 4, 1024, published=True),
    _gemm("M3", 65536, 1024, 4096, published=True),
    _gemm("M4", 4096, 4096, 4096),
    _gemm("M5", 1024, 16384, 256),  # reduction-heavy
    _gemm("M6", 128, 768, 50257),  # LM head: tall-thin output
    _gemm("M7", 32768, 64, 2048),  # unbalanced (Table V shape)
    _gemm("M8", 512, 512, 512),
    # -- GEMV (V1-V3 published) -------------------------------------------------------
    _gemv("V1", 16384, 16384, published=True),
    _gemv("V2", 16384, 8192, published=True),
    _gemv("V3", 16384, 1000, published=True),
    _gemv("V4", 4096, 4096),
    _gemv("V5", 1024, 65536),  # reduction-dominated
    _gemv("V6", 65536, 512),
    _gemv("V7", 2048, 11008),  # LLaMA-style FFN row
    _gemv("V8", 50257, 768),  # LM-head GEMV
    # -- AvgPooling2d (P1-P3 published) ---------------------------------------------------
    _pool("P1", 16, 48, 48, 48, 2, 2, published=True),
    _pool("P2", 128, 168, 83, 83, 2, 2, published=True),
    _pool("P3", 128, 617, 21, 21, 3, 2, published=True),
    _pool("P4", 128, 64, 112, 112, 2, 2),
    _pool("P5", 128, 2048, 7, 7, 7, 7),  # global average pool
    _pool("P6", 1, 1280, 14, 14, 2, 2),
    _pool("P7", 64, 256, 56, 56, 3, 2),
    _pool("P8", 32, 512, 28, 28, 2, 2),
)


def labels(family: str | None = None) -> list[str]:
    """All config labels, optionally restricted to one operator family."""
    return [
        c.label
        for c in TABLE4_CONFIGS
        if family is None or c.family == family
    ]


def by_label(label: str) -> OperatorConfig:
    for c in TABLE4_CONFIGS:
        if c.label == label:
            return c
    raise KeyError(f"no Table IV config labeled {label!r}")


def build(label: str) -> ComputeDef:
    """Instantiate the operator for one label."""
    return by_label(label).build()
