"""Command-line interface.

Subcommands::

    python -m repro compile --op gemm --shape 4096x4096x4096 --method gensor
    python -m repro compile-graph --model bert_small --batch 1
    python -m repro experiment fig06 [--full]
    python -m repro serve-bench --model bert --requests 200 --workers 8
    python -m repro fleet-bench --processes 4 [--quick]
    python -m repro bench walk [--quick] [--out BENCH_walk.json]
    python -m repro trace-report walk.jsonl [--chrome timeline.json]
    python -m repro devices

``compile`` optimizes a single operator with any method and prints the
winning schedule, predicted metrics, generated kernel (with ``--emit``),
and compile cost; ``--trace out.jsonl`` records the full Markov walk
(per-step actions, probabilities, temperature) for gensor/dynamic.
``compile-graph`` compiles a whole model as one program — fusion groups
planned over the graph, each group's walk exploring fuse/unfuse alongside
tiling — and prints the program's groups plus its latency against the
per-op compilation baseline.
``experiment`` regenerates one of the paper's tables/figures by name.
``serve-bench`` replays a synthetic dynamic-shape request trace through
the concurrent compile service, prints its stats table, and writes
``BENCH_serve.json``.  ``fleet-bench`` replays the same traces through
the sharded multi-process fleet at increasing process counts and writes
``BENCH_fleet.json`` (throughput scaling, schedule parity vs the
single-process service, autoscale demo).
``bench walk`` measures construction-walk throughput (batched vs scalar
pricing, memo hit rate, multi-walker scaling) and writes
``BENCH_walk.json`` — the perf trajectory every PR is compared against.
``trace-report`` summarizes a recorded trace (action mix, acceptance
rate, convergence step) and can export a Chrome ``trace_event`` timeline.
``devices`` lists the simulated GPUs.
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.baselines import Ansor, AnsorConfig, PyTorchEager, Roller, VendorLibrary
from repro.core import DynamicCompileResult, DynamicGensor, Gensor, GensorConfig
from repro.hardware import orin_nano, rtx4090
from repro.ir import operators as ops

__all__ = ["main", "build_operator"]

_DEVICES = {"rtx4090": rtx4090, "orin_nano": orin_nano}

_EXPERIMENTS = {
    "fig01": "repro.experiments.fig01_tree_vs_graph",
    "fig06": "repro.experiments.fig06_ops_rtx4090",
    "fig07": "repro.experiments.fig07_ops_orin",
    "fig08": "repro.experiments.fig08_compile_time",
    "fig09": "repro.experiments.fig09_end2end",
    "fig10": "repro.experiments.fig10_tradeoff",
    "fig11": "repro.experiments.fig11_dynamic_bert",
    "fig12": "repro.experiments.fig12_dynamic_timeline",
    "table05": "repro.experiments.table05_breakdown",
    "table06": "repro.experiments.table06_ablation",
    "memory": "repro.experiments.memory_overhead",
    "convergence": "repro.experiments.convergence_analysis",
    "serving": "repro.experiments.serving_throughput",
    "resilience": "repro.experiments.serving_resilience",
    "walk": "repro.experiments.walk_diagnostics",
}


def build_operator(op: str, shape: str):
    """Construct an operator from CLI arguments.

    Shapes: ``gemm MxKxN``, ``gemv MxN``, ``bmm BxMxKxN``,
    ``conv2d NxCxHxWxFxRxSxstride``, ``avgpool2d NxCxHxWxFxstride``,
    ``elementwise D0xD1x...``.
    """
    dims = [int(d) for d in shape.lower().split("x")]
    if op == "gemm":
        if len(dims) != 3:
            raise ValueError("gemm expects MxKxN")
        return ops.matmul(*dims, name="cli_gemm")
    if op == "gemv":
        if len(dims) != 2:
            raise ValueError("gemv expects MxN")
        return ops.gemv(*dims, name="cli_gemv")
    if op == "bmm":
        if len(dims) != 4:
            raise ValueError("bmm expects BxMxKxN")
        return ops.batched_matmul(*dims, name="cli_bmm")
    if op == "conv2d":
        if len(dims) != 8:
            raise ValueError("conv2d expects NxCxHxWxFxRxSxstride")
        n, c, h, w, f, r, s, stride = dims
        return ops.conv2d(n, c, h, w, f, r, s, stride, name="cli_conv2d")
    if op == "avgpool2d":
        if len(dims) != 6:
            raise ValueError("avgpool2d expects NxCxHxWxFxstride")
        n, c, h, w, f, stride = dims
        return ops.avgpool2d(n, c, h, w, f, stride, name="cli_pool")
    if op == "elementwise":
        return ops.elementwise(tuple(dims), "relu", name="cli_elementwise")
    raise ValueError(f"unknown op {op!r}")


def _make_method(name: str, hw, trials: int):
    if name == "gensor":
        return Gensor(hw)
    if name == "dynamic":
        return DynamicGensor(hw)
    if name == "roller":
        return Roller(hw)
    if name == "ansor":
        return Ansor(hw, AnsorConfig(num_trials=trials))
    if name == "cublas":
        return VendorLibrary(hw)
    if name == "pytorch":
        return PyTorchEager(hw)
    raise ValueError(f"unknown method {name!r}")


def _cmd_compile(args: argparse.Namespace) -> int:
    hw = _DEVICES[args.device]()
    compute = build_operator(args.op, args.shape)
    method = _make_method(args.method, hw, args.trials)
    tracer = None
    if args.trace:
        if args.method not in ("gensor", "dynamic"):
            print(
                f"--trace records the construction walk and needs "
                f"--method gensor or dynamic, not {args.method!r}",
                file=sys.stderr,
            )
            return 2
        from repro.obs import JsonlTracer
        from repro.sim.measure import MICROBENCH_SECONDS, Measurer

        tracer = JsonlTracer(args.trace)
        measurer = Measurer(
            hw,
            seed=method.config.seed,
            noise_sigma=0.0,
            seconds_per_measurement=MICROBENCH_SECONDS,
            tracer=tracer,
        )
        result = method.compile(compute, measurer, tracer=tracer)
        tracer.close()
    else:
        result = method.compile(compute)
    source = None
    if isinstance(result, DynamicCompileResult):
        source = result.source
        result = result.result
    print("operator:  ", compute.render())
    print("method:    ", args.method, "on", hw.name)
    if source is not None:
        print("served:    ", source, "(hit=cache, warm=neighbor, cold=full)")
    print("schedule:  ", result.best.describe())
    print("predicted: ", result.best_metrics.summary())
    print(f"compile:    {result.compile_seconds:.2f}s "
          f"({result.simulated_measure_s:.2f}s simulated profiling)")
    if tracer is not None:
        print(f"trace:      {tracer.num_events} events -> {tracer.path} "
              f"(summarize with: repro trace-report {tracer.path})")
    if args.emit:
        from repro.codegen import emit_cuda, lower_etir

        print()
        print(emit_cuda(lower_etir(result.best), compute))
    return 0


_MODELS = ("bert_small", "resnet50", "mobilenetv2", "gpt2")


def _build_model(name: str, batch: int, seq: int):
    from repro.models import bert_small, gpt2, mobilenet_v2, resnet50

    if name == "bert_small":
        return bert_small(batch=batch, seq=seq)
    if name == "resnet50":
        return resnet50(batch=batch)
    if name == "mobilenetv2":
        return mobilenet_v2(batch=batch)
    if name == "gpt2":
        return gpt2(batch=batch, seq=seq)
    raise ValueError(f"unknown model {name!r}")


def _cmd_compile_graph(args: argparse.Namespace) -> int:
    from repro.models.runner import compile_and_time

    hw = _DEVICES[args.device]()
    graph = _build_model(args.model, args.batch, args.seq)
    cfg = (
        GensorConfig(seed=args.seed)
        if args.full
        else GensorConfig(
            seed=args.seed, num_chains=3, top_k=6, polish_steps=60
        )
    )
    fusion = not args.no_fusion
    per_op = compile_and_time(graph, Gensor(hw, cfg), "gensor")
    prog_run = compile_and_time(
        graph, Gensor(hw, cfg), "gensor", program=True, fusion=fusion
    )
    program = prog_run.program
    print(f"model:     {graph.name} (batch {graph.batch}) on {hw.name}")
    print(f"fusion:    {'on' if fusion else 'off'}")
    print("groups:")
    for g in program.groups:
        chain = ""
        if g.epilogue_names:
            fused_names = g.epilogue_names[:g.fused]
            pending = g.epilogue_names[g.fused:]
            chain = " + " + " + ".join(fused_names) if fused_names else ""
            if pending:
                chain += f"  (unfused: {', '.join(pending)})"
        print(f"  {g.anchor_label}{chain}  x{g.count}  "
              f"{g.latency_s * 1e6:.2f}us")
    print(f"program:    {program.latency_s * 1e3:.4f} ms/inference, "
          f"{program.num_kernels} kernel launches "
          f"({program.num_fused_ops} fused away)")
    print(f"per-op sum: {per_op.latency_s * 1e3:.4f} ms/inference")
    win = 0.0
    if per_op.latency_s > 0:
        win = 1.0 - program.latency_s / per_op.latency_s
        print(f"fusion win: {win:+.1%} vs per-op compilation")
    print(f"compile:    {prog_run.compile_seconds:.2f}s program, "
          f"{per_op.compile_seconds:.2f}s per-op")
    if args.min_win is not None and win < args.min_win:
        print(
            f"FAIL: fusion win {win:+.1%} below the required "
            f"{args.min_win:+.1%} gate",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name == "all":
        from repro.experiments.report import generate_report

        report = generate_report(quick=not args.full, echo=True)
        print(f"regenerated {len(report.sections)} result sets in "
              f"{report.total_seconds:.0f}s")
        return 0
    module_name = _EXPERIMENTS.get(args.name)
    if module_name is None:
        print(f"unknown experiment {args.name!r}; choices: "
              f"{', '.join(sorted(_EXPERIMENTS))}", file=sys.stderr)
        return 2
    module = importlib.import_module(module_name)
    result = module.run(quick=not args.full)
    print(result.render())
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import run_serve_bench

    try:
        report = run_serve_bench(
            model=args.model,
            num_requests=args.requests,
            workers=args.workers,
            device_name=args.device,
            deadline_ms=args.deadline_ms,
            seed=args.seed,
            window=args.window,
            time_scale=args.time_scale,
            fault_plan=args.faults,
            fail_fast=args.fail_fast,
        )
    except (ValueError, OSError) as exc:
        print(f"serve-bench: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:  # --fail-fast tripped
        print(f"serve-bench: aborted: {exc}", file=sys.stderr)
        return 1
    print(report.table)
    print()
    print(f"replayed {report.requests} requests "
          f"({report.unique_shapes} unique shapes) in {report.wall_s:.2f}s "
          f"-> {report.requests_per_s:.1f} req/s, {report.failed} failed")
    if args.out:
        from repro.perf.bench import write_bench

        print(f"wrote {write_bench(report.to_json(), args.out)}")
    if args.faults is not None:
        res = report.resilience
        print()
        print(f"chaos: {res['faults_injected']} faults injected, "
              f"{res['retries']} retries, "
              f"{res['breaker_opens']} breaker opens, "
              f"{sum(res['worker_respawns'].values())} worker respawns, "
              f"{len(res['quarantined'])} cache quarantines")
        print(f"availability: {report.availability:.1%} "
              f"(degraded tiers count as available)")
    return 0 if report.failed == 0 else 1


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    from repro.fleet.bench import run_fleet_bench
    from repro.perf.bench import write_bench

    process_counts = None
    if args.processes is not None:
        counts = [1]
        while counts[-1] * 2 <= args.processes:
            counts.append(counts[-1] * 2)
        if counts[-1] != args.processes:
            counts.append(args.processes)
        # the scaling gate compares 4v1, so keep 4 in mid-size sweeps
        if 4 not in counts and args.processes > 4:
            counts.insert(-1, 4)
        process_counts = tuple(counts)
    report = run_fleet_bench(
        model=args.model,
        num_requests=args.requests,
        process_counts=process_counts,
        workers_per_shard=args.workers_per_shard,
        device_name=args.device,
        seed=args.seed,
        window=args.window,
        time_scale=args.time_scale,
        quick=args.quick,
        routing=args.routing,
        check_parity=not args.skip_parity,
    )
    print(report.render())
    if args.out:
        print(f"wrote {write_bench(report.to_json(), args.out)}")
    failed = []
    if report.parity and report.parity["mismatches"] > 0:
        failed.append(
            f"{report.parity['mismatches']} schedule parity mismatches "
            f"between the {report.parity['processes']}-process fleet and "
            f"the single-process service"
        )
    if args.min_process_scaling is not None:
        ratio = report.scaling.get("4v1")
        if ratio is None:
            failed.append("no 4-process run to gate on")
        elif ratio < args.min_process_scaling:
            failed.append(
                f"process scaling {ratio:.2f}x < required "
                f"{args.min_process_scaling}x"
            )
    for msg in failed:
        print(f"fleet-bench: FAIL: {msg}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import run_walk_bench, write_bench

    hw = _DEVICES[args.device]()
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 1)
    payload = run_walk_bench(hw, seed=args.seed, quick=args.quick, repeats=repeats)
    out = write_bench(payload, args.out)
    speedup = payload["speedup_states_per_sec"]
    soa_speedup = payload["soa_speedup_states_per_sec"]
    scaling = payload["walker_scaling"]["scaling"]
    memo = payload["memo"]
    print(f"walk bench on {payload['device']} "
          f"({'quick, ' if args.quick else ''}{len(payload['suite'])} ops)")
    print(f"states/sec: scalar {payload['scalar']['states_per_sec']:.0f}, "
          f"batched {payload['batched']['states_per_sec']:.0f} "
          f"({speedup:.2f}x), "
          f"soa {payload['soa']['states_per_sec']:.0f} "
          f"({soa_speedup:.2f}x)")
    print(f"walker scaling ({'v'.join(map(str, payload['walker_scaling']['counts'][::-1]))}): "
          f"{scaling:.2f}x")
    print(f"memo: {memo['hits']} hits / {memo['misses']} misses "
          f"({memo['hit_rate']:.1%} hit rate), size {memo['size']}")
    micro = payload["micro"]
    print(f"evaluate: {micro['evaluate_scalar_us']:.1f}us scalar, "
          f"{micro['evaluate_batch_us_per_state']:.1f}us/state batched "
          f"over {micro['sampled_states']} states")
    print(f"wrote {out}")
    failed = []
    if args.min_speedup is not None and speedup < args.min_speedup:
        failed.append(
            f"batched speedup {speedup:.2f}x < required {args.min_speedup}x"
        )
    if args.min_soa_speedup is not None and soa_speedup < args.min_soa_speedup:
        failed.append(
            f"soa speedup {soa_speedup:.2f}x < required {args.min_soa_speedup}x"
        )
    if args.min_walker_scaling is not None and scaling < args.min_walker_scaling:
        failed.append(
            f"walker scaling {scaling:.2f}x < required {args.min_walker_scaling}x"
        )
    for msg in failed:
        print(f"bench: FAIL: {msg}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs import trace_report, write_chrome_trace

    try:
        print(trace_report(args.trace))
    except (OSError, ValueError) as exc:
        print(f"trace-report: {exc}", file=sys.stderr)
        return 2
    if args.chrome:
        n = write_chrome_trace(args.trace, args.chrome)
        print()
        print(f"chrome trace: {n} events -> {args.chrome} "
              f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import os.path
    from pathlib import Path

    from repro.analysis import run_lint

    # Anchor spans at the directory containing the ``repro`` package so
    # paths (and baseline fingerprints) read ``repro/core/cache.py``
    # regardless of checkout location.  Explicit paths outside the
    # package (fixture trees) anchor at their own common ancestor,
    # hopping above any ``repro`` directory so zones still resolve.
    if args.paths:
        paths = [Path(p).resolve() for p in args.paths]
        common = Path(os.path.commonpath([str(p) for p in paths]))
        if common.is_file():
            common = common.parent
        root = common
        for ancestor in (common, *common.parents):
            if ancestor.name == "repro":
                root = ancestor.parent
                break
    else:
        root = Path(__file__).resolve().parents[1]
        paths = [root / "repro"]
    baseline = args.baseline
    if baseline is None:
        candidate = root.parent / "LINT_BASELINE.json"
        baseline = candidate if candidate.exists() or args.update_baseline \
            else None
    report = run_lint(
        paths,
        root,
        baseline=baseline,
        update_baseline=args.update_baseline,
    )
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    if args.update_baseline:
        print(f"baseline written: {baseline}", file=sys.stderr)
        return 0
    return report.exit_code


def _cmd_devices(_args: argparse.Namespace) -> int:
    for name, factory in _DEVICES.items():
        hw = factory()
        print(
            f"{name}: {hw.num_sms} SMs @ {hw.clock_hz / 1e9:.2f} GHz, "
            f"{hw.peak_flops / 1e12:.1f} TFLOPS peak, "
            f"{hw.dram.bandwidth_bytes_per_s / 1e9:.0f} GB/s DRAM"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Gensor reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="optimize one operator")
    p_compile.add_argument("--op", required=True,
                           choices=["gemm", "gemv", "bmm", "conv2d",
                                    "avgpool2d", "elementwise"])
    p_compile.add_argument("--shape", required=True,
                           help="x-separated dims, e.g. 4096x4096x4096")
    p_compile.add_argument("--method", default="gensor",
                           choices=["gensor", "dynamic", "roller", "ansor",
                                    "cublas", "pytorch"])
    p_compile.add_argument("--device", default="rtx4090", choices=list(_DEVICES))
    p_compile.add_argument("--trials", type=int, default=500,
                           help="Ansor measurement budget")
    p_compile.add_argument("--emit", action="store_true",
                           help="print the generated kernel source")
    p_compile.add_argument("--trace", default=None, metavar="OUT.jsonl",
                           help="record the construction walk as JSONL "
                                "events (gensor/dynamic only)")
    p_compile.set_defaults(fn=_cmd_compile)

    p_graph = sub.add_parser(
        "compile-graph",
        help="compile a whole model as one fusion-aware program",
    )
    p_graph.add_argument("--model", default="bert_small", choices=_MODELS)
    p_graph.add_argument("--batch", type=int, default=1)
    p_graph.add_argument("--seq", type=int, default=128,
                         help="sequence length (bert_small/gpt2 only)")
    p_graph.add_argument("--device", default="rtx4090", choices=list(_DEVICES))
    p_graph.add_argument("--seed", type=int, default=0)
    p_graph.add_argument("--no-fusion", action="store_true",
                         help="plan one group per op (the per-op baseline "
                              "expressed in program form)")
    p_graph.add_argument("--full", action="store_true",
                         help="paper-scale construction budget")
    p_graph.add_argument("--min-win", type=float, default=None,
                         help="exit nonzero unless the program beats the "
                              "per-op latency sum by this fraction "
                              "(CI gate, e.g. 0.0 or 0.10)")
    p_graph.set_defaults(fn=_cmd_compile_graph)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "name", help=f"'all' or one of: {', '.join(sorted(_EXPERIMENTS))}"
    )
    p_exp.add_argument("--full", action="store_true",
                       help="paper-scale search budgets")
    p_exp.set_defaults(fn=_cmd_experiment)

    p_serve = sub.add_parser(
        "serve-bench",
        help="replay a dynamic-shape trace through the compile service",
    )
    p_serve.add_argument("--model", default="bert", choices=["bert", "gpt2"])
    p_serve.add_argument("--requests", type=int, default=200)
    p_serve.add_argument("--workers", type=int, default=8)
    p_serve.add_argument("--device", default="rtx4090", choices=list(_DEVICES))
    p_serve.add_argument("--deadline-ms", type=float, default=None,
                         help="per-request deadline; tight values trigger "
                              "degraded serving tiers")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--window", type=int, default=64,
                         help="closed-loop client concurrency")
    p_serve.add_argument("--time-scale", type=float, default=1.0,
                         help="fraction of simulated profiling cost slept "
                              "in real time (0 = CPU-only)")
    p_serve.add_argument("--faults", default=None, metavar="PLAN.json",
                         help="chaos mode: inject faults from a FaultPlan "
                              "JSON file (see DESIGN.md 'Resilience')")
    p_serve.add_argument("--fail-fast", action=argparse.BooleanOptionalAction,
                         default=False,
                         help="abort the replay on the first error response "
                              "instead of completing the trace")
    p_serve.add_argument("--out", default="BENCH_serve.json",
                         metavar="OUT.json",
                         help="artifact path ('' disables the write)")
    p_serve.set_defaults(fn=_cmd_serve_bench)

    p_fleet = sub.add_parser(
        "fleet-bench",
        help="replay a trace through the sharded multi-process fleet "
             "-> BENCH_fleet.json",
    )
    p_fleet.add_argument("--model", default="bert", choices=["bert", "gpt2"])
    p_fleet.add_argument("--requests", type=int, default=None,
                         help="trace length (default: 48 quick, 160 full)")
    p_fleet.add_argument("--processes", type=int, default=None,
                         help="largest shard-process count; the sweep runs "
                              "1..N in powers of two (default: 4 quick, "
                              "8 full)")
    p_fleet.add_argument("--workers-per-shard", type=int, default=1,
                         help="worker threads inside each shard process")
    p_fleet.add_argument("--device", default="rtx4090", choices=list(_DEVICES))
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument("--window", type=int, default=32,
                         help="closed-loop client concurrency")
    p_fleet.add_argument("--time-scale", type=float, default=1.0,
                         help="fraction of simulated profiling cost slept "
                              "in real time (0 = CPU-only)")
    p_fleet.add_argument("--routing", default="least-loaded",
                         choices=["hash", "least-loaded"])
    p_fleet.add_argument("--quick", action="store_true",
                         help="CI smoke mode: short trace, tiny "
                              "construction budget, no 8-process point")
    p_fleet.add_argument("--out", default="BENCH_fleet.json",
                         metavar="OUT.json",
                         help="artifact path ('' disables the write)")
    p_fleet.add_argument("--min-process-scaling", type=float, default=None,
                         help="exit 1 if 4-vs-1 process throughput scaling "
                              "falls below this")
    p_fleet.add_argument("--skip-parity", action="store_true",
                         help="skip the sequential fleet-vs-single-process "
                              "schedule parity check")
    p_fleet.set_defaults(fn=_cmd_fleet_bench)

    p_bench = sub.add_parser(
        "bench",
        help="measure construction-walk throughput -> BENCH_walk.json",
    )
    p_bench.add_argument("target", choices=["walk"],
                         help="benchmark to run (only 'walk' so far)")
    p_bench.add_argument("--quick", action="store_true",
                         help="one op per family with a reduced walk "
                              "(the CI smoke mode)")
    p_bench.add_argument("--device", default="rtx4090", choices=list(_DEVICES))
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--out", default="BENCH_walk.json",
                         metavar="OUT.json")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="best-of-N wall per measurement, each repeat "
                              "on its own deterministic seed substream "
                              "(default: 3 for --quick, 1 otherwise)")
    p_bench.add_argument("--min-speedup", type=float, default=None,
                         help="exit 1 if batched/scalar states-per-sec "
                              "falls below this")
    p_bench.add_argument("--min-soa-speedup", type=float, default=None,
                         help="exit 1 if soa/scalar states-per-sec "
                              "falls below this")
    p_bench.add_argument("--min-walker-scaling", type=float, default=None,
                         help="exit 1 if 4-vs-1 walker throughput scaling "
                              "falls below this")
    p_bench.set_defaults(fn=_cmd_bench)

    p_trace = sub.add_parser(
        "trace-report",
        help="summarize a JSONL construction trace",
    )
    p_trace.add_argument("trace", help="trace file from compile --trace")
    p_trace.add_argument("--chrome", default=None, metavar="OUT.json",
                         help="also export a Chrome trace_event timeline")
    p_trace.set_defaults(fn=_cmd_trace_report)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo-specific static checkers "
             "(determinism, lock order, spawn safety)",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files/dirs to lint (default: the installed repro package)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is schema-stable for CI consumption)",
    )
    p_lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON of accepted findings "
             "(default: LINT_BASELINE.json next to the package, if present)",
    )
    p_lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    p_lint.set_defaults(fn=_cmd_lint)

    p_dev = sub.add_parser("devices", help="list simulated devices")
    p_dev.set_defaults(fn=_cmd_devices)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (ValueError, OSError) as exc:
        # Operator errors (bad shapes, missing files) get one line on
        # stderr and a non-zero exit, never a traceback.
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
