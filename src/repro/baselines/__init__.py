"""Baseline tensor compilers the paper compares Gensor against.

* :mod:`repro.baselines.roller` — the tree-based construction method
  (single-objective greedy beam, no backtracking, no vThreads),
* :mod:`repro.baselines.ansor` — the search method (evolutionary search
  with measured feedback and a large trial budget),
* :mod:`repro.baselines.vendor` — cuBLAS/cuDNN-like expert templates,
* :mod:`repro.baselines.pytorch_eager` — framework eager execution
  (library kernels plus per-op dispatch overhead, unfused auxiliaries),
* :mod:`repro.baselines.dietcode` — dynamic-shape micro-kernel
  optimization.

All of them emit the same :class:`~repro.baselines.base.CompilerResult`
and measure on the same simulated device, so every experiment compares
*search strategies*, never measurement substrates.
"""

from repro.baselines.base import CompilerResult, TensorCompiler
from repro.baselines.roller import Roller, RollerConfig
from repro.baselines.ansor import Ansor, AnsorConfig
from repro.baselines.vendor import VendorLibrary
from repro.baselines.pytorch_eager import PyTorchEager
from repro.baselines.dietcode import DietCode, DietCodeConfig

__all__ = [
    "CompilerResult",
    "TensorCompiler",
    "Roller",
    "RollerConfig",
    "Ansor",
    "AnsorConfig",
    "VendorLibrary",
    "PyTorchEager",
    "DietCode",
    "DietCodeConfig",
]
