"""DietCode: joint micro-kernel optimization for dynamic shapes
(Zheng et al., MLSys'22).

Instead of tuning each concrete shape, DietCode tunes one *shared* set of
micro-kernels for a whole shape distribution ahead of time, then dispatches
each runtime shape to the best member.  The reproduction keeps that
contract:

* a candidate pool of micro-kernel tile configurations (library templates
  plus random sketches),
* greedy selection of a small kernel set minimizing the average analytical
  latency across the registered shapes,
* a bounded measurement budget to validate the selection (this is why its
  one-off optimization takes tens of minutes rather than Gensor's
  per-shape seconds — but also why each *new* shape costs nothing),
* per-shape dispatch to the best selected kernel.

Because one set serves every shape, per-shape performance lands below a
per-shape-tuned compiler — the paper measures ~83% of Gensor (Fig. 11).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.baselines.base import CompilerResult
from repro.baselines.vendor import TEMPLATE_TABLE, VendorLibrary
from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.sim.measure import Measurer
from repro.utils.rng import spawn_rng

__all__ = ["DietCodeConfig", "DietCodeResult", "DietCode"]


@dataclass(frozen=True)
class DietCodeConfig:
    num_microkernels: int = 6
    candidate_pool: int = 32
    #: measurements spent validating the selected set across shapes.
    measure_budget: int = 96
    seed: int = 0


@dataclass
class DietCodeResult:
    """Shared micro-kernel set plus the per-shape dispatch outcomes."""

    microkernels: list[tuple[dict[str, int], dict[str, int]]]
    per_shape: dict[str, CompilerResult] = field(default_factory=dict)
    compile_wall_s: float = 0.0
    simulated_measure_s: float = 0.0

    @property
    def compile_seconds(self) -> float:
        return self.compile_wall_s + self.simulated_measure_s


class DietCode:
    """Ahead-of-time dynamic-shape optimizer."""

    name = "dietcode"

    def __init__(
        self, hardware: HardwareSpec, config: DietCodeConfig | None = None
    ) -> None:
        self.hw = hardware
        self.config = config or DietCodeConfig()

    def compile_family(
        self, computes: list[ComputeDef], measurer: Measurer | None = None
    ) -> DietCodeResult:
        """Jointly optimize one operator family over its dynamic shapes."""
        if not computes:
            raise ValueError("compile_family needs at least one shape")
        t0 = time.perf_counter()
        cfg = self.config
        measurer = measurer or Measurer(self.hw, seed=cfg.seed)
        measured_before = measurer.simulated_seconds
        rng = spawn_rng(cfg.seed, "dietcode", computes[0].kind)
        model = measurer.model

        pool = self._candidate_pool(computes, rng)
        # Analytical latency table: pool x shapes (inf where infeasible).
        table: list[list[float]] = []
        for cand in pool:
            row: list[float] = []
            for compute in computes:
                state = self._instantiate(compute, cand)
                row.append(
                    model.latency(state) if state is not None else math.inf
                )
            table.append(row)

        chosen = self._greedy_select(table, cfg.num_microkernels)
        microkernels = [pool[i] for i in chosen]

        # Validation measurements, split across shapes and chosen kernels.
        per_shape: dict[str, CompilerResult] = {}
        budget_per_shape = max(1, cfg.measure_budget // max(1, len(computes)))
        for j, compute in enumerate(computes):
            ranked = sorted(chosen, key=lambda i: table[i][j])
            best_state = None
            best_metrics = None
            for i in ranked[:budget_per_shape]:
                state = self._instantiate(compute, pool[i])
                if state is None:
                    continue
                metrics = measurer.measure(state)
                if (
                    best_metrics is None
                    or metrics.latency_s < best_metrics.latency_s
                ):
                    best_state, best_metrics = state, metrics
            if best_state is None or best_metrics is None:
                raise RuntimeError(
                    f"DietCode found no feasible micro-kernel for {compute.name}"
                )
            per_shape[compute.name] = CompilerResult(
                method=self.name,
                best=best_state,
                best_metrics=best_metrics,
                compile_wall_s=0.0,
                simulated_measure_s=0.0,
                candidates_evaluated=len(pool),
            )
        wall = time.perf_counter() - t0
        return DietCodeResult(
            microkernels=microkernels,
            per_shape=per_shape,
            compile_wall_s=wall,
            simulated_measure_s=measurer.simulated_seconds - measured_before,
        )

    # -- internals ----------------------------------------------------------------

    def _candidate_pool(
        self, computes: list[ComputeDef], rng
    ) -> list[tuple[dict[str, int], dict[str, int]]]:
        kind = computes[0].kind
        pool: list[tuple[dict[str, int], dict[str, int]]] = list(
            TEMPLATE_TABLE.get(kind, [])
        )
        axes = computes[0].axes
        max_extents = {
            ax.name: max(c.axis(ax.name).extent for c in computes) for ax in axes
        }
        while len(pool) < self.config.candidate_pool:
            block: dict[str, int] = {}
            thread: dict[str, int] = {}
            for ax in axes:
                hi = int(math.log2(max_extents[ax.name])) if max_extents[ax.name] > 1 else 0
                b = 1 << int(rng.integers(0, hi + 1))
                t = 1 << int(rng.integers(0, int(math.log2(b)) + 1)) if b > 1 else 1
                block[ax.name] = b
                thread[ax.name] = t
            pool.append((block, thread))
        return pool

    def _instantiate(
        self,
        compute: ComputeDef,
        candidate: tuple[dict[str, int], dict[str, int]],
    ) -> ETIR | None:
        block, thread = candidate
        names = {ax.name for ax in compute.axes}
        if "__last__" in block:
            spatial = [ax.name for ax in compute.spatial_axes]
            block = {spatial[-1]: block["__last__"]} if spatial else {}
            thread = {spatial[-1]: thread.get("__last__", 1)} if spatial else {}
        if not set(block) <= names:
            return None
        try:
            state = ETIR.from_tiles(compute, block, thread)
        except ValueError:
            return None
        return state if state.memory_ok(self.hw) else None

    @staticmethod
    def _greedy_select(table: list[list[float]], k: int) -> list[int]:
        """Greedy set selection minimizing summed per-shape best latency."""
        num_shapes = len(table[0]) if table else 0
        chosen: list[int] = []
        best_per_shape = [math.inf] * num_shapes
        for _ in range(min(k, len(table))):
            best_gain, best_idx = -1.0, -1
            for i in range(len(table)):
                if i in chosen:
                    continue
                gain = 0.0
                for j in range(num_shapes):
                    cur = best_per_shape[j]
                    new = min(cur, table[i][j])
                    if math.isfinite(cur):
                        gain += cur - new
                    elif math.isfinite(new):
                        gain += 1.0 / (1.0 + new)  # covering a shape at all
                if gain > best_gain:
                    best_gain, best_idx = gain, i
            if best_idx < 0:
                break
            chosen.append(best_idx)
            for j in range(num_shapes):
                best_per_shape[j] = min(best_per_shape[j], table[best_idx][j])
        return chosen
