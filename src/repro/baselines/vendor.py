"""Vendor library model (cuBLAS / cuDNN-like expert templates).

Hand libraries ship a small dictionary of meticulously tuned kernel
templates per operator family and dispatch to the best one by shape
heuristics.  The reproduction keeps exactly that structure: a fixed
template table of block/thread tile shapes per operator kind, evaluated
analytically (the vendor tuned offline — dispatching costs nothing at
compile time).

The characteristic behaviour follows: on balanced shapes a template matches
and performance is excellent; on heavily unbalanced shapes (paper Table V)
every template wastes work on padding or starves parallelism, and
construction methods that tailor tiles to the shape win.
"""

from __future__ import annotations

import time

from repro.baselines.base import CompilerResult, TensorCompiler
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.sim.measure import Measurer

__all__ = ["VendorLibrary", "TEMPLATE_TABLE"]

# Each template: (block tiles, thread tiles) keyed by *axis role*.  Roles map
# onto operator-kind axis names below.  Sizes follow the classic CUDA library
# tilings (128x128x8 etc.).
_GEMM_TEMPLATES = [
    ({"i": 128, "j": 128, "k": 16}, {"i": 8, "j": 8, "k": 4}),
    ({"i": 256, "j": 128, "k": 16}, {"i": 16, "j": 8, "k": 4}),
    ({"i": 64, "j": 64, "k": 32}, {"i": 4, "j": 4, "k": 4}),
    ({"i": 128, "j": 64, "k": 32}, {"i": 8, "j": 4, "k": 4}),
    ({"i": 32, "j": 32, "k": 64}, {"i": 2, "j": 2, "k": 8}),
]

_GEMV_TEMPLATES = [
    ({"i": 128, "n": 128}, {"i": 1, "n": 16}),
    ({"i": 256, "n": 64}, {"i": 2, "n": 8}),
    ({"i": 64, "n": 512}, {"i": 1, "n": 32}),
]

_BMM_TEMPLATES = [
    ({"b": 1, "i": 64, "j": 64, "k": 16}, {"b": 1, "i": 4, "j": 4, "k": 4}),
    ({"b": 2, "i": 128, "j": 64, "k": 16}, {"b": 1, "i": 8, "j": 4, "k": 4}),
    ({"b": 1, "i": 32, "j": 32, "k": 32}, {"b": 1, "i": 2, "j": 2, "k": 4}),
]

_CONV_TEMPLATES = [
    (
        {"n": 1, "f": 64, "oh": 4, "ow": 32, "c": 8, "r": 3, "s": 3},
        {"n": 1, "f": 8, "oh": 1, "ow": 4, "c": 2, "r": 1, "s": 1},
    ),
    (
        {"n": 2, "f": 128, "oh": 2, "ow": 16, "c": 16, "r": 3, "s": 3},
        {"n": 1, "f": 8, "oh": 1, "ow": 2, "c": 2, "r": 1, "s": 1},
    ),
    (
        {"n": 4, "f": 32, "oh": 8, "ow": 16, "c": 8, "r": 3, "s": 3},
        {"n": 1, "f": 4, "oh": 2, "ow": 2, "c": 2, "r": 1, "s": 1},
    ),
]

_DWCONV_TEMPLATES = [
    (
        {"n": 1, "c": 32, "oh": 8, "ow": 32, "r": 3, "s": 3},
        {"n": 1, "c": 2, "oh": 2, "ow": 4, "r": 1, "s": 1},
    ),
    (
        {"n": 4, "c": 16, "oh": 4, "ow": 32, "r": 3, "s": 3},
        {"n": 1, "c": 1, "oh": 1, "ow": 4, "r": 1, "s": 1},
    ),
    # Narrow variant for strided depthwise layers (input spans double).
    (
        {"n": 1, "c": 16, "oh": 4, "ow": 16, "r": 3, "s": 3},
        {"n": 1, "c": 1, "oh": 2, "ow": 2, "r": 1, "s": 1},
    ),
]

_POOL_TEMPLATES = [
    (
        {"n": 1, "c": 16, "oh": 8, "ow": 32, "fi": 2, "fj": 2},
        {"n": 1, "c": 1, "oh": 2, "ow": 4, "fi": 2, "fj": 2},
    ),
    (
        {"n": 4, "c": 8, "oh": 4, "ow": 32, "fi": 3, "fj": 3},
        {"n": 1, "c": 1, "oh": 1, "ow": 4, "fi": 1, "fj": 1},
    ),
]

_ELEMENTWISE_TEMPLATES = [
    ({"__last__": 256}, {"__last__": 4}),
    ({"__last__": 128, "__secondlast__": 4}, {"__last__": 4, "__secondlast__": 1}),
]

TEMPLATE_TABLE: dict[str, list[tuple[dict[str, int], dict[str, int]]]] = {
    "gemm": _GEMM_TEMPLATES,
    "gemv": _GEMV_TEMPLATES,
    "bmm": _BMM_TEMPLATES,
    "conv2d": _CONV_TEMPLATES,
    "dwconv2d": _DWCONV_TEMPLATES,
    "avgpool2d": _POOL_TEMPLATES,
    "elementwise": _ELEMENTWISE_TEMPLATES,
    "add": _ELEMENTWISE_TEMPLATES,
    "softmax": _ELEMENTWISE_TEMPLATES,
    "layernorm": _ELEMENTWISE_TEMPLATES,
}


class VendorLibrary(TensorCompiler):
    """cuBLAS/cuDNN stand-in: dispatch among fixed expert templates."""

    name = "cublas"

    def compile(
        self, compute: ComputeDef, measurer: Measurer | None = None
    ) -> CompilerResult:
        t0 = time.perf_counter()
        measurer = self._measurer(measurer)
        templates = TEMPLATE_TABLE.get(compute.kind)
        if templates is None:
            templates = _ELEMENTWISE_TEMPLATES
        best = None
        best_metrics = None
        evaluated = 0
        for block, thread in templates:
            state = self._instantiate(compute, block, thread)
            if state is None or not state.memory_ok(self.hw):
                continue
            evaluated += 1
            metrics = measurer.model.evaluate(state)  # offline-tuned: no noise
            if best_metrics is None or metrics.latency_s < best_metrics.latency_s:
                best, best_metrics = state, metrics
        if best is None or best_metrics is None:
            # Libraries always ship a generic fallback kernel: one thread
            # block row over the innermost spatial axis.
            spatial = compute.spatial_axes
            block = (
                {spatial[-1].name: min(128, spatial[-1].extent)} if spatial else {}
            )
            best = ETIR.from_tiles(compute, block)
            best_metrics = measurer.model.evaluate(best)
            evaluated += 1
        wall = time.perf_counter() - t0
        return CompilerResult(
            method=self.name,
            best=best,
            best_metrics=best_metrics,
            compile_wall_s=wall,
            simulated_measure_s=0.0,
            candidates_evaluated=evaluated,
        )

    def _instantiate(
        self,
        compute: ComputeDef,
        block: dict[str, int],
        thread: dict[str, int],
    ) -> ETIR | None:
        """Map a template's axis roles onto this operator's axes."""
        names = [ax.name for ax in compute.axes]
        block_tiles: dict[str, int] = {}
        thread_tiles: dict[str, int] = {}
        if "__last__" in block:
            # Generic elementwise-style template: tile the innermost axes.
            spatial = [ax.name for ax in compute.spatial_axes]
            if spatial:
                block_tiles[spatial[-1]] = block["__last__"]
                thread_tiles[spatial[-1]] = thread.get("__last__", 1)
            if len(spatial) >= 2 and "__secondlast__" in block:
                block_tiles[spatial[-2]] = block["__secondlast__"]
                thread_tiles[spatial[-2]] = thread.get("__secondlast__", 1)
        else:
            if set(block) != set(names):
                return None
            block_tiles = dict(block)
            thread_tiles = dict(thread)
        try:
            return ETIR.from_tiles(compute, block_tiles, thread_tiles)
        except ValueError:
            return None
