"""Ansor: search-based tensor compilation (Zheng et al., OSDI'20).

Ansor samples complete schedules from a large structured space and evolves
them with *measured* feedback: every candidate it considers seriously is
profiled on the device.  The reproduction keeps the essential structure —
random sketch sampling, evolutionary mutation/crossover over tile
exponents, elitist selection by measured latency — and the essential cost:
thousands of on-device measurements, each charged at real-profiling price,
which is why its compile time sits three to five orders of magnitude above
the construction methods (paper Fig. 8).

Deliberately absent: any analytical guidance — Ansor learns only from
measurements here.  Virtual-thread bindings are *included* in the mutation
space (real Ansor's sketch rules emit them); the Gensor paper's vThread
novelty is relative to tile-based construction IRs like Roller's, not to
search methods.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.base import CompilerResult, TensorCompiler
from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.sim.measure import Measurer
from repro.utils.rng import spawn_rng

__all__ = ["AnsorConfig", "Ansor"]


@dataclass(frozen=True)
class AnsorConfig:
    """Evolutionary-search knobs (defaults mirror Ansor's published scale)."""

    num_trials: int = 2000
    population: int = 64
    elite_fraction: float = 0.25
    mutation_prob: float = 0.85
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_trials < 1:
            raise ValueError("num_trials must be >= 1")
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if not (0.0 < self.elite_fraction <= 1.0):
            raise ValueError("elite_fraction must be in (0, 1]")


class Ansor(TensorCompiler):
    """Search-based compiler: evolutionary search over measured schedules."""

    name = "ansor"

    def __init__(
        self, hardware: HardwareSpec, config: AnsorConfig | None = None
    ) -> None:
        super().__init__(hardware)
        self.config = config or AnsorConfig()

    def compile(
        self, compute: ComputeDef, measurer: Measurer | None = None
    ) -> CompilerResult:
        t0 = time.perf_counter()
        cfg = self.config
        measurer = self._measurer(measurer, cfg.seed)
        measured_before = measurer.simulated_seconds
        rng = spawn_rng(cfg.seed, "ansor", compute.name)

        measured: dict[tuple, float] = {}
        trials = 0

        def profile(state: ETIR) -> float:
            nonlocal trials
            key = state.key()
            if key in measured:
                return measured[key]
            if trials >= cfg.num_trials:
                return math.inf
            trials += 1
            latency = measurer.measure(state).latency_s
            measured[key] = latency
            return latency

        population: list[ETIR] = []
        attempts = 0
        while len(population) < cfg.population and attempts < cfg.population * 30:
            attempts += 1
            state = self._sample(compute, rng)
            if state is not None and state.memory_ok(self.hw):
                population.append(state)
        if not population:
            raise RuntimeError(
                f"Ansor could not sample any feasible schedule for {compute.name}"
            )
        for state in population:
            profile(state)

        best_state = min(population, key=lambda s: measured.get(s.key(), math.inf))
        stagnant = 0
        while trials < cfg.num_trials and stagnant < 25:
            trials_before = trials
            population = self._next_generation(population, measured, rng)
            # Immigrants keep the search from collapsing onto the elites.
            for _ in range(max(1, cfg.population // 8)):
                fresh = self._sample(compute, rng)
                if fresh is not None and fresh.memory_ok(self.hw):
                    population.append(fresh)
            for state in population:
                lat = profile(state)
                if lat < measured.get(best_state.key(), math.inf):
                    best_state = state
                if trials >= cfg.num_trials:
                    break
            stagnant = stagnant + 1 if trials == trials_before else 0
        best_metrics = measurer.model.evaluate(best_state)
        wall = time.perf_counter() - t0
        return CompilerResult(
            method=self.name,
            best=best_state,
            best_metrics=best_metrics,
            compile_wall_s=wall,
            simulated_measure_s=measurer.simulated_seconds - measured_before,
            candidates_evaluated=trials,
        )

    # -- search space -----------------------------------------------------------------

    def _sample(
        self, compute: ComputeDef, rng: np.random.Generator
    ) -> ETIR | None:
        """One random sketch: power-of-two block and thread tiles per axis."""
        block: dict[str, int] = {}
        thread: dict[str, int] = {}
        for ax in compute.axes:
            max_exp = int(math.log2(ax.extent)) if ax.extent > 1 else 0
            b = 1 << int(rng.integers(0, max_exp + 1))
            t = 1 << int(rng.integers(0, int(math.log2(b)) + 1)) if b > 1 else 1
            block[ax.name] = b
            thread[ax.name] = t
        try:
            return ETIR.from_tiles(compute, block, thread)
        except ValueError:
            return None

    def _next_generation(
        self,
        population: list[ETIR],
        measured: dict[tuple, float],
        rng: np.random.Generator,
    ) -> list[ETIR]:
        cfg = self.config
        ranked = sorted(
            population, key=lambda s: measured.get(s.key(), math.inf)
        )
        n_elite = max(2, int(len(ranked) * cfg.elite_fraction))
        elites = ranked[:n_elite]
        children: list[ETIR] = list(elites)
        guard = 0
        while len(children) < cfg.population and guard < cfg.population * 30:
            guard += 1
            if rng.random() < cfg.mutation_prob:
                child = self._mutate(elites[int(rng.integers(0, n_elite))], rng)
            else:
                a = elites[int(rng.integers(0, n_elite))]
                b = elites[int(rng.integers(0, n_elite))]
                child = self._crossover(a, b, rng)
            if child is not None and child.memory_ok(self.hw):
                children.append(child)
        return children

    def _mutate(self, state: ETIR, rng: np.random.Generator) -> ETIR | None:
        """Double/halve one random axis's tile at one random level, or (as
        real Ansor's sketch rules do) adjust a virtual-thread binding."""
        ndim = len(state.compute.axes)
        for _ in range(8):
            axis = int(rng.integers(0, ndim))
            if rng.random() < 0.15:
                v = state.vthreads(axis)
                nv = v * 2 if rng.random() < 0.5 else v // 2
                if nv >= 1:
                    nxt = state.with_vthread(axis, nv)
                    if nxt is not None:
                        return nxt
                continue
            level = int(rng.integers(1, state.num_levels + 1))
            up = bool(rng.integers(0, 2))
            nxt = state.scaled_tile_at(axis, level, up)
            if nxt is not None:
                return nxt
        return None

    def _crossover(
        self, a: ETIR, b: ETIR, rng: np.random.Generator
    ) -> ETIR | None:
        """Mix per-axis tile vectors from two parents."""
        compute = a.compute
        block: dict[str, int] = {}
        thread: dict[str, int] = {}
        for idx, ax in enumerate(compute.axes):
            src = a if rng.random() < 0.5 else b
            block[ax.name] = src.tile(idx, src.num_levels)
            thread[ax.name] = src.tile(idx, 1)
        try:
            return ETIR.from_tiles(compute, block, thread)
        except ValueError:
            return None
