"""Roller: tree-based construction tensor compilation (Zhu et al., OSDI'22).

Roller constructs schedules by *scaling up* aligned tiles (rTiles) level by
level, guided by a single objective — the memory-reuse ratio (FLOPs per
byte of traffic at the level being scheduled).  The search structure is a
tree descended one way:

* tiles only ever grow (no inverse moves, no backtracking),
* each expansion keeps only the top-``beam`` states *by the single
  objective*, discarding states whose reuse looks momentarily worse even
  if they would dominate later — the limitation Fig. 1 of the Gensor paper
  illustrates,
* no multi-objective awareness (coalescing, bank conflicts, occupancy) and
  no virtual threads.

Like the real system, the handful of surviving candidates is
micro-benchmarked once on the device and the fastest is returned, which is
why Roller compiles in about a second instead of Ansor's hours.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.baselines.base import CompilerResult, TensorCompiler
from repro.hardware.spec import HardwareSpec
from repro.ir.access import reuse_ratio
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.sim.measure import MICROBENCH_SECONDS, Measurer

__all__ = ["RollerConfig", "Roller"]


@dataclass(frozen=True)
class RollerConfig:
    """Roller construction knobs."""

    #: beam width of the scale-up tree at each level.
    beam: int = 8
    #: candidates micro-benchmarked at the end (the Roller paper evaluates
    #: its top-10 rProgs on device).
    measure_k: int = 10

    def __post_init__(self) -> None:
        if self.beam < 1 or self.measure_k < 1:
            raise ValueError("beam and measure_k must be >= 1")


class Roller(TensorCompiler):
    """Tree-based construction compiler (the paper's primary baseline)."""

    name = "roller"

    def __init__(
        self, hardware: HardwareSpec, config: RollerConfig | None = None
    ) -> None:
        super().__init__(hardware)
        self.config = config or RollerConfig()

    def compile(
        self, compute: ComputeDef, measurer: Measurer | None = None
    ) -> CompilerResult:
        t0 = time.perf_counter()
        measurer = measurer or Measurer(
            self.hw, seconds_per_measurement=MICROBENCH_SECONDS
        )
        measured_before = measurer.simulated_seconds

        thread_candidates = self._scale_up_thread_tiles(compute)
        full_candidates: list[ETIR] = []
        for thread_tiles in thread_candidates:
            full_candidates.extend(self._scale_up_block_tiles(compute, thread_tiles))
        feasible = [s for s in full_candidates if s.memory_ok(self.hw)]
        if not feasible:
            raise RuntimeError(f"Roller found no feasible schedule for {compute.name}")
        # Rank by the single objective at the inner level, then measure top-k.
        feasible.sort(
            key=lambda s: -reuse_ratio(compute, s.thread_tiles())
        )
        shortlist = self._dedupe(feasible)[: self.config.measure_k]
        best, best_metrics = None, None
        for state in shortlist:
            metrics = measurer.measure(state)
            if best_metrics is None or metrics.latency_s < best_metrics.latency_s:
                best, best_metrics = state, metrics
        wall = time.perf_counter() - t0
        assert best is not None and best_metrics is not None
        return CompilerResult(
            method=self.name,
            best=best,
            best_metrics=best_metrics,
            compile_wall_s=wall,
            simulated_measure_s=measurer.simulated_seconds - measured_before,
            candidates_evaluated=len(full_candidates),
        )

    # -- tree construction ----------------------------------------------------------
    #
    # Roller aligns rTiles bottom-up: first the per-thread register tile (the
    # smallest compute unit), then the shared-memory block tile as a
    # thread-aligned multiple of it.  Building upward keeps every level
    # feasible by construction — and is exactly the one-way descent (no level
    # revisited, no tile ever shrunk) that defines the tree structure.

    #: rTile quantization bounds: register tiles are kept within the shapes
    #: vendor kernels use (<= 16 elements per axis, modest register budget)
    #: so that thread blocks stay warp-friendly after the smem scale-up.
    _MAX_THREAD_TILE_PER_AXIS = 16
    _MAX_REGS_PER_THREAD = 160

    def _scale_up_thread_tiles(self, compute: ComputeDef) -> list[dict[str, int]]:
        """Stage 1: grow per-thread register rTiles greedily by the
        memory-reuse ratio under the register cap."""
        tiles = {ax.name: 1 for ax in compute.axes}
        path: list[dict[str, int]] = [dict(tiles)]
        while True:
            best_score = -math.inf
            best_tiles: dict[str, int] | None = None
            for ax in compute.axes:
                nxt = self._grow(tiles, ax.name, ax.extent)
                if nxt is None or nxt[ax.name] > self._MAX_THREAD_TILE_PER_AXIS:
                    continue
                state = ETIR.from_tiles(compute, nxt, nxt)
                if state.regs_per_thread() > self._MAX_REGS_PER_THREAD:
                    continue
                score = reuse_ratio(compute, nxt)
                if score > best_score:
                    best_score, best_tiles = score, nxt
            if best_tiles is None:
                break
            tiles = best_tiles
            path.append(dict(tiles))
        # The last few register tiles on the path are the rTile candidates.
        return path[-min(len(path), max(2, self.config.beam // 2)) :]

    def _scale_up_block_tiles(
        self, compute: ComputeDef, thread_tiles: dict[str, int]
    ) -> list[ETIR]:
        """Stage 2: grow shared-memory rTiles (multiples of the thread tile)
        by reuse ratio, subject to the slab and thread-count limits.

        Two alignment rules from the Roller design are applied:

        * rTiles are *transaction-aligned*: any axis indexing the innermost
          dimension of an input tensor starts at the memory-transaction
          width (a warp of floats), so staged slabs load coalesced;
        * rTiles *saturate the processor*: growth that would leave fewer
          blocks than SMs is rejected while alternatives exist.
        """
        block = dict(thread_tiles)
        for name, extent in self._transaction_aligned_axes(compute).items():
            block[name] = max(
                block.get(name, 1), min(self.hw.warp_size, extent)
            )
        results: list[ETIR] = []
        current = ETIR.from_tiles(compute, block, thread_tiles)
        if current.memory_ok(self.hw):
            results.append(current)
        while True:
            best_score = -math.inf
            best_state: ETIR | None = None
            for ax in compute.axes:
                nxt = self._grow(block, ax.name, ax.extent)
                if nxt is None:
                    continue
                state = ETIR.from_tiles(compute, nxt, thread_tiles)
                if not state.memory_ok(self.hw):
                    continue
                # Saturation rule: never trade resident parallelism away —
                # growth may not push the grid below the SM count, nor
                # shrink it further once it is already undersubscribed.
                if state.num_blocks() < min(
                    self.hw.num_sms, current.num_blocks()
                ):
                    continue
                score = reuse_ratio(compute, nxt)
                if score > best_score:
                    best_score, best_state = score, state
            if best_state is None:
                break
            block = best_state.block_tiles()
            current = best_state
            results.append(best_state)
        return results[-3:]  # the largest slabs on the path

    def _transaction_aligned_axes(self, compute: ComputeDef) -> dict[str, int]:
        """Axes whose block tile must cover a memory transaction: for each
        input, the unit-stride iteration axis of its innermost dimension."""
        aligned: dict[str, int] = {}
        by_name = {ax.name: ax for ax in compute.axes}
        for acc in compute.inputs:
            innermost = acc.indices[-1]
            unit = [n for n in innermost.var_names() if innermost.coefficient(n) == 1]
            for name in unit[:1]:
                aligned[name] = by_name[name].extent
        return aligned

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _grow(
        tiles: dict[str, int], axis: str, extent: int
    ) -> dict[str, int] | None:
        cur = tiles[axis]
        if cur >= extent:
            return None
        nxt = dict(tiles)
        nxt[axis] = min(cur * 2, extent)
        return nxt

    @staticmethod
    def _key(tiles: dict[str, int]) -> tuple:
        return tuple(sorted(tiles.items()))

    @staticmethod
    def _dedupe(states: list[ETIR]) -> list[ETIR]:
        out: list[ETIR] = []
        seen: set[tuple] = set()
        for s in states:
            if s.key() not in seen:
                seen.add(s.key())
                out.append(s)
        return out
