"""Framework eager execution model (the paper's "PyTorch official" bars).

Eager frameworks dispatch each operator to a pre-built library kernel, one
kernel launch at a time, with no cross-op fusion and no shape-specific
tuning.  The model:

* dense ops (GEMM / conv / batched matmul) run vendor-template kernels but
  with a *generic dispatch* derate — the library heuristic picks a template
  for the shape class, not the shape, and layout conversions (NCHW
  shuffles, non-ideal epilogues) cost a constant factor,
* auxiliary ops (elementwise, softmax, layernorm, pooling) run naive
  unfused schedules,
* every op pays the framework's per-op dispatch overhead on top of the
  kernel launch itself.

This reproduces eager's end-to-end gap (paper Fig. 9: ~7x behind tuned
compilation on the RTX 4090, ~2.6x on the Orin Nano where kernels are
longer relative to overheads).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.base import CompilerResult, TensorCompiler
from repro.baselines.vendor import VendorLibrary
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.sim.measure import Measurer
from repro.sim.metrics import KernelMetrics

__all__ = ["PyTorchEager"]

#: operator kinds dispatched to tuned library kernels.
_LIBRARY_KINDS = frozenset({"gemm", "gemv", "bmm", "conv2d", "dwconv2d"})
#: generic-dispatch derate on library kernels (heuristic template choice,
#: layout conversion, unfused epilogue).
_LIBRARY_DERATE = 2.4
#: host-side framework overhead per operator call (Python dispatch, autograd
#: bookkeeping, stream sync), well above the bare kernel-launch cost.
_DISPATCH_OVERHEAD_S = 90e-6


class PyTorchEager(TensorCompiler):
    """Eager framework execution: library kernels + per-op overhead."""

    name = "pytorch"

    def __init__(self, hardware) -> None:
        super().__init__(hardware)
        self._vendor = VendorLibrary(hardware)

    def compile(
        self, compute: ComputeDef, measurer: Measurer | None = None
    ) -> CompilerResult:
        t0 = time.perf_counter()
        measurer = self._measurer(measurer)
        if compute.kind in _LIBRARY_KINDS:
            base = self._vendor.compile(compute, measurer)
            state = base.best
            kernel = base.best_metrics
            derate = _LIBRARY_DERATE
        else:
            state = self._naive_schedule(compute)
            kernel = measurer.model.evaluate(state)
            derate = 1.0
        latency = kernel.latency_s * derate + _DISPATCH_OVERHEAD_S
        metrics = KernelMetrics(
            latency_s=latency,
            achieved_flops=compute.total_flops / latency,
            compute_throughput=min(
                1.0, compute.total_flops / latency / self.hw.peak_flops
            ),
            sm_occupancy=kernel.sm_occupancy,
            mem_busy=kernel.mem_busy,
            l2_hit_rate=kernel.l2_hit_rate,
            dram_bytes=kernel.dram_bytes,
            smem_bytes=kernel.smem_bytes,
            bank_conflict_factor=kernel.bank_conflict_factor,
            blocks_per_sm=kernel.blocks_per_sm,
            waves=kernel.waves,
        )
        wall = time.perf_counter() - t0
        return CompilerResult(
            method=self.name,
            best=state,
            best_metrics=metrics,
            compile_wall_s=wall,
            simulated_measure_s=0.0,
            candidates_evaluated=1,
        )

    def _naive_schedule(self, compute: ComputeDef) -> ETIR:
        """256 threads over the innermost spatial axis, nothing else tuned."""
        spatial = compute.spatial_axes
        block: dict[str, int] = {}
        if spatial:
            block[spatial[-1].name] = min(256, spatial[-1].extent)
        return ETIR.from_tiles(compute, block)
