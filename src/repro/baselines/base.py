"""Common compiler interface shared by Gensor and every baseline."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.hardware.spec import HardwareSpec
from repro.ir.compute import ComputeDef
from repro.ir.etir import ETIR
from repro.sim.measure import Measurer
from repro.sim.metrics import KernelMetrics

__all__ = ["CompilerResult", "TensorCompiler"]


@dataclass
class CompilerResult:
    """Outcome of one compilation by any method."""

    method: str
    best: ETIR
    best_metrics: KernelMetrics
    compile_wall_s: float
    simulated_measure_s: float
    candidates_evaluated: int = 0

    @property
    def compile_seconds(self) -> float:
        """Total compile cost: optimization wall clock + simulated profiling.

        For search methods the profiling term dominates (thousands of
        on-device measurements); for construction methods it is a handful
        of final micro-benchmarks.
        """
        return self.compile_wall_s + self.simulated_measure_s

    @property
    def latency_s(self) -> float:
        return self.best_metrics.latency_s

    @property
    def achieved_flops(self) -> float:
        return self.best_metrics.achieved_flops


class TensorCompiler(ABC):
    """A method that turns an operator into a scheduled tensor program."""

    name: str = "compiler"

    def __init__(self, hardware: HardwareSpec) -> None:
        self.hw = hardware

    @abstractmethod
    def compile(
        self, compute: ComputeDef, measurer: Measurer | None = None
    ) -> CompilerResult:
        """Optimize ``compute`` for this compiler's device."""

    def _measurer(self, measurer: Measurer | None, seed: int = 0) -> Measurer:
        return measurer if measurer is not None else Measurer(self.hw, seed=seed)
