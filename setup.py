"""Setuptools entry point.

Kept alongside pyproject.toml so that editable installs work in offline
environments whose setuptools lacks PEP 660 wheel support.
"""

from setuptools import setup

setup()
