"""Fleet checkpoint/resume: a crashed shard's in-flight walk survives the
process boundary — the shard persists mid-walk checkpoints to the shared
CheckpointStore, and the dispatcher attaches them to the requests it
resends into the respawned shard."""

import pickle
import time

import pytest

from repro.core.cache import shape_fingerprint
from repro.core.constructor import GensorConfig
from repro.fleet import FleetDispatcher, ShardOptions, WireControl
from repro.fleet.shard import WireRequest
from repro.ir import operators as ops
from repro.resilience.checkpoint import CheckpointStore, WalkCheckpoint
from repro.utils.rng import spawn_rng


def gemm(m=64, k=32, n=64, name="op"):
    return ops.matmul(m, k, n, name)


def slow_walk_options(tmp_path, **overrides):
    """A many-chain walk (seconds of wall time) with a tight checkpoint
    cadence, so the parent can crash the shard mid-walk."""
    base = dict(
        device="rtx4090",
        config=GensorConfig(
            seed=0, num_chains=30, top_k=2, polish_steps=2,
            max_iterations_per_chain=100,
        ),
        workers=2,
        queue_capacity=32,
        warm_polish_steps=2,
        warm_pool=2,
        time_scale=0.0,
        sync_interval_s=0.2,
        checkpoint_path=str(tmp_path / "checkpoints"),
        checkpoint_every=64,
    )
    base.update(overrides)
    return ShardOptions(**base)


def wait_for(predicate, timeout_s=60.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    return None


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestShardCrashResume:
    def test_crashed_shard_walk_resumes_in_respawn(self, tmp_path):
        compute = gemm(name="fleet_resume")
        options = slow_walk_options(tmp_path)
        store = CheckpointStore(options.checkpoint_path)
        key = shape_fingerprint(compute)

        # fault-free reference for the byte-parity bar
        with FleetDispatcher(
            slow_walk_options(tmp_path, checkpoint_path=None), 1
        ) as clean_fleet:
            clean = clean_fleet.serve(compute, timeout=300)
        assert clean.ok and clean.tier == "cold"

        with FleetDispatcher(
            options, 1, supervise_interval_s=0.05
        ) as fleet:
            ticket = fleet.submit(compute)
            # the shard banks its first mid-walk snapshot, then dies
            assert wait_for(
                lambda: store.load(options.device, key)
            ) is not None
            fleet._req_qs[0].put(WireControl("crash"))
            response = ticket.result(timeout=300)
            assert response.ok and response.tier == "cold"
            assert fleet.respawns >= 1
            resumed = sum(
                c.value
                for c in fleet.registry.series(
                    "fleet_checkpoint_resumes_total"
                ).values()
            )
            assert resumed >= 1
            # parity: the resumed walk served the schedule the
            # uninterrupted fleet serves
            assert response.schedule_key() == clean.schedule_key()
            # the landed walk's persisted checkpoint is spent: the shard
            # discards it once the response goes out
            assert (
                wait_for(
                    lambda: store.load(options.device, key) is None,
                    timeout_s=30.0,
                )
                is True
            )


class TestWirePayload:
    def test_wire_request_with_checkpoint_pickles(self):
        rng = spawn_rng(0, "gensor", "op", 0)
        rng.random(3)
        checkpoint = WalkCheckpoint(
            compute_key="k",
            config_digest="d",
            num_levels=3,
            chain=0,
            iteration=4,
            total_steps=4,
            temperature=0.9,
            state=((4, 4), (2, 2), 0),
            rng_state=rng.bit_generator.state,
            candidates=(((4, 4), (2, 2), 0),),
            node_keys=(((4, 4), (2, 2), 0),),
            nodes_seen=7,
        )
        wire = WireRequest(
            request_id=1, compute=gemm(), checkpoint=checkpoint
        )
        back = pickle.loads(pickle.dumps(wire))
        assert back.checkpoint == checkpoint
        assert back.request_id == 1
