"""Command-line interface."""

import pytest

from repro.cli import build_operator, build_parser, main


class TestBuildOperator:
    def test_gemm(self):
        op = build_operator("gemm", "64x32x48")
        assert op.kind == "gemm"
        assert op.extents() == {"i": 64, "k": 32, "j": 48}

    def test_gemv(self):
        op = build_operator("gemv", "128x64")
        assert op.kind == "gemv"

    def test_bmm(self):
        op = build_operator("bmm", "4x32x16x32")
        assert op.kind == "bmm"

    def test_conv2d(self):
        op = build_operator("conv2d", "2x4x10x10x8x3x3x1")
        assert op.kind == "conv2d"
        assert op.axis("oh").extent == 8

    def test_avgpool2d(self):
        op = build_operator("avgpool2d", "2x4x8x8x2x2")
        assert op.kind == "avgpool2d"

    def test_elementwise(self):
        op = build_operator("elementwise", "16x16")
        assert op.kind == "elementwise"

    def test_case_insensitive_separator(self):
        op = build_operator("gemm", "64X32X48")
        assert op.axis("i").extent == 64

    @pytest.mark.parametrize(
        "op,shape",
        [("gemm", "64x32"), ("gemv", "64"), ("conv2d", "1x2x3"), ("bmm", "1x2x3")],
    )
    def test_wrong_arity_rejected(self, op, shape):
        with pytest.raises(ValueError):
            build_operator(op, shape)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            build_operator("fft", "64")


class TestParser:
    def test_compile_defaults(self):
        args = build_parser().parse_args(
            ["compile", "--op", "gemm", "--shape", "64x64x64"]
        )
        assert args.method == "gensor"
        assert args.device == "rtx4090"

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "fig06", "--full"])
        assert args.name == "fig06" and args.full

    def test_compile_accepts_dynamic_method(self):
        args = build_parser().parse_args(
            ["compile", "--op", "gemm", "--shape", "64x64x64",
             "--method", "dynamic"]
        )
        assert args.method == "dynamic"

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.model == "bert"
        assert args.requests == 200
        assert args.workers == 8
        assert args.deadline_ms is None
        assert args.window == 64
        assert args.faults is None
        assert args.fail_fast is False

    def test_serve_bench_fault_flags(self):
        args = build_parser().parse_args(
            ["serve-bench", "--faults", "plan.json", "--fail-fast"]
        )
        assert args.faults == "plan.json" and args.fail_fast
        args = build_parser().parse_args(["serve-bench", "--no-fail-fast"])
        assert args.fail_fast is False

    def test_compile_trace_defaults_off(self):
        args = build_parser().parse_args(
            ["compile", "--op", "gemm", "--shape", "64x64x64"]
        )
        assert args.trace is None

    def test_resilience_experiment_registered(self):
        from repro.cli import _EXPERIMENTS

        assert _EXPERIMENTS["resilience"] == (
            "repro.experiments.serving_resilience"
        )

    def test_serve_bench_out_default(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.out == "BENCH_serve.json"
        args = build_parser().parse_args(["serve-bench", "--out", ""])
        assert args.out == ""

    def test_fleet_bench_defaults(self):
        args = build_parser().parse_args(["fleet-bench"])
        assert args.model == "bert"
        assert args.requests is None
        assert args.processes is None
        assert args.workers_per_shard == 1
        assert args.window == 32
        assert args.routing == "least-loaded"
        assert args.quick is False
        assert args.out == "BENCH_fleet.json"
        assert args.min_process_scaling is None
        assert args.skip_parity is False

    def test_trace_report_args(self):
        args = build_parser().parse_args(
            ["trace-report", "walk.jsonl", "--chrome", "timeline.json"]
        )
        assert args.trace == "walk.jsonl"
        assert args.chrome == "timeline.json"


class TestMain:
    def test_devices_command(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "rtx4090" in out and "orin_nano" in out

    def test_compile_roller_small(self, capsys):
        code = main(
            ["compile", "--op", "gemm", "--shape", "256x128x256",
             "--method", "roller"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "schedule:" in out and "predicted:" in out

    def test_compile_with_emit(self, capsys):
        code = main(
            ["compile", "--op", "gemm", "--shape", "256x128x256",
             "--method", "cublas", "--emit"]
        )
        assert code == 0
        assert "__global__" in capsys.readouterr().out

    def test_compile_dynamic_reports_serve_source(self, capsys):
        code = main(
            ["compile", "--op", "gemm", "--shape", "64x32x64",
             "--method", "dynamic"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served:     cold" in out
        assert "schedule:" in out and "predicted:" in out

    def test_serve_bench_runs(self, capsys):
        code = main(
            ["serve-bench", "--model", "bert", "--requests", "8",
             "--workers", "2", "--time-scale", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve-bench" in out and "tier:cold" in out
        assert "0 failed" in out

    def test_serve_bench_writes_artifact(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_serve.json"
        code = main(
            ["serve-bench", "--model", "bert", "--requests", "6",
             "--workers", "2", "--time-scale", "0", "--out", str(out)]
        )
        assert code == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["bench"] == "serve"
        assert payload["requests"] == 6
        assert payload["failed"] == 0
        assert payload["requests_per_s"] > 0
        assert payload["served_schedules"] == 6

    def test_fleet_bench_tiny_run_writes_artifact(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_fleet.json"
        code = main(
            ["fleet-bench", "--quick", "--requests", "8",
             "--processes", "2", "--time-scale", "0", "--skip-parity",
             "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "fleet-bench" in stdout and f"wrote {out}" in stdout
        payload = json.loads(out.read_text())
        assert payload["bench"] == "fleet"
        assert set(payload["runs"]) == {"1", "2"}
        assert all(r["failed"] == 0 for r in payload["runs"].values())
        assert "2v1" in payload["process_scaling"]
        assert payload["autoscale"]["peak_workers"] >= 1

    def test_serve_bench_with_fault_plan(self, capsys, tmp_path):
        import json

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "seed": 0,
            "faults": [{"kind": "raise", "rate": 0.5, "attempts": [0]}],
        }))
        code = main(
            ["serve-bench", "--model", "bert", "--requests", "8",
             "--workers", "2", "--time-scale", "0",
             "--faults", str(plan_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos:" in out and "availability:" in out

    def test_serve_bench_missing_fault_plan_one_line_error(self, capsys):
        code = main(["serve-bench", "--faults", "/nope/plan.json"])
        assert code == 2
        err = capsys.readouterr().err
        assert "serve-bench:" in err
        assert "Traceback" not in err

    def test_bad_shape_one_line_error(self, capsys):
        code = main(["compile", "--op", "gemm", "--shape", "64x32"])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro compile: gemm expects MxKxN" in err
        assert "Traceback" not in err

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "convergence"]) == 0
        assert "Markov" in capsys.readouterr().out


class TestTracingCommands:
    def test_compile_trace_then_report(self, capsys, tmp_path):
        trace = str(tmp_path / "walk.jsonl")
        chrome = str(tmp_path / "timeline.json")
        code = main(
            ["compile", "--op", "gemm", "--shape", "64x32x64",
             "--trace", trace]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out and trace in out

        code = main(["trace-report", trace, "--chrome", chrome])
        assert code == 0
        out = capsys.readouterr().out
        assert "walk steps" in out
        assert "chrome trace:" in out

        import json

        doc = json.load(open(chrome))
        assert doc["traceEvents"]

    def test_trace_requires_construction_method(self, capsys, tmp_path):
        code = main(
            ["compile", "--op", "gemm", "--shape", "64x64x64",
             "--method", "roller", "--trace", str(tmp_path / "t.jsonl")]
        )
        assert code == 2
        assert "--method gensor or dynamic" in capsys.readouterr().err

    def test_trace_report_missing_file(self, capsys, tmp_path):
        code = main(["trace-report", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "trace-report:" in capsys.readouterr().err
