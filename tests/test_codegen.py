"""Lowering and CUDA-like emission."""

import pytest

from repro.codegen import emit_cuda, lower_etir, lower_schedule
from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.ir.loopnest import Alloc, LoadStage, Loop, LoopKind, StoreStmt, Sync
from repro.ir.schedule import Schedule


@pytest.fixture
def state():
    g = ops.matmul(256, 128, 192, "demo")
    return ETIR.from_tiles(
        g, {"i": 64, "j": 64, "k": 32}, {"i": 4, "j": 4, "k": 4}, {"i": 2}
    )


class TestLowering:
    def test_launch_config(self, state):
        k = lower_etir(state)
        assert k.grid_dim == state.num_blocks()
        assert k.block_dim == state.threads_per_block()

    def test_shared_allocs_for_each_input(self, state):
        k = lower_etir(state)
        shared = [s for s in k.body if isinstance(s, Alloc) and s.scope == "shared"]
        assert {a.buffer for a in shared} == {"A_shared", "B_shared"}

    def test_shared_alloc_sizes_match_footprints(self, state):
        k = lower_etir(state)
        shared = {s.buffer: s for s in k.body if isinstance(s, Alloc) and s.scope == "shared"}
        # A slab: 64 x 32 elements; B slab: 32 x 64.
        assert shared["A_shared"].num_elems == 64 * 32
        assert shared["B_shared"].num_elems == 32 * 64

    def test_local_accumulator_present(self, state):
        k = lower_etir(state)
        local = [s for s in k.body if isinstance(s, Alloc) and s.scope == "local"]
        assert len(local) == 1

    def test_loop_kinds_present(self, state):
        k = lower_etir(state)
        assert k.loops_of_kind(LoopKind.BLOCK)
        assert k.loops_of_kind(LoopKind.THREAD)
        assert k.loops_of_kind(LoopKind.VTHREAD)
        assert k.loops_of_kind(LoopKind.UNROLL)

    def test_stage_then_sync_inside_reduce_loop(self, state):
        k = lower_etir(state)
        staged_loops = [
            lp for lp in k.all_loops()
            if any(isinstance(s, LoadStage) for s in lp.body)
        ]
        assert len(staged_loops) == 1
        body = staged_loops[0].body
        sync_idx = next(i for i, s in enumerate(body) if isinstance(s, Sync))
        load_idx = [i for i, s in enumerate(body) if isinstance(s, LoadStage)]
        assert all(i < sync_idx for i in load_idx)

    def test_store_after_loops(self, state):
        k = lower_etir(state)
        assert isinstance(k.body[-1], StoreStmt)

    def test_render_runs(self, state):
        text = lower_etir(state).render()
        assert "kernel demo" in text

    def test_lower_schedule_without_cache_stages(self):
        g = ops.elementwise((64, 64), "relu", "e")
        sched = Schedule(g)
        sched.split("d0", 8)
        k = lower_schedule(sched)
        assert k.all_loops()


class TestCudaEmission:
    def test_signature(self, state):
        src = emit_cuda(lower_etir(state), state.compute)
        assert 'extern "C" __global__ void demo_kernel(' in src
        assert "const float* __restrict__ A" in src
        assert "float* __restrict__ C" in src

    def test_launch_comment(self, state):
        src = emit_cuda(lower_etir(state), state.compute)
        assert f"<<<dim3({state.num_blocks()}), dim3({state.threads_per_block()})>>>" in src

    def test_shared_memory_declared(self, state):
        src = emit_cuda(lower_etir(state), state.compute)
        assert "__shared__ float A_shared[2048];" in src

    def test_sync_and_unroll_present(self, state):
        src = emit_cuda(lower_etir(state), state.compute)
        assert "__syncthreads();" in src
        assert "#pragma unroll" in src

    def test_vthread_annotated(self, state):
        src = emit_cuda(lower_etir(state), state.compute)
        assert "virtual thread" in src

    def test_no_dotted_identifiers(self, state):
        src = emit_cuda(lower_etir(state), state.compute)
        for line in src.splitlines():
            if "int " in line and "=" in line:
                name = line.strip().split()[1]
                assert "." not in name, line

    def test_balanced_braces(self, state):
        src = emit_cuda(lower_etir(state), state.compute)
        assert src.count("{") == src.count("}")
