"""Loop-nest IR structure."""

import pytest

from repro.ir.loopnest import (
    Alloc,
    ComputeStmt,
    Kernel,
    LoadStage,
    Loop,
    LoopKind,
    StoreStmt,
    Sync,
)


class TestLoop:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="loop kind"):
            Loop("i", 4, "spiral")

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(ValueError, match="extent"):
            Loop("i", 0)

    def test_walk_depth_first(self):
        inner = Loop("j", 2)
        outer = Loop("i", 4, body=[inner])
        assert [l.var for l in outer.walk()] == ["i", "j"]


class TestKernel:
    def _kernel(self):
        inner = Loop("j", 8, LoopKind.UNROLL, body=[ComputeStmt("x += 1;")])
        outer = Loop("i", 4, LoopKind.BLOCK, body=[Sync(), inner])
        return Kernel(
            "demo", grid_dim=4, block_dim=32,
            body=[Alloc("A_shared", "shared", 128), outer,
                  StoreStmt("C", "C_local", 8)],
        )

    def test_all_loops(self):
        k = self._kernel()
        assert [l.var for l in k.all_loops()] == ["i", "j"]

    def test_loops_of_kind(self):
        k = self._kernel()
        assert len(k.loops_of_kind(LoopKind.BLOCK)) == 1
        assert len(k.loops_of_kind(LoopKind.UNROLL)) == 1
        assert k.loops_of_kind(LoopKind.VTHREAD) == []

    def test_render_structure(self):
        text = self._kernel().render()
        assert "kernel demo <<<4, 32>>>" in text
        assert "alloc A_shared[128] @shared" in text
        assert "for i in 0..4 [blockIdx]:" in text
        assert "__syncthreads()" in text
        assert "store C_local -> C" in text

    def test_render_load_stage(self):
        k = Kernel("k", 1, 1, body=[LoadStage("A", "A_shared", 64, "shared")])
        assert "stage A -> A_shared (64 elems, shared)" in k.render()
