"""SpawnSafetyChecker rules plus runtime pickle round-trips of the wire."""

from __future__ import annotations

import pickle
import textwrap
from pathlib import Path

import pytest

from repro.analysis import SpawnSafetyChecker, run_lint
from repro.fleet.shard import (
    ShardBye,
    ShardOptions,
    ShardReady,
    ShardStats,
    WireControl,
    WireRequest,
    WireResponse,
)
from repro.ir import operators as ops
from repro.models.program import CompiledGroup, CompiledProgram, FusedGroup
from repro.serve.program import ProgramRequest, ProgramResponse


def lint_source(tmp_path: Path, source: str, rel: str = "repro/fleet/mod.py"):
    file = tmp_path / rel
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source))
    return run_lint([file], tmp_path, checkers=[SpawnSafetyChecker()])


def rules(report) -> list[str]:
    return [f.rule for f in report.new]


def test_lambda_process_target_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import multiprocessing as mp

        def start():
            ctx = mp.get_context("spawn")
            p = ctx.Process(target=lambda: 1)
            p.start()
        """,
    )
    assert rules(report) == ["spawn-closure"]


def test_nested_function_target_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import multiprocessing as mp

        def start():
            def work():
                return 1
            ctx = mp.get_context("spawn")
            p = ctx.Process(target=work)
            p.start()
        """,
    )
    assert rules(report) == ["spawn-closure"]


def test_module_level_target_allowed(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import multiprocessing as mp

        def work():
            return 1

        def start():
            ctx = mp.get_context("spawn")
            p = ctx.Process(target=work)
            p.start()
        """,
    )
    assert report.new == []


def test_fork_context_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import multiprocessing as mp

        def start():
            return mp.get_context("fork")
        """,
    )
    assert rules(report) == ["fork-start"]


def test_bare_process_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import multiprocessing as mp

        def work():
            return 1

        def start():
            return mp.Process(target=work)
        """,
    )
    assert rules(report) == ["fork-start"]


def test_queue_put_lambda_flagged_in_fleet_zone_only(tmp_path):
    source = """
        def send(req_q):
            req_q.put(lambda: 1)
    """
    fleet = lint_source(tmp_path, source, rel="repro/fleet/a.py")
    assert rules(fleet) == ["queue-put-unpicklable"]
    serve = lint_source(tmp_path, source, rel="repro/serve/a.py")
    assert serve.new == []


def test_queue_put_lock_local_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        def send(resp_q):
            guard = threading.Lock()
            resp_q.put(guard)
        """,
    )
    assert rules(report) == ["queue-put-unpicklable"]


def test_wire_dataclass_lock_field_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading
        from dataclasses import dataclass, field

        @dataclass
        class Payload:
            request_id: int
            guard: threading.Lock = field(default_factory=threading.Lock)
        """,
    )
    assert rules(report) == ["wire-unpicklable-field"]


def test_wire_dataclass_plain_data_allowed(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from dataclasses import dataclass

        @dataclass
        class Payload:
            request_id: int
            family: str
            deadline_s: float | None
        """,
    )
    assert report.new == []


# -- runtime round-trips: the static rule's ground truth ----------------------


def wire_payloads():
    compute = ops.matmul(32, 24, 40, "wire_rt")
    epilogue = ops.elementwise((32, 40), "relu", "wire_ep")
    group = CompiledGroup(
        anchor_name="wire_rt",
        epilogue_names=("wire_ep",),
        fused=1,
        count=2,
        kernel_latency_s=1e-4,
        pending_cost_s=0.0,
        compile_seconds=0.5,
        best_config=(((4, 16), (4, 16)), (1, 1), 1),
        anchor_label="wire_rt@32x40x24",
    )
    return [
        WireRequest(
            request_id=1,
            compute=compute,
            deadline_s=1.0,
            priority=0,
            epilogues=(epilogue,),
        ),
        WireControl(kind="sync"),
        ShardReady(shard=0, pid=4242),
        ShardStats(shard=0, metrics={}, cache_size=0, workers=1),
        ShardBye(shard=0),
        ShardOptions(device="generic_gpu"),
        # Program-compilation payloads cross the dispatcher/shard boundary
        # in whole-graph serving — wire rules apply wherever they live.
        group,
        CompiledProgram(model="m", batch=1, groups=[group]),
        ProgramRequest(
            model="m",
            batch=1,
            groups=(FusedGroup(anchor=compute, epilogues=(epilogue,), count=2),),
        ),
        ProgramResponse(
            request_id=1,
            ok=True,
            program=CompiledProgram(model="m", batch=1, groups=[group]),
            tiers=("cold",),
        ),
    ]


@pytest.mark.parametrize(
    "payload", wire_payloads(), ids=lambda p: type(p).__name__
)
def test_wire_payload_pickle_round_trip(payload):
    blob = pickle.dumps(payload)
    clone = pickle.loads(blob)
    assert type(clone) is type(payload)


def test_wire_response_round_trip_with_schedule():
    # WireResponse carries the portable CachedSchedule payload; build one
    # through the dataclass directly so the round-trip covers the real
    # wire shape without a full compile.
    resp = WireResponse(shard=0, request_id=7, tier="warm", ok=True)
    clone = pickle.loads(pickle.dumps(resp))
    assert clone.request_id == 7 and clone.tier == "warm"


# -- checkpoint payloads: wire rules apply in every zone ----------------------


def test_checkpoint_dataclass_hostile_field_flagged_outside_fleet(tmp_path):
    # *Checkpoint dataclasses are wire payloads wherever they live: they
    # cross the dispatcher/shard process boundary and the on-disk store.
    report = lint_source(
        tmp_path,
        """
        import threading
        from dataclasses import dataclass, field

        @dataclass
        class WalkCheckpoint:
            iteration: int
            guard: threading.Lock = field(default_factory=threading.Lock)
        """,
        rel="repro/resilience/mod.py",
    )
    assert rules(report) == ["wire-unpicklable-field"]


def test_plain_dataclass_outside_fleet_not_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading
        from dataclasses import dataclass, field

        @dataclass
        class WorkerState:
            iteration: int
            guard: threading.Lock = field(default_factory=threading.Lock)
        """,
        rel="repro/resilience/mod.py",
    )
    assert report.new == []


def test_program_payload_hostile_field_flagged_outside_fleet(tmp_path):
    # Program-compilation payloads are wire classes by name: they travel
    # dispatcher <-> shard in whole-graph serving even though they are
    # defined under repro/models and repro/serve.
    report = lint_source(
        tmp_path,
        """
        import threading
        from dataclasses import dataclass, field

        @dataclass
        class CompiledProgram:
            model: str
            guard: threading.Lock = field(default_factory=threading.Lock)
        """,
        rel="repro/models/mod.py",
    )
    assert rules(report) == ["wire-unpicklable-field"]


def test_program_request_tracer_field_flagged_outside_fleet(tmp_path):
    report = lint_source(
        tmp_path,
        """
        from dataclasses import dataclass

        from repro.obs import JsonlTracer

        @dataclass
        class ProgramRequest:
            model: str
            tracer: JsonlTracer | None = None
        """,
        rel="repro/serve/mod.py",
    )
    assert rules(report) == ["wire-unpicklable-field"]


def test_walk_checkpoint_pickle_round_trip():
    from repro.resilience.checkpoint import WalkCheckpoint
    from repro.utils.rng import spawn_rng

    rng = spawn_rng(0, "gensor", "wire_rt", 0)
    rng.random(3)
    checkpoint = WalkCheckpoint(
        compute_key="k",
        config_digest="d",
        num_levels=3,
        chain=0,
        iteration=4,
        total_steps=4,
        temperature=0.9,
        state=((4, 4), (2, 2), 0),
        rng_state=rng.bit_generator.state,
        candidates=(((4, 4), (2, 2), 0),),
        node_keys=(((4, 4), (2, 2), 0),),
        nodes_seen=7,
    )
    clone = pickle.loads(pickle.dumps(checkpoint))
    assert clone == checkpoint
