"""``python -m repro lint``: exit codes, JSON schema, baseline round-trip."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.findings import SCHEMA_VERSION
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
PLANTED = FIXTURES / "planted"
CLEAN = FIXTURES / "clean"


def run_cli(capsys, *argv: str) -> tuple[int, str]:
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


def test_clean_tree_exits_zero(capsys):
    code, out = run_cli(capsys, str(CLEAN))
    assert code == 0
    assert "0 new finding(s)" in out


def test_repo_source_tree_is_lint_clean(capsys):
    """The shipped package itself must carry zero non-baselined findings."""
    code, out = run_cli(capsys)
    assert code == 0, out
    assert "0 new finding(s)" in out


def test_planted_fixture_yields_exactly_the_three_findings(capsys):
    code, out = run_cli(capsys, str(PLANTED))
    assert code == 2
    assert "3 new finding(s)" in out
    for rule, path in (
        ("global-rng", "repro/core/walk_rng.py"),
        ("lock-cycle", "repro/serve/pairlocks.py"),
        ("wire-unpicklable-field", "repro/fleet/wire.py"),
    ):
        matching = [
            line for line in out.splitlines() if rule in line and path in line
        ]
        assert matching, f"missing {rule} finding for {path}:\n{out}"


def test_json_format_schema(capsys):
    code, out = run_cli(capsys, str(PLANTED), "--format", "json")
    assert code == 2
    payload = json.loads(out)
    assert payload["version"] == SCHEMA_VERSION
    assert payload["checkers"] == ["determinism", "lockorder", "spawnsafety"]
    assert payload["counts"] == {"new": 3, "baselined": 0, "suppressed": 0}
    assert payload["files"] == 3
    for record in payload["findings"]:
        assert set(record) == {
            "checker", "rule", "path", "line", "col", "message",
            "fingerprint", "baselined",
        }
        assert record["baselined"] is False
        assert record["line"] >= 1 and record["col"] >= 0


def test_json_output_is_deterministic(capsys):
    _, first = run_cli(capsys, str(PLANTED), "--format", "json")
    _, second = run_cli(capsys, str(PLANTED), "--format", "json")
    assert first == second


def test_baseline_suppression_round_trips(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    # write the baseline from the planted findings...
    code, _ = run_cli(
        capsys, str(PLANTED), "--baseline", str(baseline), "--update-baseline"
    )
    assert code == 0
    payload = json.loads(baseline.read_text())
    assert payload["version"] == SCHEMA_VERSION
    assert len(payload["findings"]) == 3
    # ...then the same tree gates clean against it
    code, out = run_cli(capsys, str(PLANTED), "--baseline", str(baseline))
    assert code == 0
    assert "0 new finding(s)" in out
    assert "3 baselined" in out
    assert out.count("[baselined]") == 3


def test_new_finding_on_top_of_baseline_still_gates(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    run_cli(
        capsys, str(PLANTED), "--baseline", str(baseline), "--update-baseline"
    )
    # drop one record from the baseline: that finding becomes "new" again
    payload = json.loads(baseline.read_text())
    payload["findings"] = [
        r for r in payload["findings"] if r["rule"] != "global-rng"
    ]
    baseline.write_text(json.dumps(payload))
    code, out = run_cli(capsys, str(PLANTED), "--baseline", str(baseline))
    assert code == 2
    assert "1 new finding(s)" in out
    assert "2 baselined" in out


def test_malformed_baseline_is_an_error_not_a_gate(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json")
    code = main(["lint", str(CLEAN), "--baseline", str(baseline)])
    captured = capsys.readouterr()
    assert code == 2
    assert "malformed lint baseline" in captured.err


def test_committed_baseline_matches_current_tree(capsys):
    """LINT_BASELINE.json stays in sync with the source it inventories."""
    committed = Path(__file__).resolve().parents[1] / "LINT_BASELINE.json"
    assert committed.exists()
    code, _ = run_cli(capsys, "--baseline", str(committed))
    assert code == 0


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_update_baseline_exits_zero_regardless_of_findings(
    tmp_path, capsys, fmt
):
    baseline = tmp_path / "b.json"
    code, _ = run_cli(
        capsys, str(PLANTED), "--baseline", str(baseline),
        "--update-baseline", "--format", fmt,
    )
    assert code == 0
    assert baseline.exists()
