"""Analytical cost model: feasibility, metric ranges, and the qualitative
behaviours every experiment depends on."""

import math

import pytest

from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.sim.costmodel import INFEASIBLE, CostModel


@pytest.fixture(scope="module")
def gemm():
    return ops.matmul(4096, 4096, 4096, "g4k")


@pytest.fixture(scope="module")
def model(hw):
    return CostModel(hw)


def good_state(gemm):
    return ETIR.from_tiles(
        gemm, {"i": 128, "j": 128, "k": 32}, {"i": 8, "j": 8, "k": 4},
        {"i": 2, "j": 2},
    )


class TestFeasibility:
    def test_infeasible_smem(self, model, gemm):
        s = ETIR.from_tiles(gemm, {"i": 512, "j": 512, "k": 64})
        assert model.evaluate(s) is INFEASIBLE

    def test_infeasible_threads(self, model, gemm):
        s = ETIR.from_tiles(gemm, {"i": 128, "j": 128})  # 16384 threads
        assert not model.evaluate(s).feasible

    def test_feasible_state(self, model, gemm):
        m = model.evaluate(good_state(gemm))
        assert m.feasible and m.latency_s > 0

    def test_infeasible_summary(self):
        assert INFEASIBLE.summary() == "<infeasible>"


class TestMetricRanges:
    def test_fractions_in_unit_interval(self, model, gemm):
        m = model.evaluate(good_state(gemm))
        for value in (
            m.compute_throughput,
            m.sm_occupancy,
            m.mem_busy,
            m.l2_hit_rate,
        ):
            assert 0.0 <= value <= 1.0

    def test_achieved_flops_consistent(self, model, gemm):
        m = model.evaluate(good_state(gemm))
        assert m.achieved_flops == pytest.approx(
            gemm.total_flops / m.latency_s
        )

    def test_achieved_below_peak(self, model, hw, gemm):
        m = model.evaluate(good_state(gemm))
        assert m.achieved_flops < hw.peak_flops

    def test_conflict_factor_at_least_one(self, model, gemm):
        assert model.evaluate(good_state(gemm)).bank_conflict_factor >= 1.0


class TestQualitativeBehaviours:
    def test_tuned_beats_naive(self, model, gemm):
        naive = ETIR.from_tiles(gemm, {"j": 256})
        tuned = good_state(gemm)
        assert model.latency(tuned) < model.latency(naive) / 5

    def test_unscheduled_is_terrible(self, model, gemm):
        initial = ETIR.initial(gemm)
        assert model.latency(good_state(gemm)) < model.latency(initial) / 20

    def test_poor_coalescing_costs(self, model, gemm):
        # k-block-tile of 1 gives a 1-wide innermost slab for A.
        narrow = ETIR.from_tiles(gemm, {"i": 64, "j": 64, "k": 1}, {"i": 8, "j": 8})
        wide = ETIR.from_tiles(gemm, {"i": 64, "j": 64, "k": 32}, {"i": 8, "j": 8, "k": 4})
        assert model.latency(wide) < model.latency(narrow)

    def test_vthreads_relieve_conflicts(self, model, gemm):
        base = ETIR.from_tiles(
            gemm, {"i": 128, "j": 128, "k": 32}, {"i": 8, "j": 8, "k": 4}
        )
        vt = base.with_vthread(1, 4)
        assert vt is not None
        base_m = model.evaluate(base)
        vt_m = model.evaluate(vt)
        assert base_m.bank_conflict_factor > vt_m.bank_conflict_factor
        assert vt_m.latency_s < base_m.latency_s

    def test_excess_vthreads_add_overhead(self, model, gemm):
        base = ETIR.from_tiles(
            gemm, {"i": 128, "j": 128, "k": 32}, {"i": 8, "j": 8, "k": 4},
            {"j": 8},
        )
        more = base.with_vthread(0, 8)
        assert more is not None
        # Conflicts already resolved; extra lanes only add overhead.
        assert model.latency(more) > model.latency(base)

    def test_partial_warp_penalized(self, model):
        gemv = ops.gemv(16384, 16384)
        tiny = ETIR.from_tiles(gemv, {"i": 128, "n": 128}, {"i": 64})  # 2 threads
        warpy = ETIR.from_tiles(gemv, {"i": 128, "n": 128}, {"i": 4})  # 32 threads
        assert model.latency(warpy) < model.latency(tiny)

    def test_memory_bound_op_near_bandwidth_roofline(self, model, hw):
        pool = ops.avgpool2d(128, 64, 112, 112, 2, 2)
        s = ETIR.from_tiles(
            pool,
            {"n": 2, "c": 4, "oh": 4, "ow": 32, "fi": 2, "fj": 2},
            {"ow": 2},
        )
        m = model.evaluate(s)
        floor = pool.total_io_bytes() / hw.dram.bandwidth_bytes_per_s
        assert m.latency_s >= floor * 0.9
        assert m.latency_s <= floor * 20

    def test_edge_device_slower(self, gemm, hw, edge_hw):
        s = good_state(gemm)
        cloud = CostModel(hw).latency(s)
        edge = CostModel(edge_hw).latency(s)
        assert edge > 10 * cloud

    def test_launch_overhead_floors_tiny_ops(self, model, hw):
        tiny = ops.elementwise((32,), "relu")
        s = ETIR.from_tiles(tiny, {"d0": 32})
        assert model.latency(s) >= hw.kernel_launch_overhead_s

    def test_waves_counted(self, model, gemm):
        m = model.evaluate(good_state(gemm))
        assert m.waves > 0
        assert m.blocks_per_sm >= 1
