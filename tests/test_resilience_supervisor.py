"""Supervised worker pool: heartbeats, respawn, crash-proof queueing."""

import queue
import threading
import time

import pytest

from repro.resilience.faults import InjectedWorkerCrash
from repro.resilience.supervisor import SupervisedWorkerPool


def wait_until(predicate, timeout_s=5.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestBasicPool:
    def test_runs_submitted_items(self):
        pool = SupervisedWorkerPool(workers=2, capacity=8)
        done = []
        for i in range(6):
            pool.submit_nowait(lambda i=i: done.append(i))
        assert pool.shutdown(wait=True) == 0
        assert sorted(done) == list(range(6))

    def test_priority_order(self):
        pool = SupervisedWorkerPool(workers=1, capacity=8)
        gate = threading.Event()
        order = []
        pool.submit_nowait(lambda: gate.wait(5.0))  # occupy the worker
        time.sleep(0.1)
        pool.submit_nowait(lambda: order.append("low"), priority=0)
        pool.submit_nowait(lambda: order.append("high"), priority=10)
        gate.set()
        pool.shutdown(wait=True)
        assert order == ["high", "low"]

    def test_queue_full_raises(self):
        pool = SupervisedWorkerPool(workers=1, capacity=1)
        gate = threading.Event()
        pool.submit_nowait(lambda: gate.wait(5.0))
        time.sleep(0.1)
        pool.submit_nowait(lambda: None)  # fills the only slot
        with pytest.raises(queue.Full):
            pool.submit_nowait(lambda: None)
        gate.set()
        pool.shutdown(wait=True)

    def test_submit_after_shutdown_raises(self):
        pool = SupervisedWorkerPool(workers=1, capacity=4)
        pool.shutdown(wait=True)
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit_nowait(lambda: None)

    def test_item_exception_does_not_kill_worker(self):
        errors = []
        pool = SupervisedWorkerPool(
            workers=1, capacity=8, on_item_error=errors.append
        )
        done = threading.Event()
        pool.submit_nowait(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        pool.submit_nowait(done.set)
        assert done.wait(5.0)
        pool.shutdown(wait=True)
        assert pool.item_errors == 1
        assert pool.respawns == {"dead": 0, "stuck": 0}
        assert len(errors) == 1 and "boom" in str(errors[0])


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
class TestSupervision:
    def test_dead_worker_is_respawned(self):
        respawns = []
        pool = SupervisedWorkerPool(
            workers=1,
            capacity=8,
            supervise_interval_s=0.01,
            on_respawn=respawns.append,
        )

        def crash():
            raise InjectedWorkerCrash("injected")

        done = threading.Event()
        pool.submit_nowait(crash)
        pool.submit_nowait(done.set)
        # the replacement worker must pick up the queued item
        assert done.wait(5.0)
        assert wait_until(lambda: pool.respawns["dead"] >= 1)
        assert respawns.count("dead") >= 1
        assert pool.num_workers == 1
        assert pool.shutdown(wait=True) == 0

    def test_stuck_worker_is_abandoned_and_replaced(self):
        respawns = []
        release = threading.Event()
        pool = SupervisedWorkerPool(
            workers=1,
            capacity=8,
            stall_timeout_s=0.1,
            supervise_interval_s=0.01,
            on_respawn=respawns.append,
        )
        done = threading.Event()
        pool.submit_nowait(lambda: release.wait(10.0))  # non-cooperative hang
        pool.submit_nowait(done.set)
        # the supervisor declares the hung worker stuck and replaces it;
        # the replacement serves the queue while the hang is still going.
        assert done.wait(5.0)
        assert wait_until(lambda: pool.respawns["stuck"] >= 1)
        assert pool.abandoned_count() >= 1
        assert "stuck" in respawns
        release.set()  # let the abandoned thread retire before shutdown
        assert pool.shutdown(wait=True) == 0

    def test_no_queued_work_lost_across_crashes(self):
        pool = SupervisedWorkerPool(
            workers=2, capacity=64, supervise_interval_s=0.01
        )
        done = []
        crashes = 3
        for _ in range(crashes):
            pool.submit_nowait(
                lambda: (_ for _ in ()).throw(InjectedWorkerCrash("x"))
            )
        for i in range(20):
            pool.submit_nowait(lambda i=i: done.append(i))
        assert wait_until(lambda: len(done) == 20, timeout_s=10.0)
        # every crashed thread eventually gets noticed and replaced
        assert wait_until(lambda: pool.respawns["dead"] == crashes)
        assert pool.shutdown(wait=True) == 0
        assert sorted(done) == list(range(20))


class TestShutdownRace:
    def test_admission_is_atomic_against_shutdown(self):
        """No submit can slip an item into a stopped pool (the backfill
        shutdown race): concurrent submitters either succeed before the
        drain or get RuntimeError, and every accepted item runs."""
        for _ in range(10):
            pool = SupervisedWorkerPool(workers=2, capacity=128)
            accepted = []
            refused = []
            start = threading.Barrier(5)

            def submitter(tid):
                start.wait(5.0)
                for i in range(20):
                    try:
                        pool.submit_nowait(
                            lambda t=tid, i=i: accepted.append((t, i))
                        )
                    except RuntimeError:
                        refused.append((tid, i))

            threads = [
                threading.Thread(target=submitter, args=(t,)) for t in range(4)
            ]
            for t in threads:
                t.start()

            def closer():
                start.wait(5.0)
                pool.shutdown(wait=True)

            close_thread = threading.Thread(target=closer)
            close_thread.start()
            for t in threads:
                t.join(5.0)
            close_thread.join(10.0)
            assert not close_thread.is_alive()
            # drained everything that was admitted: 80 total asks split
            # between ran and refused, nothing dropped.
            assert len(accepted) + len(refused) == 80
