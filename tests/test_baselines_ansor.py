"""Ansor: evolutionary search baseline."""

import pytest

from repro.baselines import Ansor, AnsorConfig
from repro.ir import operators as ops
from repro.sim.measure import Measurer
from repro.utils.rng import new_rng

FAST = AnsorConfig(num_trials=80, population=16)


class TestConfig:
    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            AnsorConfig(num_trials=0)

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            AnsorConfig(population=1)

    def test_invalid_elite_fraction(self):
        with pytest.raises(ValueError):
            AnsorConfig(elite_fraction=0.0)


class TestCompile:
    def test_respects_trial_budget(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        meas = Measurer(hw)
        res = Ansor(hw, FAST).compile(g, meas)
        assert meas.num_measurements <= FAST.num_trials
        assert res.candidates_evaluated <= FAST.num_trials

    def test_feasible_result(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        res = Ansor(hw, FAST).compile(g)
        assert res.best.memory_ok(hw)
        assert res.best_metrics.feasible

    def test_deterministic(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        a = Ansor(hw, FAST).compile(g)
        b = Ansor(hw, FAST).compile(g)
        assert a.best.key() == b.best.key()

    def test_more_trials_never_much_worse(self, hw):
        g = ops.matmul(2048, 512, 2048, "m")
        small = Ansor(hw, AnsorConfig(num_trials=40, population=16)).compile(g)
        big = Ansor(hw, AnsorConfig(num_trials=400, population=32)).compile(g)
        assert big.best_metrics.latency_s <= small.best_metrics.latency_s * 1.05

    def test_big_budget_beats_tiny_budget_clearly(self, hw):
        g = ops.matmul(4096, 1024, 4096, "m")
        tiny = Ansor(hw, AnsorConfig(num_trials=16, population=16)).compile(g)
        big = Ansor(hw, AnsorConfig(num_trials=400, population=32)).compile(g)
        assert big.best_metrics.latency_s < tiny.best_metrics.latency_s

    def test_simulated_time_scales_with_trials(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        res = Ansor(hw, FAST).compile(g)
        assert res.simulated_measure_s == pytest.approx(
            res.candidates_evaluated * 0.35
        )

    def test_gemv_and_conv_compile(self, hw):
        for g in (ops.gemv(2048, 1024, "v"), ops.conv2d(4, 8, 10, 10, 16, 3, 3, 1, "c")):
            res = Ansor(hw, FAST).compile(g)
            assert res.best_metrics.feasible


class TestSearchOperators:
    def test_sample_is_feasible_shape(self, hw):
        g = ops.matmul(256, 128, 256, "m")
        ansor = Ansor(hw, FAST)
        rng = new_rng(0)
        seen_valid = 0
        for _ in range(50):
            s = ansor._sample(g, rng)
            if s is not None:
                # Tile nesting invariants hold by construction.
                for idx in range(3):
                    assert s.tile(idx, 1) <= s.tile(idx, 2)
                seen_valid += 1
        assert seen_valid > 0

    def test_mutate_changes_one_thing(self, hw):
        g = ops.matmul(256, 128, 256, "m")
        ansor = Ansor(hw, FAST)
        rng = new_rng(0)
        base = ansor._sample(g, rng)
        mutated = ansor._mutate(base, rng)
        assert mutated is not None
        assert mutated.key() != base.key()

    def test_crossover_mixes_parents(self, hw):
        g = ops.matmul(256, 128, 256, "m")
        ansor = Ansor(hw, FAST)
        rng = new_rng(0)
        a = ansor._sample(g, rng)
        b = ansor._sample(g, rng)
        child = ansor._crossover(a, b, rng)
        if child is not None:
            for idx in range(3):
                assert child.tile(idx, 2) in (a.tile(idx, 2), b.tile(idx, 2))
