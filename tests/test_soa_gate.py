"""Gate plumbing for the SoA walk core: env parsing, toggle nesting,
constructor dispatch, cross-gate compile agreement, and the planted
divergence that proves the differential oracle actually bites.
"""

import contextlib

import pytest

from repro.core import Gensor, GensorConfig
from repro.ir import operators as ops
from repro.perf.soa import (
    DifferentialWalker,
    SoAParityError,
    SoAWalkEngine,
    _env_enabled,
    soa_walk_disabled,
    soa_walk_enabled,
    soa_walk_forced,
)
from repro.utils.caching import hot_path_caching_disabled


# -- REPRO_SOA_WALK parsing ----------------------------------------------------


@pytest.mark.parametrize(
    ("value", "expected"),
    [
        (None, True),  # unset: default on
        ("", True),
        ("1", True),
        ("true", True),
        ("anything", True),
        ("0", False),
        ("false", False),
        ("False", False),
        ("OFF", False),
        ("  no  ", False),
    ],
)
def test_env_parsing(monkeypatch, value, expected):
    if value is None:
        monkeypatch.delenv("REPRO_SOA_WALK", raising=False)
    else:
        monkeypatch.setenv("REPRO_SOA_WALK", value)
    assert _env_enabled() is expected


def test_toggle_nesting_restores():
    assert soa_walk_enabled()
    with soa_walk_disabled():
        assert not soa_walk_enabled()
        with soa_walk_forced():
            assert soa_walk_enabled()
            with soa_walk_disabled():
                assert not soa_walk_enabled()
            assert soa_walk_enabled()
        assert not soa_walk_enabled()
    assert soa_walk_enabled()


def test_toggle_restores_on_exception():
    with pytest.raises(RuntimeError):
        with soa_walk_disabled():
            raise RuntimeError("boom")
    assert soa_walk_enabled()


# -- constructor dispatch ------------------------------------------------------


def _quick_cfg(**overrides):
    base = dict(
        seed=0,
        num_chains=1,
        top_k=2,
        polish_steps=0,
        max_iterations_per_chain=8,
    )
    base.update(overrides)
    return GensorConfig(**base)


def test_compile_dispatch_follows_gate(monkeypatch, hw):
    """The engine is constructed iff batch_scoring is on AND the gate is on."""
    import repro.perf.soa as soa_mod

    built = []
    real = soa_mod.SoAWalkEngine

    class Spy(real):
        def __init__(self, *args, **kwargs):
            built.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(soa_mod, "SoAWalkEngine", Spy)
    compute = ops.matmul(32, 24, 40, "soa_dispatch")

    Gensor(hw, _quick_cfg()).compile(compute)
    assert built, "default-on gate must route compile through the engine"

    built.clear()
    with soa_walk_disabled():
        Gensor(hw, _quick_cfg()).compile(compute)
    assert not built, "soa_walk_disabled() must restore the object path"

    Gensor(hw, _quick_cfg(batch_scoring=False)).compile(compute)
    assert not built, "the scalar (non-batch) path never uses the engine"


# -- cross-gate compile agreement ----------------------------------------------


def test_compile_agrees_across_gate_combinations(hw):
    """All four soa x hot-path-caching combinations produce one answer.

    Same best schedule key, same iteration count, same monotone node
    count, same best latency bits — the gates select implementations, not
    behaviors.
    """
    compute = ops.matmul(64, 32, 48, "soa_gate_mm")
    cfg = GensorConfig(
        seed=11, num_chains=2, top_k=3, polish_steps=6, max_iterations_per_chain=40
    )

    results = {}
    for soa_ctx in (soa_walk_forced, soa_walk_disabled):
        for hot_ctx in (contextlib.nullcontext, hot_path_caching_disabled):
            with soa_ctx(), hot_ctx():
                r = Gensor(hw, cfg).compile(compute)
            results[(soa_ctx.__name__, hot_ctx.__name__)] = (
                r.best.key(),
                r.iterations,
                r.states_visited,
                float(r.best_metrics.latency_s).hex(),
            )
    assert len(set(results.values())) == 1, results


# -- the planted divergence ----------------------------------------------------


def test_planted_divergence_is_detected(monkeypatch):
    """Perturbing one SoA benefit by 1 ulp-scale factor must trip the oracle.

    This is the test of the test: if the DifferentialWalker let this
    through, every parity assertion above would be vacuous.
    """
    from repro.hardware import rtx4090

    original = SoAWalkEngine._tiling_ratio

    def perturbed(self, q_old, f_old, q_new, f_new):
        return original(self, q_old, f_old, q_new, f_new) * (1.0 + 1e-12)

    monkeypatch.setattr(SoAWalkEngine, "_tiling_ratio", perturbed)
    diff = DifferentialWalker(ops.matmul(64, 48, 80, "soa_plant"), rtx4090())
    with pytest.raises(SoAParityError, match="benefit"):
        diff.walk(seed=0, chains=1, max_iterations=10)
