"""MetricsRegistry: instruments, labels, snapshots, thread safety."""

import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, get_registry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistogram:
    def test_summary(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["p50"] == 2.0

    def test_empty_summary(self):
        s = Histogram().summary()
        assert s["count"] == 0 and s["mean"] == 0.0 and s["p50"] == 0.0

    def test_bounded_reservoir_keeps_exact_count(self):
        h = Histogram(max_samples=16)
        for i in range(100):
            h.observe(float(i))
        assert h.summary()["count"] == 100
        assert h.summary()["max"] == 99.0  # exact extrema survive eviction

    def test_percentile(self):
        h = Histogram()
        for i in range(1, 101):
            h.observe(float(i))
        assert h.percentile(50) == 50.0
        assert h.percentile(99) == 99.0


class TestMetricsRegistry:
    def test_same_series_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.counter("x", a="1") is r.counter("x", a="1")
        assert r.counter("x", a="1") is not r.counter("x", a="2")

    def test_type_collision_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            r.gauge("x")

    def test_labeled_children_and_total(self):
        r = MetricsRegistry()
        r.counter("req", tier="hit").inc(3)
        r.counter("req", tier="cold").inc(2)
        assert r.total("req") == 5.0
        assert len(r.series("req")) == 2

    def test_total_rejects_non_counter(self):
        r = MetricsRegistry()
        r.gauge("g").set(1)
        with pytest.raises(TypeError, match="not a counter"):
            r.total("g")

    def test_snapshot_renders_label_sets(self):
        r = MetricsRegistry()
        r.counter("req", tier="hit").inc()
        r.gauge("estimate").set(1.5)
        r.histogram("lat").observe(0.25)
        snap = r.snapshot()
        assert snap["req{tier=hit}"] == 1.0
        assert snap["estimate"] == 1.5
        assert snap["lat"]["count"] == 1

    def test_render_mentions_every_series(self):
        r = MetricsRegistry()
        r.counter("req", tier="hit").inc()
        r.histogram("lat").observe(0.5)
        text = r.render()
        assert "req{tier=hit}" in text
        assert "lat" in text

    def test_reset(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        r.reset()
        assert r.snapshot() == {}

    def test_process_wide_default_is_shared(self):
        assert get_registry() is get_registry()

    def test_concurrent_increments_lose_nothing(self):
        r = MetricsRegistry()

        def worker():
            for _ in range(500):
                r.counter("hits", worker="w").inc()
                r.histogram("lat").observe(0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.counter("hits", worker="w").value == 4000
        assert r.histogram("lat").summary()["count"] == 4000


class TestExportMerge:
    """Cross-process transport: export_state is plain data, merge is lossless."""

    def make_registry(self):
        r = MetricsRegistry()
        r.counter("req", tier="hit").inc(3)
        r.gauge("workers").set(4)
        for v in (0.1, 0.2, 0.3, 0.4):
            r.histogram("lat").observe(v)
        return r

    def test_export_is_picklable_plain_data(self):
        import pickle

        state = self.make_registry().export_state()
        assert pickle.loads(pickle.dumps(state)) == state
        import json

        json.dumps(state)  # and JSON-safe: no locks, no objects

    def test_merge_into_empty_registry_roundtrips(self):
        source = self.make_registry()
        sink = MetricsRegistry()
        sink.merge_state(source.export_state())
        assert sink.counter("req", tier="hit").value == 3
        assert sink.gauge("workers").value == 4
        assert sink.histogram("lat").summary()["count"] == 4

    def test_counters_add_across_merges(self):
        sink = MetricsRegistry()
        sink.counter("req", tier="hit").inc(2)
        sink.merge_state(self.make_registry().export_state())
        sink.merge_state(self.make_registry().export_state())
        assert sink.counter("req", tier="hit").value == 8

    def test_gauges_take_last_writer(self):
        sink = MetricsRegistry()
        sink.gauge("workers").set(1)
        sink.merge_state(self.make_registry().export_state())
        assert sink.gauge("workers").value == 4

    def test_histograms_combine_counts_and_extrema(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("lat").observe(0.1)
        b.histogram("lat").observe(0.9)
        a.merge_state(b.export_state())
        summary = a.histogram("lat").summary()
        assert summary["count"] == 2
        assert summary["min"] == 0.1
        assert summary["max"] == 0.9

    def test_merged_percentiles_see_both_reservoirs(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for _ in range(10):
            a.histogram("lat").observe(1.0)
            b.histogram("lat").observe(3.0)
        a.merge_state(b.export_state())
        assert a.histogram("lat").percentile(95) == 3.0
        assert a.histogram("lat").percentile(5) == 1.0

    def test_unknown_kind_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="kind"):
            MetricsRegistry().merge_state(
                {"series": [{"name": "x", "labels": {}, "kind": "meter",
                             "state": 1}]}
            )
