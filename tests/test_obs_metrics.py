"""MetricsRegistry: instruments, labels, snapshots, thread safety."""

import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, get_registry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistogram:
    def test_summary(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["p50"] == 2.0

    def test_empty_summary(self):
        s = Histogram().summary()
        assert s["count"] == 0 and s["mean"] == 0.0 and s["p50"] == 0.0

    def test_bounded_reservoir_keeps_exact_count(self):
        h = Histogram(max_samples=16)
        for i in range(100):
            h.observe(float(i))
        assert h.summary()["count"] == 100
        assert h.summary()["max"] == 99.0  # exact extrema survive eviction

    def test_percentile(self):
        h = Histogram()
        for i in range(1, 101):
            h.observe(float(i))
        assert h.percentile(50) == 50.0
        assert h.percentile(99) == 99.0


class TestMetricsRegistry:
    def test_same_series_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.counter("x", a="1") is r.counter("x", a="1")
        assert r.counter("x", a="1") is not r.counter("x", a="2")

    def test_type_collision_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            r.gauge("x")

    def test_labeled_children_and_total(self):
        r = MetricsRegistry()
        r.counter("req", tier="hit").inc(3)
        r.counter("req", tier="cold").inc(2)
        assert r.total("req") == 5.0
        assert len(r.series("req")) == 2

    def test_total_rejects_non_counter(self):
        r = MetricsRegistry()
        r.gauge("g").set(1)
        with pytest.raises(TypeError, match="not a counter"):
            r.total("g")

    def test_snapshot_renders_label_sets(self):
        r = MetricsRegistry()
        r.counter("req", tier="hit").inc()
        r.gauge("estimate").set(1.5)
        r.histogram("lat").observe(0.25)
        snap = r.snapshot()
        assert snap["req{tier=hit}"] == 1.0
        assert snap["estimate"] == 1.5
        assert snap["lat"]["count"] == 1

    def test_render_mentions_every_series(self):
        r = MetricsRegistry()
        r.counter("req", tier="hit").inc()
        r.histogram("lat").observe(0.5)
        text = r.render()
        assert "req{tier=hit}" in text
        assert "lat" in text

    def test_reset(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        r.reset()
        assert r.snapshot() == {}

    def test_process_wide_default_is_shared(self):
        assert get_registry() is get_registry()

    def test_concurrent_increments_lose_nothing(self):
        r = MetricsRegistry()

        def worker():
            for _ in range(500):
                r.counter("hits", worker="w").inc()
                r.histogram("lat").observe(0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.counter("hits", worker="w").value == 4000
        assert r.histogram("lat").summary()["count"] == 4000
