"""Markov machinery: transition matrices, stationary vectors, value iteration."""

import numpy as np
import pytest

from repro.core.graph import ConstructionGraph
from repro.core.markov import (
    TransitionMatrix,
    build_transition_matrix,
    stationary_distribution,
    value_iteration,
)
from repro.ir import operators as ops
from repro.ir.etir import ETIR


@pytest.fixture
def tm(hw):
    graph = ConstructionGraph(hw)
    start = ETIR.initial(ops.matmul(16, 16, 16, "g"))
    return build_transition_matrix(graph, start, max_nodes=120)


class TestBuildTransitionMatrix:
    def test_rows_stochastic(self, tm):
        assert np.allclose(tm.matrix.sum(axis=1), 1.0)

    def test_nonnegative(self, tm):
        assert (tm.matrix >= 0).all()

    def test_laziness_adds_self_loops(self, hw):
        graph = ConstructionGraph(hw)
        start = ETIR.initial(ops.matmul(16, 16, 16, "g"))
        tm = build_transition_matrix(graph, start, max_nodes=60, laziness=0.1)
        diag = np.diag(tm.matrix)
        # Every non-sink row keeps exactly the lazy mass on the diagonal.
        assert (diag >= 0.1 - 1e-12).all()

    def test_zero_laziness_allowed(self, hw):
        graph = ConstructionGraph(hw)
        start = ETIR.initial(ops.matmul(16, 16, 16, "g"))
        tm = build_transition_matrix(graph, start, max_nodes=40, laziness=0.0)
        tm.validate()

    def test_bad_laziness_rejected(self, hw):
        graph = ConstructionGraph(hw)
        start = ETIR.initial(ops.matmul(16, 16, 16, "g"))
        with pytest.raises(ValueError, match="laziness"):
            build_transition_matrix(graph, start, laziness=1.5)

    def test_index_lookup(self, tm):
        key = tm.keys[3]
        assert tm.index(key) == 3

    def test_validate_catches_bad_rows(self):
        bad = TransitionMatrix(keys=[("a",), ("b",)], matrix=np.array([[0.5, 0.4], [0, 1.0]]))
        with pytest.raises(ValueError, match="sum to 1"):
            bad.validate()

    def test_validate_rejects_all_zero_rows(self):
        # An all-zero row is a state the chain can enter but never leave;
        # it must be named explicitly, not reported as a generic row-sum
        # failure (and never slip through as NaN after normalization).
        bad = TransitionMatrix(
            keys=[("live",), ("dead",)],
            matrix=np.array([[0.5, 0.5], [0.0, 0.0]]),
        )
        with pytest.raises(ValueError, match=r"all-zero.*\('dead',\)"):
            bad.validate()

    def test_validate_names_only_first_few_zero_rows(self):
        n = 6
        matrix = np.zeros((n, n))
        matrix[0] = 1.0 / n
        bad = TransitionMatrix(
            keys=[(f"s{i}",) for i in range(n)], matrix=matrix
        )
        with pytest.raises(ValueError, match=r"5 all-zero.*\+2 more"):
            bad.validate()

    def test_validate_rejects_nan(self):
        bad = TransitionMatrix(
            keys=[("a",), ("b",)],
            matrix=np.array([[np.nan, np.nan], [0.0, 1.0]]),
        )
        with pytest.raises(ValueError, match="NaN"):
            bad.validate()

    def test_validate_rejects_negative_probability(self):
        bad = TransitionMatrix(
            keys=[("a",), ("b",)],
            matrix=np.array([[1.5, -0.5], [0.0, 1.0]]),
        )
        with pytest.raises(ValueError, match="non-negative"):
            bad.validate()


class TestIndexLookup:
    def test_index_is_constant_time_on_large_matrix(self):
        # Regression guard: `index` used to scan `keys` linearly, making
        # per-state lookups O(n).  200k lookups against 500 states finish
        # in well under a second with the dict map; the old scan took >10s.
        import time

        n = 500
        tm = TransitionMatrix(
            keys=[("s", i) for i in range(n)], matrix=np.eye(n)
        )
        keys = tm.keys
        t0 = time.perf_counter()
        for _ in range(400):
            for k in keys:
                tm.index(k)
        elapsed = time.perf_counter() - t0
        assert elapsed < 2.0

    def test_index_matches_position_everywhere(self):
        n = 64
        tm = TransitionMatrix(
            keys=[("s", i) for i in range(n)], matrix=np.eye(n)
        )
        assert [tm.index(k) for k in tm.keys] == list(range(n))

    def test_unknown_key_raises(self, tm):
        with pytest.raises(KeyError):
            tm.index(("no", "such", "state"))


class TestStationaryDistribution:
    def test_is_fixed_point(self, tm):
        pi = stationary_distribution(tm)
        assert np.allclose(pi @ tm.matrix, pi, atol=1e-6)
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= -1e-12).all()

    def test_two_state_chain(self):
        tm = TransitionMatrix(
            keys=[("a",), ("b",)],
            matrix=np.array([[0.9, 0.1], [0.3, 0.7]]),
        )
        pi = stationary_distribution(tm)
        assert pi == pytest.approx([0.75, 0.25])

    def test_periodic_chain_handled(self):
        # Pure 2-cycle: power iteration oscillates; solver must not.
        tm = TransitionMatrix(
            keys=[("a",), ("b",)],
            matrix=np.array([[0.0, 1.0], [1.0, 0.0]]),
        )
        pi = stationary_distribution(tm)
        assert pi == pytest.approx([0.5, 0.5])

    def test_cesaro_fallback_runs_max_iter_steps(self, monkeypatch):
        # Force the lstsq path to look degenerate so the Cesàro fallback
        # runs.  Starting uniform on a doubly stochastic chain, the very
        # first averaging step already satisfies the tolerance — so
        # max_iter=1 must succeed.  The old `range(1, max_iter)` bound ran
        # max_iter - 1 steps and reported non-convergence here.
        monkeypatch.setattr(
            np.linalg,
            "lstsq",
            lambda *a, **k: (np.array([-1.0, -1.0]), None, None, None),
        )
        tm = TransitionMatrix(
            keys=[("a",), ("b",)],
            matrix=np.array([[0.0, 1.0], [1.0, 0.0]]),
        )
        pi = stationary_distribution(tm, max_iter=1)
        assert pi == pytest.approx([0.5, 0.5])


class TestValueIteration:
    def test_fixed_point_property(self, tm):
        rng = np.random.default_rng(0)
        rewards = rng.random(tm.n)
        values, iters = value_iteration(tm, rewards)
        assert iters >= 1
        candidate = np.maximum((tm.matrix * values[None, :]).max(axis=1), rewards)
        assert np.allclose(candidate, values, atol=1e-8)

    def test_values_at_least_rewards(self, tm):
        rewards = np.linspace(0, 1, tm.n)
        values, _ = value_iteration(tm, rewards)
        assert (values >= rewards - 1e-12).all()

    def test_shape_mismatch_rejected(self, tm):
        with pytest.raises(ValueError, match="one entry per state"):
            value_iteration(tm, np.zeros(tm.n + 1))

    def test_negative_rewards_rejected(self, tm):
        with pytest.raises(ValueError, match="non-negative"):
            value_iteration(tm, -np.ones(tm.n))

    def test_value_propagates_backward(self):
        # Chain a -> b with reward only at b: V(a) = P(a,b) * r(b).
        tm = TransitionMatrix(
            keys=[("a",), ("b",)],
            matrix=np.array([[0.2, 0.8], [0.0, 1.0]]),
        )
        rewards = np.array([0.0, 1.0])
        values, _ = value_iteration(tm, rewards)
        assert values[0] == pytest.approx(0.8)
        assert values[1] == pytest.approx(1.0)
