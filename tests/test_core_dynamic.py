"""DynamicGensor: cache-backed real-time re-optimization."""

import pytest

from repro.core import DynamicGensor, GensorConfig
from repro.ir import operators as ops

FAST = GensorConfig(num_chains=2, top_k=6, polish_steps=40)


@pytest.fixture
def dyn(hw):
    return DynamicGensor(hw, FAST)


class TestServingPath:
    def test_first_shape_is_cold(self, dyn):
        res = dyn.compile(ops.matmul(512, 256, 512, "s0"))
        assert res.source == "cold"
        assert dyn.stats.cold == 1

    def test_repeat_shape_is_hit(self, dyn):
        g = ops.matmul(512, 256, 512, "s0")
        dyn.compile(g)
        res = dyn.compile(ops.matmul(512, 256, 512, "s0_again"))
        assert res.source == "hit"
        assert res.compile_seconds < 0.05  # microsecond-scale serving
        assert dyn.stats.hits == 1

    def test_nearby_shape_is_warm(self, dyn):
        dyn.compile(ops.matmul(512, 256, 512, "s0"))
        res = dyn.compile(ops.matmul(640, 256, 512, "s1"))
        assert res.source == "warm"
        assert dyn.stats.warm == 1

    def test_unrelated_kind_is_cold(self, dyn):
        dyn.compile(ops.matmul(512, 256, 512, "s0"))
        res = dyn.compile(ops.gemv(2048, 1024, "v0"))
        assert res.source == "cold"


class TestQuality:
    def test_hit_matches_cold_schedule(self, dyn):
        g = ops.matmul(512, 256, 512, "s0")
        cold = dyn.compile(g)
        hit = dyn.compile(ops.matmul(512, 256, 512, "s1"))
        assert hit.result.best.block_tiles() == cold.result.best.block_tiles()

    def test_warm_quality_close_to_cold(self, hw):
        warm_server = DynamicGensor(hw, FAST)
        warm_server.compile(ops.matmul(1024, 512, 1024, "base"))
        warm = warm_server.compile(ops.matmul(1280, 512, 1024, "shifted"))

        cold_server = DynamicGensor(hw, FAST)
        cold = cold_server.compile(ops.matmul(1280, 512, 1024, "shifted"))

        assert warm.latency_s <= cold.latency_s * 1.15

    def test_warm_much_cheaper_than_cold(self, hw):
        server = DynamicGensor(hw, FAST)
        cold = server.compile(ops.matmul(1024, 512, 1024, "base"))
        warm = server.compile(ops.matmul(1280, 512, 1024, "shifted"))
        assert warm.compile_seconds < cold.compile_seconds / 2

    def test_warm_result_enters_cache(self, dyn):
        dyn.compile(ops.matmul(512, 256, 512, "s0"))
        dyn.compile(ops.matmul(640, 256, 512, "s1"))
        res = dyn.compile(ops.matmul(640, 256, 512, "s1_again"))
        assert res.source == "hit"


class TestStats:
    def test_totals(self, dyn):
        dyn.compile(ops.matmul(512, 256, 512, "a"))
        dyn.compile(ops.matmul(512, 256, 512, "b"))
        dyn.compile(ops.matmul(768, 256, 512, "c"))
        assert dyn.stats.total == 3
        assert (dyn.stats.cold, dyn.stats.hits, dyn.stats.warm) == (1, 1, 1)
