"""Shared fixtures: small devices, operators, and schedule states."""

from __future__ import annotations

import os

# LockWitness must install before any repro module mints a lock (several
# are module-level), so this runs ahead of every other repro import.
if os.environ.get("REPRO_LOCK_WITNESS") == "1":
    from repro.analysis import witness as _witness_mod

    _WITNESS = _witness_mod.install()
else:
    _WITNESS = None

import pytest

from repro.hardware import generic_gpu, orin_nano, rtx4090
from repro.ir import operators as ops
from repro.ir.etir import ETIR


@pytest.fixture(scope="session", autouse=True)
def lock_witness():
    """Under REPRO_LOCK_WITNESS=1, assert the whole session's observed
    lock-acquisition order stayed acyclic (a cycle is a latent deadlock)."""
    yield _WITNESS
    if _WITNESS is not None:
        _WITNESS.assert_acyclic()


@pytest.fixture(scope="session")
def hw():
    """The cloud-server device used by most tests."""
    return rtx4090()


@pytest.fixture(scope="session")
def edge_hw():
    return orin_nano()


@pytest.fixture(scope="session")
def small_hw():
    return generic_gpu()


@pytest.fixture
def gemm_small():
    """A GEMM small enough for functional execution in tests."""
    return ops.matmul(32, 24, 40, "gemm_small")


@pytest.fixture
def gemm_mid():
    return ops.matmul(1024, 512, 2048, "gemm_mid")


@pytest.fixture
def conv_small():
    return ops.conv2d(2, 4, 10, 10, 8, 3, 3, 1, "conv_small")


@pytest.fixture
def gemm_state(gemm_mid):
    """A reasonable mid-quality schedule for the mid GEMM."""
    return ETIR.from_tiles(
        gemm_mid,
        {"i": 64, "j": 64, "k": 32},
        {"i": 4, "j": 4, "k": 4},
        {"i": 2},
    )
