"""Construction graph: lazy expansion, legality, analysis export."""

import pytest

from repro.core.actions import ActionKind
from repro.core.graph import ConstructionGraph
from repro.ir import operators as ops
from repro.ir.etir import ETIR


@pytest.fixture
def graph(hw):
    return ConstructionGraph(hw)


@pytest.fixture
def start():
    return ETIR.initial(ops.matmul(64, 64, 64, "g"))


class TestExpansion:
    def test_initial_state_has_up_and_cache_edges(self, graph, start):
        kinds = {e.action.kind for e in graph.expand(start)}
        assert kinds == {ActionKind.TILE_UP, ActionKind.CACHE}

    def test_edges_carry_positive_benefit(self, graph, start):
        assert all(e.benefit > 0 for e in graph.expand(start))

    def test_expand_is_memoized(self, graph, start):
        e1 = graph.expand(start)
        e2 = graph.expand(start)
        assert e1 is e2

    def test_nodes_registered(self, graph, start):
        graph.expand(start)
        assert start.key() in graph.nodes
        for e in graph.expand(start):
            assert e.dst_key in graph.nodes

    def test_neighbors(self, graph, start):
        nbrs = graph.neighbors(start)
        assert len(nbrs) == len(graph.expand(start))

    def test_forbid_filters_actions(self, hw):
        g = ConstructionGraph(hw, forbid=frozenset({ActionKind.CACHE}))
        start = ETIR.initial(ops.matmul(64, 64, 64, "g"))
        kinds = {e.action.kind for e in g.expand(start)}
        assert ActionKind.CACHE not in kinds


class TestExplore:
    def test_bounded_exploration(self, graph, start):
        graph.explore(start, max_nodes=50)
        assert 50 <= graph.num_nodes <= 80  # frontier may overshoot slightly

    def test_counts(self, graph, start):
        graph.explore(start, max_nodes=30)
        assert graph.edge_count() > 0
        assert graph.num_expanded <= graph.num_nodes


class TestNetworkxExport:
    def test_digraph_structure(self, graph, start):
        graph.explore(start, max_nodes=40)
        g = graph.to_networkx()
        assert g.number_of_nodes() == graph.num_nodes
        assert g.number_of_edges() > 0
        # Every edge carries the action kind and benefit.
        for _u, _v, data in g.edges(data=True):
            assert data["benefit"] > 0
            assert data["action"] in ActionKind.ALL


class TestBoundedCaches:
    def test_eviction_bounds_cached_nodes(self, hw, start):
        graph = ConstructionGraph(hw, max_cached_states=50)
        graph.explore(start, max_nodes=400)
        # Eviction halves past the cap, so the steady state stays at or
        # below the cap even while expansion keeps inserting.
        assert graph.num_cached_nodes <= 50
        assert len(graph._edges) <= 50
        assert len(graph._quick_cache) <= 50
        # The monotone counter keeps the true visit count.
        assert graph.num_nodes > 50

    def test_eviction_preserves_walk_values(self, hw, start):
        # Re-expanding an evicted state re-derives identical edges.
        bounded = ConstructionGraph(hw, max_cached_states=20)
        unbounded = ConstructionGraph(hw, max_cached_states=0)
        bounded.explore(start, max_nodes=150)
        want = [(e.dst_key, e.benefit) for e in unbounded.expand(start)]
        got = [(e.dst_key, e.benefit) for e in bounded.expand(start)]
        assert got == want

    def test_zero_cap_disables_eviction(self, hw, start):
        graph = ConstructionGraph(hw, max_cached_states=0)
        graph.explore(start, max_nodes=300)
        assert graph.num_cached_nodes == graph.num_nodes
