"""Vendor library and PyTorch-eager baselines."""

import pytest

from repro.baselines import PyTorchEager, VendorLibrary
from repro.baselines.pytorch_eager import _DISPATCH_OVERHEAD_S, _LIBRARY_DERATE
from repro.ir import operators as ops


class TestVendorLibrary:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ops.matmul(4096, 4096, 4096, "m"),
            lambda: ops.gemv(8192, 4096, "v"),
            lambda: ops.batched_matmul(16, 128, 64, 128, "b"),
            lambda: ops.conv2d(16, 32, 30, 30, 64, 3, 3, 1, "c"),
            lambda: ops.depthwise_conv2d(16, 32, 30, 30, 3, 3, 1, "d"),
            lambda: ops.avgpool2d(16, 32, 32, 32, 2, 2, "p"),
            lambda: ops.elementwise((4096, 512), "relu", "e"),
            lambda: ops.softmax_proxy(1024, 128, "s"),
        ],
    )
    def test_every_kind_dispatches(self, hw, factory):
        res = VendorLibrary(hw).compile(factory())
        assert res.best_metrics.feasible

    def test_strided_dwconv_has_a_kernel(self, hw):
        g = ops.depthwise_conv2d(128, 96, 114, 114, 3, 3, 2, "dws2")
        res = VendorLibrary(hw).compile(g)
        assert res.best_metrics.feasible

    def test_fallback_used_when_templates_do_not_fit(self, hw):
        # A 1-element-deep op that no dense template matches cleanly.
        g = ops.elementwise((7,), "relu", "tiny")
        res = VendorLibrary(hw).compile(g)
        assert res.best_metrics.feasible

    def test_compile_is_free(self, hw):
        res = VendorLibrary(hw).compile(ops.matmul(1024, 512, 1024, "m"))
        assert res.simulated_measure_s == 0.0

    def test_strong_on_balanced_gemm(self, hw):
        g = ops.matmul(8192, 8192, 8192, "m")
        res = VendorLibrary(hw).compile(g)
        # Vendor templates reach a healthy fraction of peak on M1.
        assert res.best_metrics.achieved_flops > 0.3 * hw.peak_flops

    def test_deterministic(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        a = VendorLibrary(hw).compile(g)
        b = VendorLibrary(hw).compile(g)
        assert a.best_metrics.latency_s == b.best_metrics.latency_s


class TestPyTorchEager:
    def test_dense_ops_pay_derate_and_overhead(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        vendor = VendorLibrary(hw).compile(g)
        eager = PyTorchEager(hw).compile(g)
        expected = vendor.best_metrics.latency_s * _LIBRARY_DERATE + _DISPATCH_OVERHEAD_S
        assert eager.best_metrics.latency_s == pytest.approx(expected, rel=1e-6)

    def test_elementwise_naive_plus_overhead(self, hw):
        g = ops.elementwise((4096, 512), "relu", "e")
        eager = PyTorchEager(hw).compile(g)
        assert eager.best_metrics.latency_s > _DISPATCH_OVERHEAD_S

    def test_always_slower_than_vendor(self, hw):
        for g in (
            ops.matmul(1024, 512, 1024, "m"),
            ops.conv2d(16, 32, 30, 30, 64, 3, 3, 1, "c"),
        ):
            vendor = VendorLibrary(hw).compile(g)
            eager = PyTorchEager(hw).compile(g)
            assert eager.best_metrics.latency_s > vendor.best_metrics.latency_s

    def test_zero_compile_cost(self, hw):
        res = PyTorchEager(hw).compile(ops.matmul(256, 128, 256, "m"))
        assert res.simulated_measure_s == 0.0

    def test_throughput_consistent(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        res = PyTorchEager(hw).compile(g)
        assert res.best_metrics.achieved_flops == pytest.approx(
            g.total_flops / res.best_metrics.latency_s
        )
