"""Stopwatch behaviour."""

import pytest

from repro.utils.timing import Stopwatch


class TestStopwatch:
    def test_lap_accumulates(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("a"):
            pass
        assert sw.laps["a"] >= 0.0
        assert set(sw.laps) == {"a"}

    def test_multiple_labels(self):
        sw = Stopwatch()
        with sw.lap("x"):
            pass
        with sw.lap("y"):
            pass
        assert set(sw.laps) == {"x", "y"}
        assert sw.total() == pytest.approx(sw.laps["x"] + sw.laps["y"])

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start("a")
        with pytest.raises(RuntimeError, match="already running"):
            sw.start("b")

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch().stop()

    def test_stop_returns_elapsed(self):
        sw = Stopwatch()
        sw.start("a")
        elapsed = sw.stop()
        assert elapsed >= 0.0
        assert sw.laps["a"] == pytest.approx(elapsed)
