"""Synthetic dynamic-shape request traces."""

import pytest

from repro.core.cache import shape_fingerprint
from repro.models.trace import TRACE_MODELS, shape_stream, trace_summary


class TestShapeStream:
    def test_deterministic_in_seed(self):
        a = shape_stream("bert", num_requests=50, seed=3)
        b = shape_stream("bert", num_requests=50, seed=3)
        assert [shape_fingerprint(c) for c in a] == [
            shape_fingerprint(c) for c in b
        ]

    def test_seed_changes_stream(self):
        a = shape_stream("bert", num_requests=50, seed=0)
        b = shape_stream("bert", num_requests=50, seed=1)
        assert [shape_fingerprint(c) for c in a] != [
            shape_fingerprint(c) for c in b
        ]

    def test_requested_length(self):
        assert len(shape_stream("bert", num_requests=17)) == 17

    def test_bursts_repeat_shapes(self):
        stream = shape_stream("bert", num_requests=200, seed=0)
        summary = trace_summary(stream)
        assert summary.requests == 200
        assert 1 < summary.unique_shapes < 200
        assert summary.duplication > 1.5  # hot shapes genuinely repeat

    def test_gpt2_trace(self):
        stream = shape_stream("gpt2", num_requests=40, seed=0)
        summary = trace_summary(stream)
        assert summary.requests == 40
        assert summary.unique_shapes > 1
        assert "gemm" in summary.kinds and "bmm" in summary.kinds

    def test_custom_seq_lengths_shrink_pool(self):
        narrow = shape_stream("bert", num_requests=100, seq_lengths=(128,),
                              batches=(8,))
        wide = shape_stream("bert", num_requests=100)
        assert (
            trace_summary(narrow).unique_shapes
            < trace_summary(wide).unique_shapes
        )

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown trace model"):
            shape_stream("resnet")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_requests": 0},
            {"burstiness": 1.0},
            {"burstiness": -0.1},
            {"batches": ()},
        ],
    )
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(ValueError):
            shape_stream("bert", **kwargs)

    def test_model_registry_names(self):
        assert set(TRACE_MODELS) == {"bert", "gpt2"}


class TestTraceSummary:
    def test_empty_stream(self):
        summary = trace_summary([])
        assert summary.requests == 0
        assert summary.duplication == 0.0
