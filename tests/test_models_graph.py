"""Model graphs: dedupe, counts, statistics."""

import pytest

from repro.ir import operators as ops
from repro.models.graph import ModelGraph, OpInstance


class TestOpInstance:
    def test_count_validated(self):
        with pytest.raises(ValueError, match="count"):
            OpInstance(ops.matmul(4, 4, 4), count=0)


class TestModelGraph:
    def test_add_merges_identical_shapes(self):
        g = ModelGraph("m", batch=8)
        g.add(ops.matmul(64, 32, 64, "a"))
        g.add(ops.matmul(64, 32, 64, "b"))  # same shape, new name
        assert g.num_unique_ops == 1
        assert g.num_op_executions == 2

    def test_different_shapes_not_merged(self):
        g = ModelGraph("m", batch=8)
        g.add(ops.matmul(64, 32, 64, "a"))
        g.add(ops.matmul(64, 32, 128, "b"))
        assert g.num_unique_ops == 2

    def test_different_kinds_not_merged(self):
        g = ModelGraph("m", batch=8)
        g.add(ops.elementwise((64,), "relu", "a"))
        g.add(ops.softmax_proxy(64, 1, "b"))
        assert g.num_unique_ops == 2

    def test_count_parameter(self):
        g = ModelGraph("m", batch=8)
        g.add(ops.matmul(64, 32, 64, "a"), count=5)
        g.add(ops.matmul(64, 32, 64, "b"), count=3)
        assert g.num_op_executions == 8

    def test_total_flops_weighted_by_count(self):
        g = ModelGraph("m", batch=8)
        op = ops.matmul(64, 32, 64, "a")
        g.add(op, count=3)
        assert g.total_flops == pytest.approx(3 * op.total_flops)

    def test_summary_text(self):
        g = ModelGraph("m", batch=8)
        g.add(ops.matmul(64, 32, 64, "a"))
        text = g.summary()
        assert "m (batch 8)" in text and "1 unique ops" in text
