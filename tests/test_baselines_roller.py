"""Roller: tree-based construction baseline."""

import pytest

from repro.baselines import Roller, RollerConfig
from repro.ir import operators as ops
from repro.sim.measure import Measurer


class TestConfig:
    def test_defaults(self):
        cfg = RollerConfig()
        assert cfg.beam >= 1 and cfg.measure_k >= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            RollerConfig(beam=0)
        with pytest.raises(ValueError):
            RollerConfig(measure_k=0)


class TestCompile:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ops.matmul(1024, 512, 1024, "m"),
            lambda: ops.gemv(4096, 2048, "v"),
            lambda: ops.conv2d(8, 16, 18, 18, 32, 3, 3, 1, "c"),
            lambda: ops.avgpool2d(16, 32, 32, 32, 2, 2, "p"),
            lambda: ops.elementwise((2048, 512), "relu", "e"),
            lambda: ops.batched_matmul(8, 128, 64, 128, "b"),
        ],
    )
    def test_all_families_feasible(self, hw, factory):
        res = Roller(hw).compile(factory())
        assert res.best.memory_ok(hw)
        assert res.best_metrics.feasible

    def test_deterministic(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        a = Roller(hw).compile(g)
        b = Roller(hw).compile(g)
        assert a.best.key() == b.best.key()

    def test_transaction_alignment(self, hw):
        # The axes indexing each input's innermost dim get >= warp-wide
        # block tiles (k for A, j for B).
        g = ops.matmul(1024, 512, 1024, "m")
        res = Roller(hw).compile(g)
        tiles = res.best.block_tiles()
        assert tiles["k"] >= 32
        assert tiles["j"] >= 32

    def test_sm_saturation(self, hw):
        g = ops.matmul(4096, 512, 4096, "m")
        res = Roller(hw).compile(g)
        assert res.best.num_blocks() >= hw.num_sms

    def test_small_op_keeps_parallelism(self, hw):
        # Tiny-M GEMM: saturation rule must not let the grid collapse.
        g = ops.matmul(32, 512, 512, "pooler")
        res = Roller(hw).compile(g)
        assert res.best_metrics.latency_s < 100e-6

    def test_no_vthreads_ever(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        res = Roller(hw).compile(g)
        assert res.best.total_vthreads() == 1

    def test_measurement_budget(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        meas = Measurer(hw)
        Roller(hw, RollerConfig(measure_k=4)).compile(g, meas)
        assert meas.num_measurements <= 4

    def test_compile_seconds_accounting(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        res = Roller(hw).compile(g)
        assert res.compile_seconds >= res.simulated_measure_s > 0

    def test_candidates_counted(self, hw):
        g = ops.matmul(1024, 512, 1024, "m")
        res = Roller(hw).compile(g)
        assert res.candidates_evaluated > 0

    def test_method_name(self, hw):
        g = ops.matmul(256, 128, 256, "m")
        assert Roller(hw).compile(g).method == "roller"
