"""Deterministic RNG management."""

import numpy as np
import pytest

from repro.utils.rng import new_rng, spawn_rng


class TestNewRng:
    def test_same_seed_same_stream(self):
        a = new_rng(7).random(10)
        b = new_rng(7).random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(new_rng(1).random(10), new_rng(2).random(10))

    def test_default_seed_is_deterministic(self):
        assert np.array_equal(new_rng().random(5), new_rng(0).random(5))


class TestSpawnRng:
    def test_deterministic_for_same_labels(self):
        a = spawn_rng(0, "ansor", "M3").random(8)
        b = spawn_rng(0, "ansor", "M3").random(8)
        assert np.array_equal(a, b)

    def test_labels_separate_streams(self):
        a = spawn_rng(0, "ansor", "M3").random(8)
        b = spawn_rng(0, "gensor", "M3").random(8)
        assert not np.array_equal(a, b)

    def test_root_seed_separates_streams(self):
        a = spawn_rng(0, "x").random(8)
        b = spawn_rng(1, "x").random(8)
        assert not np.array_equal(a, b)

    def test_int_labels_accepted(self):
        a = spawn_rng(0, "chain", 3).random(4)
        b = spawn_rng(0, "chain", 3).random(4)
        assert np.array_equal(a, b)

    def test_label_order_matters(self):
        a = spawn_rng(0, "a", "b").random(4)
        b = spawn_rng(0, "b", "a").random(4)
        assert not np.array_equal(a, b)

    def test_label_concatenation_is_unambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        a = spawn_rng(0, "ab", "c").random(4)
        b = spawn_rng(0, "a", "bc").random(4)
        assert not np.array_equal(a, b)
