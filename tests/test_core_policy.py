"""Transition policy: probabilities, annealing, roulette."""

import math

import numpy as np
import pytest

from repro.core.actions import ActionKind
from repro.core.graph import ConstructionGraph
from repro.core.policy import (
    TransitionPolicy,
    append_probability,
    cache_anneal_factor,
)
from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.utils.rng import new_rng


@pytest.fixture
def policy(hw):
    return TransitionPolicy(ConstructionGraph(hw), new_rng(0))


@pytest.fixture
def start():
    return ETIR.initial(ops.matmul(256, 256, 256, "g"))


class TestAnnealFactor:
    def test_paper_values(self):
        # 3 / (1 + e^{-(ln5/10)(t-10)}): at t=10 the factor is 1.5.
        assert cache_anneal_factor(10) == pytest.approx(1.5)
        assert cache_anneal_factor(0) == pytest.approx(0.5)

    def test_monotone_increasing(self):
        values = [cache_anneal_factor(t) for t in range(0, 40, 5)]
        assert values == sorted(values)

    def test_saturates_at_three(self):
        assert cache_anneal_factor(1000) == pytest.approx(3.0)


class TestAppendProbability:
    def test_high_temperature_near_one(self):
        assert append_probability(100.0) > 0.99

    def test_decreases_with_temperature(self):
        temps = [100.0, 1.0, 0.01, 1e-6]
        probs = [append_probability(t) for t in temps]
        assert probs == sorted(probs, reverse=True)

    def test_zero_temperature(self):
        assert append_probability(0.0) == 0.0


class TestProbabilities:
    def test_normalized(self, policy, start):
        _edges, probs = policy.probabilities(start, 0.0)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_cache_probability_rises_with_progress(self, policy, start):
        def cache_prob(progress):
            edges, probs = policy.probabilities(start, progress)
            return sum(
                p for e, p in zip(edges, probs)
                if e.action.kind == ActionKind.CACHE
            )

        assert cache_prob(0.0) < cache_prob(15.0) < cache_prob(30.0)

    def test_forbid_removes_family(self, policy, start):
        edges, _ = policy.probabilities(
            start, 0.0, forbid=frozenset({ActionKind.CACHE})
        )
        assert all(e.action.kind != ActionKind.CACHE for e in edges)

    def test_sink_state_returns_empty(self, hw):
        tiny = ops.elementwise((1,), name="tiny")
        state = ETIR.initial(tiny).with_cache_advance()
        policy = TransitionPolicy(ConstructionGraph(hw), new_rng(0))
        edges, probs = policy.probabilities(state, 0.0)
        assert edges == [] and probs.size == 0


class TestSelect:
    def test_returns_edge(self, policy, start):
        edge = policy.select(start, 0.0)
        assert edge is not None
        assert edge.src_key == start.key()

    def test_deterministic_with_seed(self, hw, start):
        def run(seed):
            p = TransitionPolicy(ConstructionGraph(hw), new_rng(seed))
            return [p.select(start, 0.0).dst_key for _ in range(5)]

        assert run(7) == run(7)

    def test_sink_returns_none(self, hw):
        tiny = ops.elementwise((1,), name="tiny")
        state = ETIR.initial(tiny).with_cache_advance()
        policy = TransitionPolicy(ConstructionGraph(hw), new_rng(0))
        assert policy.select(state, 0.0) is None

    def test_distribution_follows_probabilities(self, hw, start):
        policy = TransitionPolicy(ConstructionGraph(hw), new_rng(0))
        edges, probs = policy.probabilities(start, 0.0)
        counts = {e.dst_key: 0 for e in edges}
        for _ in range(400):
            counts[policy.select(start, 0.0).dst_key] += 1
        # The most likely edge should be sampled most often.
        best = max(zip(edges, probs), key=lambda ep: ep[1])[0]
        assert counts[best.dst_key] == max(counts.values())
