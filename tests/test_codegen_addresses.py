"""Slab base-address arithmetic in staged copies."""

import pytest

from repro.codegen import emit_cuda, lower_etir
from repro.codegen.lower import _slab_base_expr
from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.ir.loopnest import LoadStage


class TestSlabBaseExpr:
    def test_gemm_a_slab(self):
        g = ops.matmul(256, 128, 192, "g")
        # A is (256, 128) row-major: stride_i = 128, stride_k = 1.
        expr = _slab_base_expr(g, "A", {"i": 64, "j": 64, "k": 32})
        assert expr == "8192*i_o + 32*k_o"  # 64*128 and 32*1

    def test_gemm_b_slab(self):
        g = ops.matmul(256, 128, 192, "g")
        # B is (128, 192): stride_k = 192, stride_j = 1.
        expr = _slab_base_expr(g, "B", {"i": 64, "j": 64, "k": 32})
        assert expr == "6144*k_o + 64*j_o"

    def test_unit_factor_keeps_bare_var(self):
        g = ops.matmul(8, 8, 8, "g")
        expr = _slab_base_expr(g, "B", {"i": 1, "j": 1, "k": 1})
        # j tile 1, stride 1 -> bare "j_o" term.
        assert "j_o" in expr.split(" + ")

    def test_conv_strided_slab(self):
        g = ops.conv2d(2, 4, 10, 10, 8, 3, 3, 2, "c")
        tiles = {"n": 1, "c": 2, "oh": 2, "ow": 2, "r": 3, "s": 3}
        expr = _slab_base_expr(g, "I", tiles)
        # The oh index is oh*2 + r: coefficient 2 x tile 2 x row stride 10.
        assert "40*oh_o" in expr
        # The r term: coefficient 1 x tile 3 x stride 10.
        assert "30*r_o" in expr


class TestEmittedAddresses:
    def test_source_contains_real_bases(self):
        g = ops.matmul(256, 128, 192, "g")
        s = ETIR.from_tiles(g, {"i": 64, "j": 64, "k": 32}, {"i": 4, "j": 4})
        src = emit_cuda(lower_etir(s), g)
        assert "A[(8192*i_o + 32*k_o) + v]" in src
        assert "B[(6144*k_o + 64*j_o) + v]" in src

    def test_load_stage_carries_base(self):
        g = ops.matmul(256, 128, 192, "g")
        s = ETIR.from_tiles(g, {"i": 64, "j": 64, "k": 32}, {"i": 4, "j": 4})
        kernel = lower_etir(s)
        stages = [
            stmt
            for lp in kernel.all_loops()
            for stmt in lp.body
            if isinstance(stmt, LoadStage)
        ]
        assert len(stages) == 2
        assert all(st.base_expr != "0" for st in stages)
