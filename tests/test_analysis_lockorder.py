"""LockOrderChecker: cycles, factories, interprocedural edges, writes."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import LockOrderChecker, run_lint


def lint_source(tmp_path: Path, source: str, rel: str = "repro/serve/mod.py"):
    file = tmp_path / rel
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source))
    return run_lint([file], tmp_path, checkers=[LockOrderChecker()])


def rules(report) -> list[str]:
    return [f.rule for f in report.new]


def test_opposite_order_is_a_cycle(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        return 1

            def backward(self):
                with self._b:
                    with self._a:
                        return 2
        """,
    )
    assert rules(report) == ["lock-cycle"]


def test_consistent_order_is_clean(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        return 1

            def also_forward(self):
                with self._a:
                    with self._b:
                        return 2
        """,
    )
    assert report.new == []


def test_rlock_reentry_is_not_a_cycle(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        class Memo:
            def __init__(self):
                self._lock = threading.RLock()

            def outer(self):
                with self._lock:
                    return self.inner()

            def inner(self):
                with self._lock:
                    return 1
        """,
    )
    assert report.new == []


def test_interprocedural_cycle_through_method_call(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        class A:
            def __init__(self, b):
                self._lock = threading.Lock()
                self._b = b

            def work(self):
                with self._lock:
                    self._b.poke()

        class B:
            def __init__(self, a):
                self._lock = threading.Lock()
                self._a = a

            def poke(self):
                with self._lock:
                    return 1

            def work(self):
                with self._lock:
                    self._a.nudge()

        class OtherA(A):
            pass
        """,
    )
    # A.work holds A._lock then acquires B._lock via poke(); B.work does
    # the reverse only if _a resolves — it does not (no ctor type), so the
    # one-directional nesting is clean.
    assert report.new == []


def test_interprocedural_cycle_with_resolvable_attr_types(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        class B:
            def __init__(self):
                self._lock = threading.Lock()
                self._a = None

            def poke(self):
                with self._lock:
                    return 1

            def work(self, a):
                with self._lock:
                    a.nudge()

        class A:
            def __init__(self):
                self._lock = threading.Lock()
                self._b = B()

            def work(self):
                with self._lock:
                    self._b.poke()

            def nudge(self):
                with self._lock:
                    return 2
        """,
    )
    # A._lock -> B._lock via A.work; the reverse edge needs B.work's bare
    # parameter ``a`` to resolve, which the checker does not guess at —
    # document the current precision: only the ctor-typed path resolves.
    assert rules(report) in ([], ["lock-cycle"])


def test_factory_lock_cycle(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        class Svc:
            def __init__(self):
                self._cold = threading.Lock()
                self._families = {}

            def _family_lock(self, fam):
                lock = self._families.get(fam)
                if lock is None:
                    lock = threading.Lock()
                    self._families[fam] = lock
                return lock

            def one(self, fam):
                with self._cold:
                    with self._family_lock(fam):
                        return 1

            def two(self, fam):
                with self._family_lock(fam):
                    with self._cold:
                        return 2
        """,
    )
    assert rules(report) == ["lock-cycle"]


def test_unlocked_write_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1

            def reset(self):
                self._count = 0
        """,
    )
    assert rules(report) == ["unlocked-write"]
    assert "reset" in report.new[0].message


def test_private_helper_called_under_lock_not_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        class Breaker:
            def __init__(self):
                self._lock = threading.Lock()
                self._state = "closed"

            def poke(self):
                with self._lock:
                    self._advance()

            def check(self):
                with self._lock:
                    self._advance()

            def _advance(self):
                self._state = "open"
        """,
    )
    assert report.new == []


def test_public_method_writing_bare_is_flagged(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        class Breaker:
            def __init__(self):
                self._lock = threading.Lock()
                self._state = "closed"

            def poke(self):
                with self._lock:
                    self._state = "half"

            def advance(self):
                self._state = "open"
        """,
    )
    assert rules(report) == ["unlocked-write"]


def test_module_level_lock_edges(tmp_path):
    report = lint_source(
        tmp_path,
        """
        import threading

        _A = threading.Lock()
        _B = threading.Lock()

        def forward():
            with _A:
                with _B:
                    return 1

        def backward():
            with _B:
                with _A:
                    return 2
        """,
    )
    assert rules(report) == ["lock-cycle"]


def test_real_tree_lock_graph_is_acyclic():
    """The shipped serve/fleet/cache/memo lock graph must stay acyclic."""
    src_root = Path(__file__).resolve().parents[1] / "src"
    report = run_lint(
        [src_root / "repro"], src_root, checkers=[LockOrderChecker()]
    )
    cycles = [f for f in report.new if f.rule == "lock-cycle"]
    assert cycles == []
