"""Roofline analysis tool."""

import pytest

from repro.ir import operators as ops
from repro.ir.etir import ETIR
from repro.sim.roofline import analyze_roofline, roofline_limit_flops


class TestRooflineLimit:
    def test_compute_bound_region(self, hw):
        # Huge AI: limited by peak compute.
        assert roofline_limit_flops(hw, 1e6) == hw.peak_flops

    def test_bandwidth_bound_region(self, hw):
        limit = roofline_limit_flops(hw, 1.0)
        assert limit == pytest.approx(hw.dram.bandwidth_bytes_per_s)

    def test_knee_point(self, hw):
        knee = hw.peak_flops / hw.dram.bandwidth_bytes_per_s
        assert roofline_limit_flops(hw, knee) == pytest.approx(hw.peak_flops)

    def test_invalid_ai(self, hw):
        with pytest.raises(ValueError):
            roofline_limit_flops(hw, 0.0)


class TestAnalyze:
    def test_gemm_is_compute_bound(self, hw):
        g = ops.matmul(4096, 4096, 4096, "g")
        s = ETIR.from_tiles(
            g, {"i": 128, "j": 128, "k": 32}, {"i": 8, "j": 8, "k": 4},
            {"i": 2, "j": 2},
        )
        report = analyze_roofline(s, hw)
        assert report.bound in ("compute", "smem")
        assert 0.0 < report.efficiency <= 1.0

    def test_pool_is_memory_bound(self, hw):
        p = ops.avgpool2d(128, 64, 112, 112, 2, 2, "p")
        s = ETIR.from_tiles(
            p, {"n": 2, "c": 4, "oh": 4, "ow": 32, "fi": 2, "fj": 2}, {"ow": 2}
        )
        report = analyze_roofline(s, hw)
        assert report.bound in ("dram", "l2")
        assert report.arithmetic_intensity < 2.0

    def test_infeasible_rejected(self, hw):
        g = ops.matmul(4096, 4096, 4096, "g")
        bad = ETIR.from_tiles(g, {"i": 512, "j": 512, "k": 64})
        with pytest.raises(ValueError, match="infeasible"):
            analyze_roofline(bad, hw)

    def test_summary_text(self, hw):
        g = ops.matmul(1024, 512, 1024, "g")
        s = ETIR.from_tiles(g, {"i": 64, "j": 64, "k": 32}, {"i": 4, "j": 4})
        text = analyze_roofline(s, hw).summary()
        assert "-bound" in text and "attainable" in text
